//! # reml — Resource Elasticity for Large-Scale Machine Learning
//!
//! A from-scratch Rust reproduction of the SIGMOD 2015 paper's system: a
//! declarative ML compiler (SystemML-style), a YARN cluster model, an
//! analytic cost model, the cost-based **resource optimizer**, runtime
//! plan adaptation with AM migration, and a cluster execution simulator.
//! See README.md for the architecture and DESIGN.md for the
//! paper-experiment index.
//!
//! ```
//! use reml::prelude::*;
//! use reml::compiler::MrHeapAssignment;
//! use reml::scripts::{DataShape, Scenario};
//!
//! // Compile the direct-solve linear regression over an XS scenario.
//! let script = reml::scripts::linreg_ds();
//! let shape = DataShape { scenario: Scenario::XS, cols: 100, sparsity: 1.0 };
//! let cfg = script.compile_config(
//!     shape,
//!     ClusterConfig::paper_cluster(),
//!     4096,
//!     MrHeapAssignment::uniform(1024),
//! );
//! let program = compile_source(&script.source, &cfg).unwrap();
//! assert!(program.num_blocks() > 0);
//!
//! // Ask the resource optimizer for a near-optimal configuration.
//! let optimizer = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
//! let analyzed = reml::compiler::pipeline::analyze_program(&script.source).unwrap();
//! let result = optimizer.optimize(&analyzed, &cfg, None).unwrap();
//! assert!(result.best_cost_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub use reml_calibrate as calibrate;
pub use reml_cluster as cluster;
pub use reml_compiler as compiler;
pub use reml_cost as cost;
pub use reml_insight as insight;
pub use reml_lang as lang;
pub use reml_matrix as matrix;
pub use reml_optimizer as optimizer;
pub use reml_planlint as planlint;
pub use reml_runtime as runtime;
pub use reml_scripts as scripts;
pub use reml_sim as sim;
pub use reml_sizebound as sizebound;
pub use reml_trace as trace;

/// Common imports: the compile pipeline, cluster configuration, the
/// resource optimizer, and the simulator.
pub mod prelude {
    pub use reml_cluster::ClusterConfig;
    pub use reml_compiler::pipeline::{analyze_program, compile, compile_source};
    pub use reml_compiler::{CompileConfig, MrHeapAssignment};
    pub use reml_cost::CostModel;
    pub use reml_matrix::{Matrix, MatrixCharacteristics};
    pub use reml_optimizer::{GridStrategy, OptimizerConfig, ResourceConfig, ResourceOptimizer};
    pub use reml_sim::{
        FaultKind, FaultPlan, FaultSpec, FaultTrigger, SimConfig, SimFacts, Simulator,
    };
}

//! Beyond request-based YARN: the other §2.3 / §6 instantiations of the
//! resource-allocation problem.
//!
//! 1. **Offer-based (Mesos):** the framework is offered concrete resource
//!    bundles and uses the same what-if machinery to accept the best one
//!    (or decline the round).
//! 2. **Spark executor sizing:** sweep candidate executor memories for an
//!    iterative job and pick the smallest one that hits the RDD-cache
//!    sweet spot.
//!
//! Run with: `cargo run --example offer_negotiation`

use reml::cluster::SparkConfig;
use reml::compiler::MrHeapAssignment;
use reml::optimizer::choose_offer;
use reml::prelude::*;
use reml::scripts::{DataShape, Scenario};
use reml::sim::{recommend_executor_memory, SparkPlan};

fn main() {
    let cluster = ClusterConfig::paper_cluster();

    // --- 1. Offer-based allocation for Linreg CG on 8 GB dense data ---
    let script = reml::scripts::linreg_cg();
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    };
    let analyzed = analyze_program(&script.source).expect("analyzes");
    let base = script.compile_config(shape, cluster.clone(), 512, MrHeapAssignment::uniform(512));
    let optimizer = ResourceOptimizer::new(CostModel::new(cluster.clone()));

    let offers = vec![
        ResourceConfig::uniform(2 * 1024, 1024),
        ResourceConfig::uniform(8 * 1024, 2 * 1024),
        ResourceConfig::uniform(16 * 1024, 1024),
        ResourceConfig::uniform(48 * 1024, 4 * 1024),
    ];
    println!(
        "== offer round for {} on {} {} ==",
        script.name,
        shape.scenario.name(),
        shape.label()
    );
    let decision = choose_offer(&optimizer, &analyzed, &base, &offers, f64::INFINITY, None)
        .expect("offer evaluation");
    for (i, (offer, cost)) in offers.iter().zip(&decision.costs_s).enumerate() {
        let marker = if decision.accepted == Some(i) {
            "  <== accepted"
        } else {
            ""
        };
        println!(
            "offer {i}: CP/MR = {:>9} GB  -> estimated {:>7.1} s{marker}",
            offer.display_gb(),
            cost
        );
    }
    println!(
        "\nthe 16 GB offer holds X in memory; the 48 GB offer costs the same but is\n\
         larger, so minimality declines it (no over-provisioning).\n"
    );

    // --- 2. Spark executor sizing for an 80 GB iterative job ---
    println!("== Spark executor sizing, 80 GB iterative workload ==");
    let spark_base = SparkConfig::paper_config();
    let candidates: Vec<u64> = [4u64, 8, 16, 24, 40, 55].iter().map(|g| g * 1024).collect();
    for &mem in &candidates {
        let mut cfg = spark_base.clone();
        cfg.executor_mem_mb = mem;
        let t = reml::sim::simulate_spark_iterative(&cluster, &cfg, SparkPlan::Hybrid, 80_000, 5);
        println!(
            "executors {:>4.1} GB (cache {:>5.1} GB): {:>6.1} s",
            mem as f64 / 1024.0,
            cfg.aggregate_storage_mb() as f64 / 1024.0,
            t
        );
    }
    let (chosen, t) = recommend_executor_memory(
        &cluster,
        &spark_base,
        SparkPlan::Hybrid,
        80_000,
        5,
        &candidates,
    );
    println!(
        "\nrecommended: {:.1} GB executors ({t:.1} s) — the smallest size whose\n\
         aggregate RDD cache holds the dataset.",
        chosen.executor_mem_mb as f64 / 1024.0
    );
}

//! Resource elasticity in action: multinomial logistic regression with
//! data-dependent unknowns, runtime re-optimization, and AM migration —
//! the §4 / Figure 15 story.
//!
//! The `table()` contingency pattern makes the class count `k` unknown at
//! initial compilation, so the initial resource optimization cannot size
//! the AM for the `n × k` intermediates. Once `k` becomes known at
//! runtime, re-optimization migrates the AM to a larger container.
//!
//! Run with: `cargo run --example elastic_training`

use reml::compiler::MrHeapAssignment;
use reml::prelude::*;
use reml::scripts::{DataShape, Scenario};

fn main() {
    let script = reml::scripts::mlogreg();
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 100,
        sparsity: 1.0,
    };
    let cluster = ClusterConfig::paper_cluster();
    let analyzed = analyze_program(&script.source).expect("analyzes");
    let base = script.compile_config(shape, cluster.clone(), 512, MrHeapAssignment::uniform(512));

    println!(
        "== {} on {} {} (k unknown at compile time) ==\n",
        script.name,
        shape.scenario.name(),
        shape.label()
    );

    // 1. Initial resource optimization (under unknowns).
    let optimizer = ResourceOptimizer::new(CostModel::new(cluster.clone()));
    let initial = optimizer
        .optimize(&analyzed, &base, None)
        .expect("optimizes");
    println!(
        "initial optimization: CP/MR = {} GB, estimated {:.0} s (unknown-size blocks pruned: {})",
        initial.best.display_gb(),
        initial.best_cost_s,
        initial.stats.blocks_total - initial.stats.blocks_remaining,
    );

    // 2. Simulate execution with k = 5 classes, with and without runtime
    //    adaptation. (With very large k — the paper's 24 GB illustration
    //    uses k = 200 — the loop turns compute-bound and distributed
    //    plans win instead; try it.)
    let sim = Simulator::new(cluster);
    let facts = SimFacts {
        table_cols: 5,
        ..SimFacts::default()
    };
    for (label, reopt) in [("static (Opt)", false), ("adaptive (ReOpt)", true)] {
        let outcome = sim
            .run_app(
                &analyzed,
                &base,
                &SimConfig {
                    resources: initial.best.clone(),
                    reopt,
                    facts: facts.clone(),
                    slot_availability: 1.0,
                    faults: FaultPlan::none(),
                },
            )
            .expect("simulates");
        println!(
            "\n--- {label} ---\n  measured time : {:.0} s\n  MR jobs       : {}\n  migrations    : {}\n  final CP heap : {:.1} GB",
            outcome.elapsed_s,
            outcome.mr_jobs,
            outcome.migrations,
            outcome.final_resources.cp_heap_mb as f64 / 1024.0,
        );
    }
    println!("\nruntime adaptation sizes the AM for the actual n x k intermediates.");
}

//! A classic "traditional statistical test" workload from the paper's
//! introduction: a Pearson correlation matrix over the feature columns,
//! written declaratively in DML and executed for real — then sized by the
//! resource optimizer for a cluster-scale version of the same script.
//!
//! Run with: `cargo run --example correlation`

use reml::compiler::MrHeapAssignment;
use reml::prelude::*;
use reml::runtime::executor::NoRecompile;
use reml::runtime::{Executor, HdfsStore, ScalarValue};
use reml::scripts::{DataShape, Scenario};

const SCRIPT: &str = r#"
    # Pearson correlation matrix of the columns of X.
    X = read($X)
    n = nrow(X)
    mu = colSums(X) / n
    Xc = X - mu
    S = t(Xc) %*% Xc / (n - 1)
    sd = sqrt(diag(S))
    R = S / (sd %*% t(sd))
    print("mean abs off-diagonal correlation = " + (sum(abs(R)) - ncol(X)) / (ncol(X) * ncol(X) - ncol(X)))
    write(R, $model)
"#;

fn main() {
    // --- Real execution on generated data ---
    let (rows, cols) = (3000usize, 6usize);
    let x = reml::matrix::generate::rand_dense(rows, cols, -1.0, 1.0, 99);
    let mut cfg = CompileConfig::new(ClusterConfig::paper_cluster(), 4 * 1024, 1024);
    cfg.params.insert("X".into(), ScalarValue::Str("X".into()));
    cfg.params
        .insert("model".into(), ScalarValue::Str("model".into()));
    cfg.inputs.insert(
        "X".into(),
        reml::matrix::MatrixCharacteristics::dense(rows as u64, cols as u64),
    );
    let compiled = compile_source(SCRIPT, &cfg).expect("compiles");
    let mut hdfs = HdfsStore::new();
    hdfs.stage("X", reml::matrix::Matrix::Dense(x.clone()));
    let mut exec = Executor::new(1 << 30, hdfs);
    exec.run(&compiled.runtime, &mut NoRecompile).expect("runs");
    let r = exec.hdfs.peek("model").expect("R written");

    println!("== correlation matrix ({cols}x{cols}) on {rows} samples ==");
    for line in &exec.stats.printed {
        println!("{line}");
    }
    for i in 0..cols {
        let row: Vec<String> = (0..cols).map(|j| format!("{:>6.3}", r.get(i, j))).collect();
        println!("  {}", row.join(" "));
    }
    // Diagonal must be exactly 1; independent columns ~0 elsewhere.
    for i in 0..cols {
        assert!((r.get(i, i) - 1.0).abs() < 1e-9);
        for j in 0..cols {
            if i != j {
                assert!(r.get(i, j).abs() < 0.1, "spurious correlation");
            }
        }
    }

    // --- Resource optimization for the cluster-scale variant ---
    let shape = DataShape {
        scenario: Scenario::L,
        cols: 1000,
        sparsity: 1.0,
    };
    let mut big = CompileConfig::new(ClusterConfig::paper_cluster(), 512, 512);
    big.params.insert("X".into(), ScalarValue::Str("X".into()));
    big.params
        .insert("model".into(), ScalarValue::Str("model".into()));
    big.inputs.insert("X".into(), shape.x_characteristics());
    big.mr_heap = MrHeapAssignment::uniform(512);
    let analyzed = analyze_program(SCRIPT).expect("analyzes");
    let optimizer = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
    let result = optimizer
        .optimize(&analyzed, &big, None)
        .expect("optimizes");
    println!(
        "\ncluster-scale (80 GB X): optimizer requests CP/MR = {} GB, estimated {:.0} s",
        result.best.display_gb(),
        result.best_cost_s
    );
}

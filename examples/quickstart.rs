//! Quickstart: memory-sensitive plans and the resource optimizer.
//!
//! Compiles the direct-solve linear regression under two memory
//! configurations, shows how the runtime plan changes (CP vs MR), and
//! then lets the resource optimizer pick a near-optimal configuration —
//! the paper's Figure 1 story in one binary.
//!
//! Run with: `cargo run --example quickstart`

use reml::compiler::MrHeapAssignment;
use reml::prelude::*;
use reml::scripts::{DataShape, Scenario};

fn main() {
    let script = reml::scripts::linreg_ds();
    // Scenario M, dense, 1,000 features: X is 8 GB — the Figure 1 case.
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    };
    let cluster = ClusterConfig::paper_cluster();

    println!(
        "== {} on {} {} ==",
        script.name,
        shape.scenario.name(),
        shape.label()
    );
    println!(
        "X: {} x {} ({:.1} GB dense)\n",
        shape.rows(),
        shape.cols,
        shape.x_characteristics().dense_size_bytes().unwrap() as f64 / 1e9
    );

    // Compile under a small and a large CP heap.
    for (label, cp_heap_mb) in [
        ("small CP (512 MB)", 512u64),
        ("large CP (48 GB)", 48 * 1024),
    ] {
        let cfg = script.compile_config(
            shape,
            cluster.clone(),
            cp_heap_mb,
            MrHeapAssignment::uniform(2 * 1024),
        );
        let compiled = compile_source(&script.source, &cfg).expect("compiles");
        let cost =
            CostModel::new(cluster.clone())
                .cost_program(&compiled.runtime, cp_heap_mb, &|b| cfg.mr_heap.for_block(b));
        println!("--- {label} ---");
        println!("MR jobs compiled : {}", compiled.mr_jobs());
        println!("estimated time   : {:.1} s", cost.total_s());
        println!(
            "  io {:.1} s | compute {:.1} s | latency {:.1} s | shuffle {:.1} s\n",
            cost.io_s, cost.compute_s, cost.latency_s, cost.shuffle_s
        );
    }

    // Let the optimizer decide.
    let analyzed = analyze_program(&script.source).expect("analyzes");
    let base = script.compile_config(shape, cluster.clone(), 512, MrHeapAssignment::uniform(512));
    let optimizer = ResourceOptimizer::new(CostModel::new(cluster));
    let result = optimizer
        .optimize(&analyzed, &base, None)
        .expect("optimizes");
    println!("--- resource optimizer ---");
    println!(
        "chosen configuration : CP/MR = {} GB (heap)",
        result.best.display_gb()
    );
    println!("estimated time       : {:.1} s", result.best_cost_s);
    println!(
        "optimization overhead: {:.0} ms ({} block compiles, {} costings)",
        result.stats.opt_time.as_secs_f64() * 1000.0,
        result.stats.block_compilations,
        result.stats.cost_invocations
    );
}

//! Multi-tenancy: avoided over-provisioning turns into throughput.
//!
//! Compares the optimizer's right-sized configuration against the
//! B-LL baseline (max CP/max-parallel MR heaps) for concurrent users —
//! the §5.3 / Figure 12 experiment.
//!
//! Run with: `cargo run --example multi_tenant`

use reml::compiler::MrHeapAssignment;
use reml::prelude::*;
use reml::scripts::{DataShape, Scenario};
use reml::sim::simulate_throughput;

fn main() {
    let script = reml::scripts::linreg_ds();
    let shape = DataShape {
        scenario: Scenario::S,
        cols: 1000,
        sparsity: 1.0,
    };
    let cluster = ClusterConfig::paper_cluster();
    let analyzed = analyze_program(&script.source).expect("analyzes");
    let base = script.compile_config(shape, cluster.clone(), 512, MrHeapAssignment::uniform(512));

    // Optimizer-chosen configuration vs the B-LL baseline.
    let optimizer = ResourceOptimizer::new(CostModel::new(cluster.clone()));
    let opt = optimizer
        .optimize(&analyzed, &base, None)
        .expect("optimizes");
    let bll = ResourceConfig::uniform(cluster.max_heap_mb(), (4.4 * 1024.0) as u64);

    let sim = Simulator::new(cluster.clone());
    println!(
        "== {} {} {}: throughput vs #users ==\n",
        script.name,
        shape.scenario.name(),
        shape.label()
    );
    println!("Opt  : CP/MR = {} GB", opt.best.display_gb());
    println!("B-LL : CP/MR = {} GB\n", bll.display_gb());
    println!(
        "{:>7} {:>14} {:>14} {:>8}",
        "#users", "Opt [app/min]", "B-LL [app/min]", "speedup"
    );

    for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
        let mut rows = Vec::new();
        for config in [&opt.best, &bll] {
            let outcome = sim
                .run_app(
                    &analyzed,
                    &base,
                    &SimConfig {
                        resources: config.clone(),
                        reopt: false,
                        facts: SimFacts::default(),
                        slot_availability: 1.0,
                        faults: FaultPlan::none(),
                    },
                )
                .expect("simulates");
            let slots = cluster.max_parallel_apps(config.cp_heap_mb);
            let result = simulate_throughput(outcome.elapsed_s, slots, users, 8, 0.5);
            rows.push(result.throughput_apps_per_min);
        }
        println!(
            "{users:>7} {:>14.1} {:>14.1} {:>7.1}x",
            rows[0],
            rows[1],
            rows[0] / rows[1]
        );
    }
    println!("\nright-sizing beats over-provisioning once the cluster saturates.");
}

//! End-to-end *real* execution: train linear regression models with the
//! actual CP executor on generated data and verify the recovered weights.
//!
//! The big §5.1 scenarios exist as metadata for the optimizer and the
//! simulator; this example shows the same compiled programs computing
//! real values on laptop-scale data — both the direct-solve and the
//! conjugate-gradient algorithm.
//!
//! Run with: `cargo run --example linear_regression`

use reml::prelude::*;
use reml::runtime::executor::NoRecompile;
use reml::runtime::{Executor, HdfsStore};
use reml::scripts::data::{generate_dataset, LabelKind};

fn main() {
    let (rows, cols) = (2000usize, 20usize);
    let data = generate_dataset(rows, cols, 1.0, LabelKind::Regression, 7);
    let truth = data.truth.clone().expect("regression has ground truth");

    for script in [reml::scripts::linreg_ds(), reml::scripts::linreg_cg()] {
        println!("== {} on {rows}x{cols} generated data ==", script.name);

        // Compile with the real data's characteristics.
        let mut cfg = CompileConfig::new(ClusterConfig::paper_cluster(), 4 * 1024, 1024);
        for (name, value) in &script.params {
            cfg.params.insert((*name).to_string(), value.clone());
        }
        cfg.inputs.insert("X".to_string(), data.x.characteristics());
        cfg.inputs.insert("y".to_string(), data.y.characteristics());
        let compiled = compile_source(&script.source, &cfg).expect("compiles");

        // Execute on the real matrices.
        let mut hdfs = HdfsStore::new();
        hdfs.stage("X", data.x.clone());
        hdfs.stage("y", data.y.clone());
        let mut exec = Executor::new(4 * 1024 * 1024 * 1024, hdfs);
        exec.run(&compiled.runtime, &mut NoRecompile).expect("runs");

        for line in &exec.stats.printed {
            println!("  {line}");
        }
        let model = exec.hdfs.peek("model").expect("model written");
        let max_err = (0..cols)
            .map(|j| (model.get(j, 0) - truth.get(j, 0)).abs())
            .fold(0.0f64, f64::max)
            .max(0.0);
        println!(
            "  max |beta - truth| = {max_err:.4}  ({} CP instructions)\n",
            exec.stats.cp_instructions
        );
        assert!(max_err < 0.05, "model should recover the ground truth");
    }
    println!("both algorithms recovered the generating weights.");
}

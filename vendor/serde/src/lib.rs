//! Offline stand-in for `serde` 1 (see `vendor/README.md`).
//!
//! Instead of serde's generic serializer architecture, `Serialize`
//! converts a value into a JSON tree ([`Value`]); `serde_json` then
//! renders or parses that tree. This is sufficient for the experiment
//! result files the bench harness writes, not a general serde.

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON document tree. Object entries preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Conversion into the JSON data model. The `derive` feature generates
/// field-by-field `Object` impls for named-field structs.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as f64;
                if n.is_finite() { Value::Num(n) } else { Value::Null }
            }
        }
    )*};
}

impl_serialize_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for std::time::Duration {
    /// Matches real serde's representation: `{"secs": u64, "nanos": u32}`.
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Num(self.as_secs() as f64)),
            ("nanos".to_string(), Value::Num(self.subsec_nanos() as f64)),
        ])
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

//! Offline stand-in for `parking_lot` 0.12 (see `vendor/README.md`).
//!
//! `Mutex` and `RwLock` with parking_lot's non-poisoning API, backed by
//! the std primitives (poison is swallowed by taking the inner guard).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// Non-poisoning mutex with parking_lot's `lock() -> guard` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok().map(MutexGuard)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.inner.write().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}

//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! Implements exactly the surface the workspace's matrix kernels use:
//! [`join`], [`current_num_threads`], and
//! `slice.par_chunks_mut(n).enumerate().for_each(..)` /
//! `slice.par_chunks(n).enumerate().for_each(..)` via the prelude
//! traits. Parallelism comes from `std::thread::scope`, with chunks
//! distributed round-robin across `available_parallelism()` workers, so
//! any deterministic per-chunk kernel produces bit-identical output to a
//! sequential run regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Run `f(index, item)` over `items`, work-stealing by atomic index so
/// uneven chunk costs balance across workers. The assignment of chunks
/// to threads is nondeterministic but each chunk sees only its own data,
/// so deterministic kernels stay deterministic.
fn drive<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for (i, item) in items.into_iter().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        items.into_iter().map(|t| std::sync::Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let next = &next;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i].lock().expect("rayon slot lock").take();
                if let Some(item) = item {
                    f(i, item);
                }
            });
        }
    });
}

/// Parallel iterator over mutable, non-overlapping chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index (chunk order matches the
    /// sequential `chunks_mut` order).
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { chunks: self.chunks }
    }

    /// Apply `f` to every chunk, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        drive(self.chunks, |_, c| f(c));
    }
}

/// Enumerated variant of [`ParChunksMut`].
pub struct EnumChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumChunksMut<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        drive(self.chunks, |i, c| f((i, c)));
    }
}

/// Parallel iterator over shared chunks of a slice.
pub struct ParChunks<'a, T: Sync> {
    chunks: Vec<&'a [T]>,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumChunks<'a, T> {
        EnumChunks { chunks: self.chunks }
    }

    /// Apply `f` to every chunk, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        drive(self.chunks, |_, c| f(c));
    }
}

/// Enumerated variant of [`ParChunks`].
pub struct EnumChunks<'a, T: Sync> {
    chunks: Vec<&'a [T]>,
}

impl<'a, T: Sync> EnumChunks<'a, T> {
    /// Apply `f` to every `(index, chunk)` pair, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a [T])) + Sync,
    {
        drive(self.chunks, |i, c| f((i, c)));
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into non-overlapping mutable chunks of `chunk_size`
    /// (the last chunk may be shorter), iterated in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Split into chunks of `chunk_size` (the last chunk may be
    /// shorter), iterated in parallel.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunks {
            chunks: self.chunks(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn par_chunks_mut_matches_sequential() {
        let mut par = vec![0u64; 1000];
        let mut seq = vec![0u64; 1000];
        par.par_chunks_mut(7).enumerate().for_each(|(i, c)| {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u64;
            }
        });
        for (i, c) in seq.chunks_mut(7).enumerate() {
            for (j, v) in c.iter_mut().enumerate() {
                *v = (i * 1000 + j) as u64;
            }
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn par_chunks_reads() {
        let data: Vec<u64> = (0..100).collect();
        let sum = std::sync::atomic::AtomicU64::new(0);
        data.par_chunks(9).for_each(|c| {
            sum.fetch_add(c.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<f64> = Vec::new();
        v.par_chunks_mut(4).for_each(|_| panic!("no chunks expected"));
        assert!(current_num_threads() >= 1);
    }
}

//! Offline stand-in for `crossbeam` 0.8 (see `vendor/README.md`).
//!
//! Implements only `channel::{unbounded, Sender, Receiver}` — an
//! unbounded MPMC channel with crossbeam's disconnect semantics, built
//! on `Mutex<VecDeque>` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by `send` when every receiver has been dropped.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and every
    /// sender has been dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by `try_recv`.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value is available or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(value) => Ok(value),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator over received values; ends on disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.inner.lock().unwrap().receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_roundtrip_and_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(i).unwrap();
                    }
                });
                s.spawn(move || {
                    for i in 50..100 {
                        tx2.send(i).unwrap();
                    }
                });
                let mut got: Vec<u32> = rx.iter().collect();
                got.sort_unstable();
                assert_eq!(got, (0..100).collect::<Vec<_>>());
                assert_eq!(rx.recv(), Err(RecvError));
            });
        }
    }
}

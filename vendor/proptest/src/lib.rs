//! Offline stand-in for `proptest` 1 (see `vendor/README.md`).
//!
//! A randomized-case runner with proptest's authoring surface:
//! `proptest! { fn name(pat in strategy, ...) { .. } }`, `prop_assert*`,
//! and the strategies this workspace uses (numeric ranges, tuples,
//! `prop::collection::vec`, `prop::sample::select`, and simple string
//! patterns). No shrinking, no failure persistence. Case count is 64,
//! overridable via `PROPTEST_CASES`. Seeds are derived from the test
//! name, so runs are deterministic.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// SplitMix64 — deterministic per (test name, case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Number of cases each `proptest!` test runs
    /// (`PROPTEST_CASES` env override, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|n| *n > 0)
            .unwrap_or(64)
    }

    /// Stable FNV-1a hash of the test name, used as the seed base.
    pub fn seed_for(name: &str, case: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

use test_runner::TestRng;

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    type Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.below(span as u64)
                };
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;
    fn new_value(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty range strategy");
        loop {
            if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                return c;
            }
        }
    }
}

impl Strategy for bool {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// String *patterns*: a tiny subset of proptest's regex strings. The
/// supported shape is `BODY{m,n}` (or a bare body, length 1), where
/// BODY is `\PC` (any printable char), a `[a-z0-9]`-style class, or a
/// literal. Anything else falls back to the literal text.
impl Strategy for str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern_value(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern_value(self, rng)
    }
}

fn pattern_value(pattern: &str, rng: &mut TestRng) -> String {
    let (body, min_len, max_len) = match pattern.rfind('{') {
        Some(open) if pattern.ends_with('}') => {
            let counts = &pattern[open + 1..pattern.len() - 1];
            let parse = |s: &str| s.trim().parse::<usize>().ok();
            let (m, n) = match counts.split_once(',') {
                Some((m, n)) => (parse(m), parse(n)),
                None => (parse(counts), parse(counts)),
            };
            match (m, n) {
                (Some(m), Some(n)) if m <= n => (&pattern[..open], m, n),
                _ => (pattern, 1, 1),
            }
        }
        _ => (pattern, 1, 1),
    };
    let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
    match classify(body) {
        CharClass::Printable => (0..len).map(|_| printable(rng)).collect(),
        CharClass::Set(chars) => (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect(),
        CharClass::Literal => body.repeat(len),
    }
}

enum CharClass {
    Printable,
    Set(Vec<char>),
    Literal,
}

fn classify(body: &str) -> CharClass {
    if body == "\\PC" || body == "\\p{C}" || body == "." {
        return CharClass::Printable;
    }
    if let Some(inner) = body.strip_prefix('[').and_then(|b| b.strip_suffix(']')) {
        let mut chars = Vec::new();
        let cs: Vec<char> = inner.chars().collect();
        let mut i = 0;
        while i < cs.len() {
            if i + 2 < cs.len() && cs[i + 1] == '-' {
                let (lo, hi) = (cs[i] as u32, cs[i + 2] as u32);
                chars.extend((lo..=hi).filter_map(char::from_u32));
                i += 3;
            } else {
                chars.push(cs[i]);
                i += 1;
            }
        }
        if !chars.is_empty() {
            return CharClass::Set(chars);
        }
    }
    CharClass::Literal
}

fn printable(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, occasionally another printable scalar.
    if rng.below(8) < 7 {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
    } else {
        loop {
            let c = char::from_u32(rng.below(0x2_0000) as u32);
            if let Some(c) = c {
                if !c.is_control() {
                    return c;
                }
            }
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Wrapper for a strategy that already *is* a fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop::collection` / `prop::sample` namespaces.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element_strategy, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end.saturating_sub(self.len.start).max(1);
                let len = self.len.start + rng.below(span as u64) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        /// Uniformly select one of the given options.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of no options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The test-authoring macro. Each listed function becomes a `#[test]`
/// (the attribute comes from the written-out `#[test]` meta, exactly as
/// in real proptest) that runs `cases()` random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let seed = $crate::test_runner::seed_for(stringify!($name), case);
                    let rng = &mut $crate::test_runner::TestRng::new(seed);
                    $(let $pat = $crate::Strategy::new_value(&($strategy), rng);)+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            (a, b) in (1usize..10, 0u64..5),
            v in prop::collection::vec(-1.0f64..1.0, 0..8),
            s in "\\PC{0,20}",
            pick in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert!(s.chars().count() <= 20);
            prop_assert!(pick == "x" || pick == "y");
        }
    }

    #[test]
    fn char_class_parses() {
        let rng = &mut crate::test_runner::TestRng::new(3);
        let s = crate::pattern_value("[a-c]{5,5}", rng);
        assert_eq!(s.len(), 5);
        assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
    }
}

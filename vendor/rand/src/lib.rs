//! Offline stand-in for `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides the small slice of the rand API this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is xoshiro256++
//! seeded via SplitMix64 — high quality for simulation/test data, but a
//! different stream than real rand's ChaCha12 for the same seed.

/// Core RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching the subset of `rand::SeedableRng`
/// the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value distributed per `Standard` — only `f64` (uniform
    /// in `[0, 1)`) is supported.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut |_| self.next_u64())
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Marker for `gen::<T>()`-style standard sampling.
pub trait Standard {
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Element types uniformly samplable from a range (mirrors
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;
    fn sample_inclusive(start: Self, end: Self, next: &mut dyn FnMut() -> u64) -> Self;
}

/// Ranges that can be sampled uniformly. The single generic impl per
/// range shape keeps type inference working for literals like
/// `gen_range(0.0..1.0)`.
pub trait SampleRange<T> {
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, &mut || next(()))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut(()) -> u64) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, &mut || next(()))
    }
}

/// Uniform value in `[0, span)` via 128-bit multiply-shift reduction.
fn bounded(next: &mut dyn FnMut() -> u64, span: u128) -> u64 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        return next();
    }
    ((next() as u128 * span) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + bounded(next, span) as i128) as $t
            }
            fn sample_inclusive(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + bounded(next, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                let unit = f64::sample(next()) as $t;
                start + unit * (end - start)
            }
            fn sample_inclusive(start: $t, end: $t, next: &mut dyn FnMut() -> u64) -> $t {
                Self::sample_half_open(start, end, next)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++
    /// seeded by SplitMix64. Different stream than real StdRng for the
    /// same seed — nothing in this workspace depends on exact values.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut split = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [split(), split(), split(), split()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..100 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_in_bounds() {
            let mut r = StdRng::seed_from_u64(1);
            for _ in 0..1000 {
                let v = r.gen_range(3usize..17);
                assert!((3..17).contains(&v));
                let w = r.gen_range(1u64..=4);
                assert!((1..=4).contains(&w));
                let f = r.gen_range(-2.0f64..3.0);
                assert!((-2.0..3.0).contains(&f));
                let u = r.gen::<f64>();
                assert!((0.0..1.0).contains(&u));
            }
        }
    }
}

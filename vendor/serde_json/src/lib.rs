//! Offline stand-in for `serde_json` 1 (see `vendor/README.md`).
//!
//! Renders and parses the [`serde::Value`] JSON tree. Provides
//! `to_string`, `to_string_pretty`, and `from_str::<Value>`.

pub use serde::Value;

/// Parse or structure error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types constructible from a parsed JSON tree (stand-in for
/// `Deserialize`; only `Value` is supported).
pub trait FromJson: Sized {
    fn from_json(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error {
            msg: format!("trailing characters at offset {}", p.pos),
        });
    }
    T::from_json(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(out, *n),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(out, indent, depth, '[', ']', items, |out, v, d| {
            write_value(out, v, indent, d)
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, '{', '}', entries, |out, (k, v), d| {
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: &[T],
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected {:?}", b as char)))
        }
    }

    fn fail(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at offset {}", self.pos),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.fail("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.fail("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.fail("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not recombined; lone
                            // surrogates become the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_pretty() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("fig7".into())),
            (
                "rows".into(),
                Value::Array(vec![Value::Num(1.0), Value::Num(2.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["id"].as_str(), Some("fig7"));
        assert_eq!(back["rows"][1].as_f64(), Some(2.5));
        assert_eq!(back["missing"].as_str(), None);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nbA", "n": -1.5e3}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("a\nbA"));
        assert_eq!(v["n"].as_f64(), Some(-1500.0));
        assert!(from_str::<Value>("{oops}").is_err());
    }
}

//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! `#[derive(Serialize)]` for structs with named fields only: emits an
//! `impl serde::Serialize` that builds a `serde::Value::Object` with
//! one entry per field, in declaration order. No attribute support.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => i += 1,
        _ => return Err("derive(Serialize): only structs are supported".into()),
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("derive(Serialize): expected struct name".into()),
    };
    i += 1;

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("derive(Serialize): unit/tuple structs are not supported".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("derive(Serialize): generic structs are not supported".into())
            }
            Some(_) => i += 1,
            None => return Err("derive(Serialize): struct body not found".into()),
        }
    };

    let fields = field_names(body.stream())?;
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    code.parse()
        .map_err(|e| format!("derive(Serialize): generated code failed to parse: {e:?}"))
}

/// Field names of a named-field struct body: for each top-level
/// comma-separated chunk, the last ident before the first `:`.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut last_ident: Option<String> = None;
    let mut in_type = false; // between `:` and the next top-level `,`
    let mut angle = 0i32; // `<...>` nesting depth inside a type
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' && in_type => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && in_type => {
                angle = (angle - 1).max(0)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                in_type = false;
                last_ident = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && !in_type => {
                match last_ident.take() {
                    Some(name) => fields.push(name),
                    None => {
                        return Err(
                            "derive(Serialize): expected field name before `:`".into()
                        )
                    }
                }
                in_type = true;
            }
            TokenTree::Ident(id) if !in_type => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    Ok(fields)
}

//! Offline stand-in for `criterion` 0.5 (see `vendor/README.md`).
//!
//! Same authoring API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`), two run
//! modes:
//!
//! - default (how `cargo test` invokes harness=false benches): each
//!   benchmark body runs twice as a smoke test, no timing output;
//! - `--bench` in argv (how `cargo bench` invokes them): each
//!   benchmark runs `sample_size` measured iterations after one warmup
//!   and prints mean/min/max wall time.
//!
//! A positional CLI filter (substring match on the benchmark id, as in
//! real criterion) is honored in both modes.

use std::time::{Duration, Instant};

/// Benchmark identifier: `group/function` or `group/function/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Opaque black box: defeats constant-folding of benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy)]
struct RunConfig {
    measure: bool,
    sample_size: usize,
}

/// Top-level driver, created by `criterion_main!`.
pub struct Criterion {
    filter: Option<String>,
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut measure = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => measure = true,
                // Flags cargo/libtest may pass through; all ignored.
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, measure }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let cfg = RunConfig {
            measure: self.measure,
            sample_size: 10,
        };
        run_one(&self.filter, &id, cfg, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let cfg = RunConfig {
            measure: self.criterion.measure,
            sample_size: self.sample_size,
        };
        run_one(&self.criterion.filter, &id, cfg, f);
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(filter: &Option<String>, id: &str, cfg: RunConfig, mut f: F) {
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters: if cfg.measure { cfg.sample_size } else { 2 },
    };
    f(&mut bencher);
    if !cfg.measure {
        println!("bench {id}: ok (validation mode; pass --bench to measure)");
        return;
    }
    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("bench {id}: no samples (Bencher::iter never called)");
        return;
    }
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "bench {id}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        samples.len()
    );
}

/// Passed to each benchmark body; `iter` runs and times the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

//! Integration tests for the widening fixpoint and the hull join: the
//! sparsity-drift cases the point estimator gets wrong are exactly where
//! the interval analysis must stay sound *and* converge fast.

use reml_cluster::ClusterConfig;
use reml_compiler::pipeline::{analyze_program, compile};
use reml_compiler::CompileConfig;
use reml_matrix::MatrixCharacteristics;
use reml_runtime::instructions::Instruction;
use reml_runtime::program::RtBlock;
use reml_sizebound::{analyze_bounds, annotate, DimInterval};

fn config_with_x(mc: MatrixCharacteristics) -> CompileConfig {
    let mut cfg = CompileConfig::new(ClusterConfig::paper_cluster(), 4 * 1024, 1024);
    cfg.inputs.insert("X".to_string(), mc);
    cfg
}

#[test]
fn nnz_doubling_loop_widens_to_dense_cap_quickly() {
    // X starts 0.5% sparse; every iteration doubles the nnz upper bound
    // (zero-preserving add). Without widening the fixpoint would take
    // ~8 iterations to saturate; widening must jump the nnz component to
    // its extreme so the loop converges in at most 3 steps — and the
    // resulting bound is the dense cap, which every real execution obeys.
    let source = r#"
        X = read("X")
        i = 0
        while (i < 10) {
            X = X + X
            i = i + 1
        }
        print("s=" + sum(X))
    "#;
    let cfg = config_with_x(MatrixCharacteristics::known(100, 100, 50));
    let analyzed = analyze_program(source).unwrap();
    let compiled = compile(&analyzed, &cfg).unwrap();
    let bounds = analyze_bounds(&analyzed, &compiled, &cfg).unwrap();

    assert!(
        bounds.widening_steps <= 3,
        "expected fast convergence, took {} widening steps",
        bounds.widening_steps
    );
    // The loop fixpoint is recorded as the while-predicate environment.
    let while_source = compiled
        .runtime
        .blocks
        .iter()
        .find_map(|b| match b {
            RtBlock::While { source, .. } => Some(source.0),
            _ => None,
        })
        .expect("program has a while loop");
    let x = bounds.pred_envs[&while_source]
        .get("X")
        .expect("X live at the loop head");
    // Dimensions stay exact through the loop; nnz saturates to the cell
    // count (the dense cap).
    assert_eq!(x.rows, DimInterval::exact(100));
    assert_eq!(x.cols, DimInterval::exact(100));
    assert_eq!(x.nnz_hi(), Some(100 * 100));
    assert!(x.bytes_hi().is_some());
}

#[test]
fn divergent_branch_shapes_join_to_the_hull() {
    // The two branches assign Y with different shapes; after the merge
    // the environment must hold the hull, not either point.
    let source = r#"
        X = read("X")
        if (sum(X) > 0) {
            Y = matrix(1, rows=10, cols=2)
        } else {
            Y = matrix(0, rows=3, cols=7)
        }
        print("s=" + sum(Y))
    "#;
    let cfg = config_with_x(MatrixCharacteristics::known(5, 5, 25));
    let analyzed = analyze_program(source).unwrap();
    let compiled = compile(&analyzed, &cfg).unwrap();
    let bounds = analyze_bounds(&analyzed, &compiled, &cfg).unwrap();

    // The trailing print block sees the merged environment at entry.
    let last_generic = compiled
        .runtime
        .blocks
        .iter()
        .rev()
        .find_map(|b| match b {
            RtBlock::Generic { source, .. } => Some(source.0),
            _ => None,
        })
        .expect("trailing generic block");
    let y = bounds.blocks[&last_generic]
        .entry
        .get("Y")
        .expect("Y live after the merge");
    assert_eq!(
        y.rows,
        DimInterval {
            lo: 3,
            hi: Some(10)
        }
    );
    assert_eq!(y.cols, DimInterval { lo: 2, hi: Some(7) });
    // Worst case covers the larger branch and the hull corner (10×7).
    assert_eq!(y.cells_hi(), Some(70));
    // The all-ones branch is dense: the hull's nnz must cover it.
    assert!(y.nnz_hi().unwrap() >= 20);
}

#[test]
fn paper_scripts_get_bounds_on_every_known_shape_instruction() {
    // Fully-known direct solve: every CP instruction in the lowered
    // program must carry a finite proven bound.
    let script = reml_scripts::linreg_ds();
    let shape = reml_scripts::DataShape {
        scenario: reml_scripts::Scenario::XS,
        cols: 100,
        sparsity: 1.0,
    };
    let cfg = script.compile_config(
        shape,
        ClusterConfig::paper_cluster(),
        4 * 1024,
        reml_compiler::MrHeapAssignment::uniform(1024),
    );
    let analyzed = analyze_program(&script.source).unwrap();
    let mut compiled = compile(&analyzed, &cfg).unwrap();
    annotate(&analyzed, &mut compiled, &cfg).unwrap();

    let mut total = 0u64;
    let mut bounded = 0u64;
    for top in &compiled.runtime.blocks {
        top.visit_generic(&mut |b| {
            if let RtBlock::Generic { instructions, .. } = b {
                for instr in instructions {
                    if let Instruction::Cp(cp) = instr {
                        total += 1;
                        if cp.bound_bytes.is_some() {
                            bounded += 1;
                        }
                    }
                }
            }
        });
    }
    assert!(total > 0);
    assert_eq!(bounded, total, "{bounded}/{total} instructions bounded");
}

//! Stamp every CP instruction with its sound resident-byte bound.
//!
//! The executor's memory observer sums the *actual* buffer-pool sizes of
//! the distinct variables an instruction touches (operands + output);
//! the annotation mirrors that accounting exactly on the abstract side:
//! the bound of a CP instruction is the sum over its distinct touched
//! variables of each variable's worst-case bytes. `None` means no finite
//! bound could be proven — the audit treats those observations as
//! vacuously bounded rather than violations.

use reml_compiler::pipeline::{AnalyzedProgram, CompiledProgram};
use reml_compiler::{CompileConfig, CompileError};
use reml_runtime::instructions::{CpInstruction, Instruction};
use reml_runtime::program::{Predicate, RtBlock};

use crate::analysis::{analyze_bounds, AbsEnv, BlockBounds, ProgramBounds};
use crate::interval::{SizeBound, SCALAR_BYTES};

/// Analyze `compiled` and write the per-instruction byte bounds into its
/// runtime program. Returns the bounds for further consumers (lint,
/// optimizer pruning).
pub fn annotate(
    analyzed: &AnalyzedProgram,
    compiled: &mut CompiledProgram,
    config: &CompileConfig,
) -> Result<ProgramBounds, CompileError> {
    let bounds = analyze_bounds(analyzed, compiled, config)?;
    let mut blocks = std::mem::take(&mut compiled.runtime.blocks);
    annotate_blocks(&mut blocks, &bounds, config);
    compiled.runtime.blocks = blocks;
    debug_verify_lowering(&compiled.runtime);
    Ok(bounds)
}

/// Debug builds: lower the freshly annotated program and run the PL040
/// bytecode verifier over it, which (via PL047) proves the stamped
/// `bound_bytes` survive lowering intact — the VM's per-instruction
/// `InstrMeta::bound_bytes` must equal the bounds written here, summed
/// across fused chains.
#[cfg(debug_assertions)]
fn debug_verify_lowering(runtime: &reml_runtime::program::RuntimeProgram) {
    reml_planlint::install_vm_verifier();
    let vm = runtime.lower_vm(reml_runtime::vm::VmLowerOptions { fuse: true });
    let report = reml_planlint::lint_vm(runtime, &vm);
    assert!(
        report.is_empty(),
        "bytecode lint failed after sizebound annotation:\n{}",
        report.render()
    );
}

#[cfg(not(debug_assertions))]
fn debug_verify_lowering(_runtime: &reml_runtime::program::RuntimeProgram) {}

fn annotate_blocks(blocks: &mut [RtBlock], bounds: &ProgramBounds, config: &CompileConfig) {
    for block in blocks {
        match block {
            RtBlock::Generic {
                source,
                instructions,
                ..
            } => {
                if let Some(bb) = bounds.blocks.get(&source.0) {
                    for instr in instructions {
                        if let Instruction::Cp(cp) = instr {
                            cp.bound_bytes = cp_bound(cp, bb, config);
                        }
                    }
                }
            }
            RtBlock::If {
                source,
                pred,
                then_blocks,
                else_blocks,
            } => {
                annotate_pred(pred, bounds.pred_envs.get(&source.0), config);
                annotate_blocks(then_blocks, bounds, config);
                annotate_blocks(else_blocks, bounds, config);
            }
            RtBlock::While {
                source, pred, body, ..
            } => {
                annotate_pred(pred, bounds.pred_envs.get(&source.0), config);
                annotate_blocks(body, bounds, config);
            }
            RtBlock::For {
                source,
                from,
                to,
                body,
                ..
            } => {
                let env = bounds.pred_envs.get(&source.0);
                annotate_pred(from, env, config);
                annotate_pred(to, env, config);
                annotate_blocks(body, bounds, config);
            }
        }
    }
}

/// Distinct variable names an instruction touches, mirroring the
/// executor's observation accounting (operand vars + output, deduped).
fn touched_vars(cp: &CpInstruction) -> Vec<&str> {
    let mut names: Vec<&str> = cp.operands.iter().filter_map(|o| o.as_var()).collect();
    if let Some(out) = &cp.output {
        names.push(out.as_str());
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Bound of one generic-block CP instruction: the sum over touched
/// variables, `None` as soon as any variable is unbounded.
fn cp_bound(cp: &CpInstruction, bb: &BlockBounds, config: &CompileConfig) -> Option<u64> {
    let mut total = 0u64;
    for name in touched_vars(cp) {
        total = total.saturating_add(var_bytes(name, bb, config)?);
    }
    Some(total)
}

fn var_bytes(name: &str, bb: &BlockBounds, config: &CompileConfig) -> Option<u64> {
    // Intermediates index straight into the hop bounds.
    if let Some(idx) = name
        .strip_prefix("_mVar")
        .and_then(|s| s.parse::<usize>().ok())
    {
        return bb.hops.get(idx)?.bytes_hi();
    }
    if name.starts_with("__pred") {
        return Some(SCALAR_BYTES);
    }
    // Named variables: anything the executor may hold under this name
    // while the block runs — the entry value or any in-block write.
    let entry = bb.entry.get(name);
    let written = bb.writes.get(name);
    match (entry, written) {
        (Some(e), Some(w)) => e.join(w).bytes_hi(),
        (Some(e), None) => e.bytes_hi(),
        (None, Some(w)) => w.bytes_hi(),
        // Persistent-input paths resolve through the config metadata.
        (None, None) => config.inputs.get(name).map(SizeBound::from_mc)?.bytes_hi(),
    }
}

/// Bound predicate instructions from the recorded predicate environment.
/// Predicate temporaries have no rebuilt DAG; their compile-time
/// characteristics are scalar for every supported predicate shape, and
/// scalar-sized temporaries get the constant scalar bound (1×1
/// dimensions compiled under the relaxed loop environment are
/// iteration-stable). Matrix-sized predicate temporaries stay unbounded.
fn annotate_pred(pred: &mut Predicate, env: Option<&AbsEnv>, config: &CompileConfig) {
    for instr in &mut pred.instructions {
        if let Instruction::Cp(cp) = instr {
            cp.bound_bytes = pred_bound(cp, env, config);
        }
    }
}

fn pred_bound(cp: &CpInstruction, env: Option<&AbsEnv>, config: &CompileConfig) -> Option<u64> {
    let mut total = 0u64;
    for name in touched_vars(cp) {
        let bytes = if let Some(bound) = env.and_then(|e| e.get(name)) {
            bound.bytes_hi()?
        } else if let Some(mc) = config.inputs.get(name) {
            SizeBound::from_mc(mc).bytes_hi()?
        } else if name.starts_with("__pred") {
            SCALAR_BYTES
        } else {
            // A predicate-local temporary: find its compile-time
            // characteristics on this instruction.
            let mc = if cp.output.as_deref() == Some(name) {
                Some(&cp.output_mc)
            } else {
                cp.operands
                    .iter()
                    .position(|o| o.as_var() == Some(name))
                    .and_then(|i| cp.operand_mcs.get(i))
            };
            match mc {
                Some(mc) if mc.is_scalar() => SCALAR_BYTES,
                _ => return None,
            }
        };
        total = total.saturating_add(bytes);
    }
    Some(total)
}

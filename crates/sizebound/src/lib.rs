//! # reml-sizebound — sound interval bounds on matrix sizes & sparsity
//!
//! An abstract-interpretation pass over the compiled program tree that
//! computes, for every live matrix and every HOP, a *sound* interval on
//! `(rows, cols, nnz)` — and from it a worst-case byte bound that the
//! actual executor footprint can never exceed. Where the compiler's
//! point estimates (`memest`) answer "what will this op probably need",
//! the interval bounds answer "what is the most it can possibly need",
//! including across sparsity-drifting loops (the GLM case) where the
//! point estimates are provably unsound without dynamic recompilation.
//!
//! The abstract domain is a product of three intervals `[lo, hi]` with
//! `hi = None` meaning unbounded ([`DimInterval`], [`SizeBound`]).
//! Transfer functions ([`transfer`]) are monotone over the interval
//! lattice for every HOP operator; `if`/`else` merges take the hull
//! join; `while`/`for` loop heads apply widening (`lo → 0`,
//! `hi → None` on growth), which reaches a fixpoint in a bounded number
//! of steps because each interval component can widen at most once.
//!
//! Consumers:
//!
//! * [`annotate`] stamps every CP instruction with the summed byte bound
//!   over its distinct touched variables
//!   ([`CpInstruction::bound_bytes`](reml_runtime::instructions::CpInstruction)),
//!   which the executor copies into its memory observations — the
//!   `sim::audit` differential harness then asserts
//!   `actual ≤ sound_bound` for every instruction.
//! * [`lint`] runs the PL030 rule family (catalogued in `reml-planlint`):
//!   PL030 (bound below point estimate — an internal inconsistency),
//!   PL031 (CP placement justified only by the point estimate), PL032
//!   (forced-CP operator provably over budget).
//! * [`sound_min_cp_budget_mb`] derives the statically-proven minimum CP
//!   budget any feasible plan needs (the forced-CP operators' worst
//!   case); the optimizer's grid walk prunes CP points below it.

#![forbid(unsafe_code)]

use reml_compiler::pipeline::{AnalyzedProgram, CompiledProgram};
use reml_compiler::{memest, CompileConfig, HopId, HopOp};

pub mod analysis;
pub mod annotate;
pub mod interval;
pub mod lint;
pub mod transfer;

pub use analysis::{analyze_bounds, AbsEnv, BlockBounds, ProgramBounds};
pub use annotate::annotate;
pub use interval::{DimInterval, SizeBound};
pub use lint::lint;
pub use transfer::transfer;

/// Dual (worst-case) operation memory estimate of one hop, MB: the same
/// charging skeleton as [`memest::estimate_hop`], evaluated over the
/// interval upper bounds instead of the compiler's point
/// characteristics. `INFINITY` when the bound is unbounded.
pub fn dual_estimate_mb(bounds: &BlockBounds, id: HopId) -> f64 {
    let value_mb = |h: HopId| {
        bounds
            .hops
            .get(h.0)
            .map(SizeBound::mb_hi)
            .unwrap_or(f64::INFINITY)
    };
    let dense_mb = |h: HopId| {
        bounds
            .hops
            .get(h.0)
            .map(SizeBound::dense_mb_hi)
            .unwrap_or(f64::INFINITY)
    };
    memest::estimate_hop_with(&bounds.dag, id, &value_mb, &dense_mb)
}

/// The statically-proven minimum CP budget (MB) any feasible plan needs:
/// the largest finite dual estimate over the operators the lowerer can
/// *only* place in CP (dense solve and scalar→matrix casts have no MR
/// implementation). A CP grid point whose budget is below this value
/// cannot execute the program — the optimizer prunes it before costing.
/// Returns 0 when no forced-CP operator has a finite bound.
pub fn sound_min_cp_budget_mb(bounds: &ProgramBounds) -> f64 {
    let mut min_needed = 0.0f64;
    for bb in bounds.blocks.values() {
        for id in bb.dag.live_hops(&[]) {
            if matches!(bb.dag.hop(id).op, HopOp::Solve | HopOp::CastMatrix) {
                let est = dual_estimate_mb(bb, id);
                if est.is_finite() && est > min_needed {
                    min_needed = est;
                }
            }
        }
    }
    min_needed
}

/// Convenience: analyze and return both the bounds and the sound minimum
/// CP budget in one call (the optimizer's entry point).
pub fn analyze_with_min_budget(
    analyzed: &AnalyzedProgram,
    compiled: &CompiledProgram,
    config: &CompileConfig,
) -> Result<(ProgramBounds, f64), reml_compiler::CompileError> {
    let _s = reml_trace::span!("sizebound.analyze");
    let bounds = analyze_bounds(analyzed, compiled, config)?;
    let min = sound_min_cp_budget_mb(&bounds);
    Ok((bounds, min))
}

//! Monotone transfer functions: one sound interval rule per HOP
//! operator.
//!
//! Each rule over-approximates the concrete operator: for any concrete
//! inputs inside the input intervals, the concrete output lies inside
//! the returned interval. Dimensions are propagated exactly where the
//! operator semantics fix them (e.g. a matmult's output extents);
//! non-zero counts use the standard structural bounds (`nnz(A·B) ≤
//! min(nnz(A)·cols(B), rows(A)·nnz(B))`, zero-preserving elementwise ops
//! bound by input patterns, everything else falls back to the dense
//! cell-count cap). Compiler-inferred characteristics are injected only
//! at *leaf* positions whose extents come from scalar constants (data
//! generators, indexing extents, `diag`) — never for `table()` outputs,
//! whose column count is data-dependent and stays ⊤.

use reml_compiler::{CompileConfig, HopDag, HopId, HopOp};
use reml_matrix::BinaryOp;

use crate::analysis::AbsEnv;
use crate::interval::{add_hi, min_hi, mul_hi, DimInterval, SizeBound};

/// Evaluate the transfer function of `id` over the already-computed
/// bounds of its producers (`bounds`, indexed by hop id) and the
/// interval environment at block entry (`env`).
pub fn transfer(
    dag: &HopDag,
    id: HopId,
    bounds: &[SizeBound],
    env: &AbsEnv,
    config: &CompileConfig,
) -> SizeBound {
    let hop = dag.hop(id);
    let input = |i: usize| -> SizeBound {
        hop.inputs
            .get(i)
            .and_then(|h| bounds.get(h.0))
            .copied()
            .unwrap_or_else(SizeBound::top)
    };
    match &hop.op {
        HopOp::TRead(name) => match env.get(name) {
            Some(b) => *b,
            None => config
                .inputs
                .get(name)
                .map(SizeBound::from_mc)
                .unwrap_or_else(SizeBound::top),
        },
        HopOp::PRead(path) => config
            .inputs
            .get(path)
            .map(SizeBound::from_mc)
            .unwrap_or_else(SizeBound::top),
        // Writes and sinks pass their value through.
        HopOp::TWrite(_) | HopOp::PWrite(_) => input(0),
        HopOp::Print => SizeBound::scalar(),
        // Scalar producers.
        HopOp::LitNum(_)
        | HopOp::LitStr(_)
        | HopOp::LitBool(_)
        | HopOp::BinarySS(_)
        | HopOp::UnaryS(_)
        | HopOp::Concat
        | HopOp::NRow
        | HopOp::NCol
        | HopOp::CastScalar => SizeBound::scalar(),
        HopOp::MatMult => {
            let (a, b) = (input(0), input(1));
            let rows = a.rows;
            let cols = b.cols;
            let cells = mul_hi(rows.hi, cols.hi);
            // Every non-zero of the product needs a non-zero in the same
            // row of A (≤ nnz(A)·cols(B)) and column of B (≤ rows(A)·nnz(B)).
            let structural = min_hi(mul_hi(a.nnz_hi(), cols.hi), mul_hi(rows.hi, b.nnz_hi()));
            SizeBound {
                rows,
                cols,
                nnz: DimInterval::bounded(min_hi(cells, structural)),
            }
        }
        // Fused t(X) %*% (X %*% v): output extents are cols(X) × cols(v).
        HopOp::MmChain => {
            let (x, v) = (input(0), input(1));
            let rows = x.cols;
            let cols = v.cols;
            SizeBound {
                rows,
                cols,
                nnz: DimInterval::bounded(mul_hi(rows.hi, cols.hi)),
            }
        }
        HopOp::BinaryMM(op) => binary_mm(*op, input(0), input(1)),
        HopOp::BinaryMS(op) => {
            let m = input(0);
            elementwise_with_scalar(*op, m, /*matrix_is_left=*/ true)
        }
        HopOp::BinarySM(op) => {
            let m = input(1);
            elementwise_with_scalar(*op, m, /*matrix_is_left=*/ false)
        }
        HopOp::UnaryM(op) => {
            let m = input(0);
            let nnz = if op.is_zero_preserving() {
                m.nnz_hi()
            } else {
                m.cells_hi()
            };
            SizeBound {
                rows: m.rows,
                cols: m.cols,
                nnz: DimInterval::bounded(nnz),
            }
        }
        HopOp::Agg(op) => {
            if op.is_full_reduction() {
                return SizeBound::scalar();
            }
            let m = input(0);
            match op {
                reml_matrix::AggOp::RowSums | reml_matrix::AggOp::RowMaxs => SizeBound {
                    rows: m.rows,
                    cols: DimInterval::exact(1),
                    nnz: DimInterval::bounded(m.rows.hi),
                },
                _ => SizeBound {
                    rows: DimInterval::exact(1),
                    cols: m.cols,
                    nnz: DimInterval::bounded(m.cols.hi),
                },
            }
        }
        HopOp::Transpose => {
            let m = input(0);
            SizeBound {
                rows: m.cols,
                cols: m.rows,
                nnz: m.nnz,
            }
        }
        // diag extents depend on whether the input is a vector (expand)
        // or square (extract); the compiler resolves that statically, so
        // the leaf characteristics are injected — the nnz bound still
        // comes from the input's interval (diagonal placement can only
        // keep or drop non-zeros).
        HopOp::Diag => {
            let mut b = SizeBound::from_mc_dims(&hop.mc);
            b.nnz = DimInterval::bounded(min_hi(input(0).nnz_hi(), b.cells_hi()));
            b
        }
        // Generator extents come from scalar arguments the compiler
        // constant-folds into the characteristics; a loop-varying extent
        // shows up as an unknown dimension and stays ⊤.
        HopOp::DataGenConst => {
            let b = SizeBound::from_mc_dims(&hop.mc);
            let zero_fill = matches!(
                hop.inputs.first().map(|i| &dag.hop(*i).op),
                Some(HopOp::LitNum(v)) if *v == 0.0
            );
            if zero_fill {
                SizeBound {
                    nnz: DimInterval::exact(0),
                    ..b
                }
            } else {
                b
            }
        }
        HopOp::DataGenSeq | HopOp::DataGenRand => SizeBound::from_mc_dims(&hop.mc),
        // table(seq(1, n), y): one non-zero per row of y; the column
        // count is data-dependent — never trust `table_cols_hint` here,
        // it is an optimistic hint, not a bound.
        HopOp::TableSeq => {
            let y = input(0);
            SizeBound {
                rows: DimInterval::bounded(y.rows.hi),
                cols: DimInterval::top(),
                nnz: DimInterval::bounded(y.rows.hi),
            }
        }
        // Indexing extents come from scalar bound arguments (leaf
        // injection); a slice can only keep a subset of the non-zeros.
        HopOp::RightIndex => {
            let mut b = SizeBound::from_mc_dims(&hop.mc);
            b.nnz = DimInterval::bounded(min_hi(input(0).nnz_hi(), b.cells_hi()));
            b
        }
        HopOp::LeftIndex => {
            let (target, value) = (input(0), input(1));
            SizeBound {
                rows: target.rows,
                cols: target.cols,
                nnz: DimInterval::bounded(add_hi(target.nnz_hi(), value.nnz_hi())),
            }
        }
        HopOp::Append => {
            let (a, b) = (input(0), input(1));
            SizeBound {
                rows: a.rows.broadcast_max(b.rows),
                cols: a.cols.plus(b.cols),
                nnz: DimInterval::bounded(add_hi(a.nnz_hi(), b.nnz_hi())),
            }
        }
        HopOp::RBind => {
            let (a, b) = (input(0), input(1));
            SizeBound {
                rows: a.rows.plus(b.rows),
                cols: a.cols.broadcast_max(b.cols),
                nnz: DimInterval::bounded(add_hi(a.nnz_hi(), b.nnz_hi())),
            }
        }
        // solve(A, b): the solution has b's extents (A is square).
        HopOp::Solve => {
            let b = input(1);
            SizeBound {
                rows: b.rows,
                cols: b.cols,
                nnz: DimInterval::bounded(mul_hi(b.rows.hi, b.cols.hi)),
            }
        }
        HopOp::CastMatrix => SizeBound {
            rows: DimInterval::exact(1),
            cols: DimInterval::exact(1),
            nnz: DimInterval::bounded(Some(1)),
        },
    }
}

/// Elementwise matrix ⊙ matrix with DML vector broadcasting.
fn binary_mm(op: BinaryOp, a: SizeBound, b: SizeBound) -> SizeBound {
    let rows = a.rows.broadcast_max(b.rows);
    let cols = a.cols.broadcast_max(b.cols);
    let cells = mul_hi(rows.hi, cols.hi);
    // Effective non-zero bound of one operand against the output shape:
    // a (possible) vector operand's pattern repeats along the broadcast
    // dimension. Scaling is skipped only when the interval *proves* the
    // operand spans that dimension (lo ≥ 2 or extents match exactly).
    let eff = |x: &SizeBound| -> Option<u64> {
        let mut n = x.nnz_hi();
        if may_broadcast(x.cols, cols) {
            n = mul_hi(n, cols.hi);
        }
        if may_broadcast(x.rows, rows) {
            n = mul_hi(n, rows.hi);
        }
        min_hi(n, cells)
    };
    let nnz = if op.is_right_zero_annihilating() {
        // a ⊙ b is zero wherever either side is zero.
        min_hi(cells, min_hi(eff(&a), eff(&b)))
    } else if op.is_zero_preserving() {
        // op(0, 0) = 0: non-zeros only where either side is non-zero.
        min_hi(cells, add_hi(eff(&a), eff(&b)))
    } else {
        cells
    };
    SizeBound {
        rows,
        cols,
        nnz: DimInterval::bounded(nnz),
    }
}

/// Whether an operand with extent `dim` may be broadcast against an
/// output extent `out` (i.e. we cannot prove the extents coincide).
fn may_broadcast(dim: DimInterval, out: DimInterval) -> bool {
    // Exactly matching point intervals ⇒ no broadcast.
    if dim.hi == Some(dim.lo) && out.hi == Some(out.lo) && dim.lo == out.lo {
        return false;
    }
    // An operand proven ≥ 2 wide cannot be a broadcast vector.
    dim.lo <= 1
}

/// Matrix ⊙ scalar (either side): extents are the matrix's; only
/// multiplication-like ops preserve the zero pattern (op(0, s) or
/// op(s, 0) may be non-zero otherwise, e.g. `X + 1`).
fn elementwise_with_scalar(op: BinaryOp, m: SizeBound, matrix_is_left: bool) -> SizeBound {
    let preserves = match op {
        BinaryOp::Mul | BinaryOp::And => true,
        // 0 / s = 0, but s / 0 is not zero.
        BinaryOp::Div => matrix_is_left,
        _ => false,
    };
    let nnz = if preserves { m.nnz_hi() } else { m.cells_hi() };
    SizeBound {
        rows: m.rows,
        cols: m.cols,
        nnz: DimInterval::bounded(nnz),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_compiler::VType;
    use reml_matrix::MatrixCharacteristics;

    fn cfg() -> CompileConfig {
        CompileConfig::new(reml_cluster::ClusterConfig::paper_cluster(), 1024, 512)
    }

    fn eval_all(dag: &HopDag, env: &AbsEnv, config: &CompileConfig) -> Vec<SizeBound> {
        let mut bounds = vec![SizeBound::top(); dag.len()];
        for id in dag.live_hops(&[]) {
            bounds[id.0] = transfer(dag, id, &bounds, env, config);
        }
        bounds
    }

    #[test]
    fn matmult_structural_nnz_bound() {
        let mut dag = HopDag::new();
        let a = dag.add(
            HopOp::TRead("A".into()),
            vec![],
            VType::Matrix,
            MatrixCharacteristics::known(1000, 1000, 50),
        );
        let b = dag.add(
            HopOp::TRead("B".into()),
            vec![],
            VType::Matrix,
            MatrixCharacteristics::known(1000, 1000, 50),
        );
        let mm = dag.add(
            HopOp::MatMult,
            vec![a, b],
            VType::Matrix,
            MatrixCharacteristics::dims_only(1000, 1000),
        );
        dag.add(
            HopOp::TWrite("out".into()),
            vec![mm],
            VType::Matrix,
            MatrixCharacteristics::dims_only(1000, 1000),
        );
        let mut env = AbsEnv::new();
        env.insert(
            "A".into(),
            SizeBound {
                rows: DimInterval::exact(1000),
                cols: DimInterval::exact(1000),
                nnz: DimInterval::bounded(Some(50)),
            },
        );
        env.insert(
            "B".into(),
            SizeBound {
                rows: DimInterval::exact(1000),
                cols: DimInterval::exact(1000),
                nnz: DimInterval::bounded(Some(50)),
            },
        );
        let bounds = eval_all(&dag, &env, &cfg());
        // nnz(A·B) ≤ nnz(A)·cols(B) = 50k, far below the 1M dense cap.
        assert_eq!(bounds[mm.0].nnz_hi(), Some(50_000));
    }

    #[test]
    fn elementwise_mul_keeps_sparsity_without_broadcast() {
        let exact = |r, c, n| SizeBound {
            rows: DimInterval::exact(r),
            cols: DimInterval::exact(c),
            nnz: DimInterval::bounded(Some(n)),
        };
        let out = binary_mm(BinaryOp::Mul, exact(100, 100, 10), exact(100, 100, 10_000));
        // Matching exact extents ⇒ no broadcast scaling.
        assert_eq!(out.nnz_hi(), Some(10));
        // A column vector against a matrix: the vector's pattern repeats.
        let v = exact(100, 1, 5);
        let out = binary_mm(BinaryOp::Mul, exact(100, 100, 10_000), v);
        assert_eq!(out.nnz_hi(), Some(500));
    }

    #[test]
    fn add_scalar_densifies() {
        let m = SizeBound {
            rows: DimInterval::exact(10),
            cols: DimInterval::exact(10),
            nnz: DimInterval::bounded(Some(3)),
        };
        let out = elementwise_with_scalar(BinaryOp::Add, m, true);
        assert_eq!(out.nnz_hi(), Some(100));
        let out = elementwise_with_scalar(BinaryOp::Mul, m, true);
        assert_eq!(out.nnz_hi(), Some(3));
    }

    #[test]
    fn table_cols_stay_unbounded() {
        let mut dag = HopDag::new();
        let y = dag.add(
            HopOp::TRead("y".into()),
            vec![],
            VType::Matrix,
            MatrixCharacteristics::dense(100, 1),
        );
        let t = dag.add(
            HopOp::TableSeq,
            vec![y],
            VType::Matrix,
            MatrixCharacteristics {
                rows: Some(100),
                cols: Some(4), // an optimistic hint the bound must ignore
                nnz: None,
            },
        );
        dag.add(
            HopOp::TWrite("T".into()),
            vec![t],
            VType::Matrix,
            MatrixCharacteristics::unknown(),
        );
        let mut env = AbsEnv::new();
        env.insert(
            "y".into(),
            SizeBound::from_mc(&MatrixCharacteristics::dense(100, 1)),
        );
        let bounds = eval_all(&dag, &env, &cfg());
        assert_eq!(bounds[t.0].cols.hi, None, "table cols must stay ⊤");
        assert_eq!(bounds[t.0].nnz_hi(), Some(100), "one non-zero per row");
        assert_eq!(bounds[t.0].bytes_hi(), None);
    }
}

//! The abstract domain: intervals on dimensions and non-zero counts.
//!
//! A [`DimInterval`] is `[lo, hi]` over `u64` with `hi = None` meaning
//! unbounded (⊤ in that component). A [`SizeBound`] is the product
//! domain over `(rows, cols, nnz)`. The partial order is interval
//! inclusion; `join` is the hull; `widen` jumps a growing component
//! straight to its extreme (`lo → 0`, `hi → None`), which guarantees
//! fixpoint termination in at most two widenings per component.
//!
//! Only the upper ends feed the byte bounds, but the lower ends of the
//! dimension intervals are kept honest: transfer functions use
//! `lo ≥ 2` on a column count to rule out vector broadcasting, which
//! keeps elementwise sparsity bounds from being scaled unnecessarily.

use reml_matrix::MatrixCharacteristics;

/// Bytes per dense cell (f64).
const DENSE_CELL_BYTES: u64 = 8;
/// Bytes per sparse non-zero (CSR column index + value).
const SPARSE_NNZ_BYTES: u64 = 12;
/// Bytes per sparse row pointer.
const SPARSE_ROW_BYTES: u64 = 4;
/// Bytes charged for a scalar binding (the executor keeps scalars out of
/// the buffer pool, so any constant ≥ 0 is sound; 16 covers a boxed f64).
pub const SCALAR_BYTES: u64 = 16;
/// Bytes per MB as f64.
const MBF: f64 = (1024 * 1024) as f64;

/// Saturating addition over upper bounds (`None` = ∞ absorbs).
pub fn add_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    Some(a?.saturating_add(b?))
}

/// Saturating multiplication over upper bounds (`None` = ∞ absorbs).
pub fn mul_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    Some(a?.saturating_mul(b?))
}

/// Minimum over upper bounds (`None` = ∞, so any finite side wins).
pub fn min_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// Maximum over upper bounds (`None` = ∞ absorbs).
pub fn max_hi(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    Some(a?.max(b?))
}

/// An interval `[lo, hi]` over `u64`; `hi = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimInterval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound; `None` = unbounded.
    pub hi: Option<u64>,
}

impl DimInterval {
    /// The single-point interval `[v, v]`.
    pub fn exact(v: u64) -> Self {
        DimInterval { lo: v, hi: Some(v) }
    }

    /// The full interval `[0, ∞)`.
    pub fn top() -> Self {
        DimInterval { lo: 0, hi: None }
    }

    /// `[0, hi]`.
    pub fn bounded(hi: Option<u64>) -> Self {
        DimInterval { lo: 0, hi }
    }

    /// Exact when the compiler knows the value, ⊤ otherwise.
    pub fn from_opt(v: Option<u64>) -> Self {
        match v {
            Some(v) => DimInterval::exact(v),
            None => DimInterval::top(),
        }
    }

    /// Hull join: `[min lo, max hi]`.
    pub fn join(self, other: DimInterval) -> DimInterval {
        DimInterval {
            lo: self.lo.min(other.lo),
            hi: max_hi(self.hi, other.hi),
        }
    }

    /// Widening: any end that moved outward jumps to its extreme. The
    /// result equals `self` iff `next ⊆ self`, which is the fixpoint
    /// convergence test.
    pub fn widen(self, next: DimInterval) -> DimInterval {
        let lo = if next.lo < self.lo { 0 } else { self.lo };
        let hi = match (self.hi, next.hi) {
            (Some(cur), Some(new)) if new > cur => None,
            (Some(_), None) => None,
            _ => self.hi,
        };
        DimInterval { lo, hi }
    }

    /// Pointwise interval addition.
    pub fn plus(self, other: DimInterval) -> DimInterval {
        DimInterval {
            lo: self.lo.saturating_add(other.lo),
            hi: add_hi(self.hi, other.hi),
        }
    }

    /// Pointwise interval maximum (broadcast dimension of an elementwise
    /// op: the result extent is the larger operand's).
    pub fn broadcast_max(self, other: DimInterval) -> DimInterval {
        DimInterval {
            lo: self.lo.max(other.lo),
            hi: max_hi(self.hi, other.hi),
        }
    }
}

/// Interval bounds on one value: rows × cols dimensions plus non-zeros.
/// Scalars are modelled as exact 1×1 with `nnz ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeBound {
    /// Row-count interval.
    pub rows: DimInterval,
    /// Column-count interval.
    pub cols: DimInterval,
    /// Non-zero-count interval (only the upper end is meaningful; it is
    /// always capped by `rows·cols` when bytes are derived).
    pub nnz: DimInterval,
}

impl SizeBound {
    /// The ⊤ element: nothing known.
    pub fn top() -> Self {
        SizeBound {
            rows: DimInterval::top(),
            cols: DimInterval::top(),
            nnz: DimInterval::top(),
        }
    }

    /// A scalar binding (exact 1×1).
    pub fn scalar() -> Self {
        SizeBound {
            rows: DimInterval::exact(1),
            cols: DimInterval::exact(1),
            nnz: DimInterval::bounded(Some(1)),
        }
    }

    /// Exact injection of compiler characteristics (ground-truth input
    /// metadata): known components become point intervals, unknown ones ⊤.
    pub fn from_mc(mc: &MatrixCharacteristics) -> Self {
        let rows = DimInterval::from_opt(mc.rows);
        let cols = DimInterval::from_opt(mc.cols);
        let cells = mul_hi(rows.hi, cols.hi);
        SizeBound {
            rows,
            cols,
            nnz: DimInterval::bounded(min_hi(mc.nnz, cells)),
        }
    }

    /// Dimensions from compiler characteristics, sparsity unknown
    /// (`nnz ∈ [0, cells]`).
    pub fn from_mc_dims(mc: &MatrixCharacteristics) -> Self {
        let rows = DimInterval::from_opt(mc.rows);
        let cols = DimInterval::from_opt(mc.cols);
        let cells = mul_hi(rows.hi, cols.hi);
        SizeBound {
            rows,
            cols,
            nnz: DimInterval::bounded(cells),
        }
    }

    /// Upper bound on the cell count.
    pub fn cells_hi(&self) -> Option<u64> {
        mul_hi(self.rows.hi, self.cols.hi)
    }

    /// Upper bound on nnz, capped at the cell count.
    pub fn nnz_hi(&self) -> Option<u64> {
        min_hi(self.nnz.hi, self.cells_hi())
    }

    /// Sound upper bound on the in-memory bytes of this value: the
    /// maximum over both representations the executor may pick (dense
    /// array vs CSR), `None` when either dimension is unbounded.
    pub fn bytes_hi(&self) -> Option<u64> {
        let dense = mul_hi(self.cells_hi(), Some(DENSE_CELL_BYTES));
        let sparse = add_hi(
            mul_hi(self.nnz_hi(), Some(SPARSE_NNZ_BYTES)),
            mul_hi(self.rows.hi, Some(SPARSE_ROW_BYTES)),
        );
        max_hi(dense, sparse)
    }

    /// [`SizeBound::bytes_hi`] in MB; `INFINITY` when unbounded.
    pub fn mb_hi(&self) -> f64 {
        match self.bytes_hi() {
            Some(bytes) => bytes as f64 / MBF,
            None => f64::INFINITY,
        }
    }

    /// Dense-representation upper bound in MB (the dual of
    /// `memest::dense_size_mb`); `INFINITY` when unbounded.
    pub fn dense_mb_hi(&self) -> f64 {
        match mul_hi(self.cells_hi(), Some(DENSE_CELL_BYTES)) {
            Some(bytes) => bytes as f64 / MBF,
            None => f64::INFINITY,
        }
    }

    /// Hull join, componentwise.
    pub fn join(&self, other: &SizeBound) -> SizeBound {
        SizeBound {
            rows: self.rows.join(other.rows),
            cols: self.cols.join(other.cols),
            nnz: self.nnz.join(other.nnz),
        }
    }

    /// Widening, componentwise. `self.widen(next) == self` iff
    /// `next ⊆ self`.
    pub fn widen(&self, next: &SizeBound) -> SizeBound {
        SizeBound {
            rows: self.rows.widen(next.rows),
            cols: self.cols.widen(next.cols),
            nnz: self.nnz.widen(next.nnz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_hull() {
        let a = DimInterval::exact(10);
        let b = DimInterval::exact(11);
        let j = a.join(b);
        assert_eq!(
            j,
            DimInterval {
                lo: 10,
                hi: Some(11)
            }
        );
        assert_eq!(j.join(DimInterval::top()), DimInterval { lo: 0, hi: None });
    }

    #[test]
    fn widen_reaches_extremes_once() {
        let a = DimInterval::exact(10);
        let grown = DimInterval {
            lo: 10,
            hi: Some(20),
        };
        let w = a.widen(grown);
        assert_eq!(w.hi, None);
        // Idempotent once at the extreme.
        assert_eq!(
            w.widen(DimInterval {
                lo: 10,
                hi: Some(1 << 40)
            }),
            w
        );
        // Stable when next is included.
        assert_eq!(a.widen(a), a);
        assert_eq!(
            a.widen(DimInterval {
                lo: 10,
                hi: Some(10)
            }),
            a
        );
    }

    #[test]
    fn scalar_bytes_are_sixteen() {
        assert_eq!(SizeBound::scalar().bytes_hi(), Some(16));
    }

    #[test]
    fn bytes_cover_both_representations() {
        // 1000×1000 with nnz ≤ 500k: dense 8M, sparse 12·500k + 4·1000.
        let b = SizeBound {
            rows: DimInterval::exact(1000),
            cols: DimInterval::exact(1000),
            nnz: DimInterval::bounded(Some(500_000)),
        };
        assert_eq!(b.bytes_hi(), Some(8_000_000));
        // Very sparse tall matrix: sparse rep dominated by row pointers
        // never exceeds the reported bound.
        let tall = SizeBound {
            rows: DimInterval::exact(1_000_000),
            cols: DimInterval::exact(1),
            nnz: DimInterval::bounded(Some(1_000_000)),
        };
        let bytes = tall.bytes_hi().unwrap();
        assert!(bytes >= 12 * 1_000_000 + 4 * 1_000_000);
    }

    #[test]
    fn unbounded_dims_have_no_byte_bound() {
        let mut b = SizeBound::top();
        assert_eq!(b.bytes_hi(), None);
        b.rows = DimInterval::exact(10);
        assert_eq!(b.bytes_hi(), None);
    }

    #[test]
    fn nnz_capped_by_cells() {
        let b = SizeBound {
            rows: DimInterval::exact(10),
            cols: DimInterval::exact(10),
            nnz: DimInterval::top(),
        };
        assert_eq!(b.nnz_hi(), Some(100));
        assert!(b.bytes_hi().is_some());
    }
}

//! The abstract interpreter: a walk over the compiled runtime tree that
//! carries an interval environment per live variable, evaluates the
//! transfer functions over each generic block's HOP DAG, hull-joins at
//! `if`/`else` merges, and runs a widening fixpoint at `while`/`for`
//! loop heads.
//!
//! The walk follows the *runtime* block tree (not the source statement
//! tree): constant-folded branches never execute, so they must not
//! contribute to the bounds, and every runtime block carries its source
//! block id for the DAG rebuild. Per generic block the canonical HOP DAG
//! is rebuilt once via [`reml_planlint::rebuild_block_dag`] from the
//! recorded (resource-independent) entry environment — hop ids then
//! align with the `_mVar<hop>` names in the lowered instructions.
//!
//! ## Soundness of the leaf injections
//!
//! Transfer rules take dimensions from the rebuilt DAG's characteristics
//! only at leaf positions whose extents derive from scalar constants
//! (data generators, indexing extents, `diag`). Those characteristics
//! were inferred under the compiler's relaxed loop environment
//! (`relax_loop_env`), which keeps a fact only if it is stable across
//! iterations for every program that executes without an
//! undefined-variable error — a fact that could change at iteration ≥ 2
//! would require reading a body-defined variable before its first
//! in-iteration definition, which faults at iteration 1. Data-dependent
//! extents (`table()` columns) are *never* injected and stay ⊤.

use std::collections::BTreeMap;

use reml_compiler::pipeline::{AnalyzedProgram, CompiledProgram};
use reml_compiler::{CompileConfig, CompileError, HopDag, HopOp};
use reml_lang::blocks::assigned_vars;
use reml_planlint::find_block;
use reml_runtime::program::RtBlock;

use crate::interval::SizeBound;
use crate::transfer::transfer;

/// Interval environment: one [`SizeBound`] per live variable (matrices
/// *and* scalars — scalar bindings carry the exact 1×1 bound).
pub type AbsEnv = BTreeMap<String, SizeBound>;

/// Safety cap on widening iterations per loop. Termination is already
/// guaranteed (each interval component widens at most once and the
/// variable set is finite); the cap only guards against a lattice bug
/// looping forever — on hitting it, every variable the loop body can
/// assign is forced to ⊤, which is trivially sound.
const MAX_FIXPOINT_ITERS: usize = 64;

/// Bounds computed for one generic block.
#[derive(Debug, Clone)]
pub struct BlockBounds {
    /// Interval environment at block entry (post-fixpoint for loop
    /// bodies).
    pub entry: AbsEnv,
    /// Bound per hop of `dag`, indexed by hop id (⊤ for dead hops).
    pub hops: Vec<SizeBound>,
    /// Join of the bounds written to each variable in this block (a
    /// variable's in-block footprint is covered by entry ⊔ writes).
    pub writes: BTreeMap<String, SizeBound>,
    /// The rebuilt canonical HOP DAG; `_mVar<hop>` instruction names
    /// index into it.
    pub dag: HopDag,
}

/// Result of the whole-program analysis.
#[derive(Debug, Clone, Default)]
pub struct ProgramBounds {
    /// Per generic block (keyed by source block id).
    pub blocks: BTreeMap<usize, BlockBounds>,
    /// Interval environment under which each predicate evaluates, keyed
    /// by the owning control block's source id (`if`/`while`: the loop
    /// fixpoint; `for`: the pre-loop environment — from/to evaluate
    /// once).
    pub pred_envs: BTreeMap<usize, AbsEnv>,
    /// Total widening steps taken across all loops (diagnostics).
    pub widening_steps: u64,
}

/// Run the abstract interpretation over a compiled program and return
/// the per-block bounds.
pub fn analyze_bounds(
    analyzed: &AnalyzedProgram,
    compiled: &CompiledProgram,
    config: &CompileConfig,
) -> Result<ProgramBounds, CompileError> {
    let mut analyzer = Analyzer {
        analyzed,
        compiled,
        config,
        dags: BTreeMap::new(),
        out: ProgramBounds::default(),
    };
    let mut env = AbsEnv::new();
    analyzer.walk(&compiled.runtime.blocks, &mut env, true)?;
    Ok(analyzer.out)
}

struct Analyzer<'a> {
    analyzed: &'a AnalyzedProgram,
    compiled: &'a CompiledProgram,
    config: &'a CompileConfig,
    /// Rebuilt DAG per source block id (`None`: rebuild impossible, the
    /// block's effects are treated as ⊤). The DAG is entry-environment
    /// dependent only through the *compiler* env, which is fixed, so one
    /// rebuild serves every fixpoint iteration.
    dags: BTreeMap<usize, Option<HopDag>>,
    out: ProgramBounds,
}

impl<'a> Analyzer<'a> {
    fn dag_for(&mut self, source: usize) -> Result<Option<&HopDag>, CompileError> {
        if !self.dags.contains_key(&source) {
            let rebuilt = match (
                find_block(&self.analyzed.blocks, source),
                self.compiled.entry_envs.get(&source),
            ) {
                (Some(block), Some(entry)) => {
                    Some(reml_planlint::rebuild_block_dag(self.config, block, entry)?)
                }
                _ => None,
            };
            self.dags.insert(source, rebuilt);
        }
        Ok(self.dags.get(&source).and_then(|d| d.as_ref()))
    }

    /// Interpret a block list, updating `env` in place. `record = false`
    /// runs pure fixpoint iterations; `record = true` additionally
    /// stores entry environments, hop bounds, and predicate
    /// environments into `self.out`.
    fn walk(
        &mut self,
        blocks: &[RtBlock],
        env: &mut AbsEnv,
        record: bool,
    ) -> Result<(), CompileError> {
        for block in blocks {
            match block {
                RtBlock::Generic { source, .. } => {
                    self.walk_generic(source.0, env, record)?;
                }
                RtBlock::If {
                    source,
                    then_blocks,
                    else_blocks,
                    ..
                } => {
                    if record {
                        self.out.pred_envs.insert(source.0, env.clone());
                    }
                    let mut then_env = env.clone();
                    self.walk(then_blocks, &mut then_env, record)?;
                    let mut else_env = env.clone();
                    self.walk(else_blocks, &mut else_env, record)?;
                    *env = hull_join(&then_env, &else_env);
                }
                RtBlock::While { source, body, .. } => {
                    let fix = self.fixpoint(source.0, body, env)?;
                    if record {
                        // The predicate re-evaluates before every
                        // iteration: it sees the fixpoint environment.
                        self.out.pred_envs.insert(source.0, fix.clone());
                        let mut pass = fix.clone();
                        self.walk(body, &mut pass, true)?;
                    }
                    *env = fix;
                }
                RtBlock::For {
                    source, var, body, ..
                } => {
                    if record {
                        // from/to evaluate once, before the loop.
                        self.out.pred_envs.insert(source.0, env.clone());
                    }
                    let mut env0 = env.clone();
                    env0.insert(var.clone(), SizeBound::scalar());
                    let fix = self.fixpoint(source.0, body, &env0)?;
                    if record {
                        let mut pass = fix.clone();
                        self.walk(body, &mut pass, true)?;
                    }
                    *env = fix;
                }
            }
        }
        Ok(())
    }

    fn walk_generic(
        &mut self,
        source: usize,
        env: &mut AbsEnv,
        record: bool,
    ) -> Result<(), CompileError> {
        let config = self.config;
        let Some(dag) = self.dag_for(source)? else {
            // No rebuildable DAG (e.g. the block never got an entry
            // environment): its effects are unknown — every variable the
            // source block may assign goes to ⊤.
            if let Some(block) = find_block(&self.analyzed.blocks, source) {
                for name in assigned_vars(std::iter::once(block)) {
                    env.insert(name, SizeBound::top());
                }
            }
            return Ok(());
        };

        let entry = env.clone();
        let mut hops = vec![SizeBound::top(); dag.len()];
        for id in dag.live_hops(&[]) {
            hops[id.0] = transfer(dag, id, &hops, &entry, config);
        }

        // Apply writes in ascending hop id order — the lowerer emits the
        // end-of-block assignments sorted the same way, so the last
        // write wins for the exit environment; the recorded `writes` map
        // joins all of them (any assignment's value is live within the
        // block).
        let mut write_joins: BTreeMap<String, SizeBound> = BTreeMap::new();
        for (i, hop) in dag.hops.iter().enumerate() {
            if let HopOp::TWrite(name) = &hop.op {
                let bound = hops[i];
                write_joins
                    .entry(name.clone())
                    .and_modify(|b| *b = b.join(&bound))
                    .or_insert(bound);
                env.insert(name.clone(), bound);
            }
        }

        if record {
            let dag = dag.clone();
            self.out.blocks.insert(
                source,
                BlockBounds {
                    entry,
                    hops,
                    writes: write_joins,
                    dag,
                },
            );
        }
        Ok(())
    }

    /// Widening fixpoint of a loop body from `env0`. The returned
    /// environment `E` satisfies `env0 ⊆ E` (covers zero iterations) and
    /// `F(E) ⊆ E` (covers every further iteration), so it is a sound
    /// loop invariant and also the exit environment.
    fn fixpoint(
        &mut self,
        source: usize,
        body: &[RtBlock],
        env0: &AbsEnv,
    ) -> Result<AbsEnv, CompileError> {
        let mut cur = env0.clone();
        for _ in 0..MAX_FIXPOINT_ITERS {
            let mut next = cur.clone();
            self.walk(body, &mut next, false)?;
            let widened = widen_env(&cur, &hull_join(&cur, &next));
            if widened == cur {
                return Ok(cur);
            }
            self.out.widening_steps += 1;
            cur = widened;
        }
        // Lattice-bug safety net: force ⊤ for everything the loop can
        // assign (trivially sound) rather than looping forever.
        if let Some(block) = find_block(&self.analyzed.blocks, source) {
            for name in assigned_vars(std::iter::once(block)) {
                cur.insert(name, SizeBound::top());
            }
        }
        Ok(cur)
    }
}

/// Hull join of two environments: keys present in both are joined; a key
/// present in only one keeps its value (the variable simply does not
/// exist on the other path, and error-free executions only read
/// variables on paths that defined them).
pub fn hull_join(a: &AbsEnv, b: &AbsEnv) -> AbsEnv {
    let mut out = a.clone();
    for (name, bound) in b {
        out.entry(name.clone())
            .and_modify(|existing| *existing = existing.join(bound))
            .or_insert(*bound);
    }
    out
}

/// Environment widening: keys of `next` are widened against `prev`
/// (fresh keys enter as-is and widen on their next growth).
/// `widen_env(prev, next) == prev` iff `next ⊆ prev` pointwise, which is
/// the fixpoint convergence test.
pub fn widen_env(prev: &AbsEnv, next: &AbsEnv) -> AbsEnv {
    let mut out = AbsEnv::new();
    for (name, bound) in next {
        match prev.get(name) {
            Some(p) => out.insert(name.clone(), p.widen(bound)),
            None => out.insert(name.clone(), *bound),
        };
    }
    out
}

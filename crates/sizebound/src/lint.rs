//! The PL030 rule family: static diagnostics comparing the compiler's
//! point memory estimates against the sound interval bounds.
//!
//! * **PL030** (error) — a hop's point estimate exceeds its finite dual
//!   (worst-case) estimate. The dual is an upper bound on every
//!   reachable size, so this is an internal inconsistency between the
//!   estimators and must never fire.
//! * **PL031** (warning) — a CP-placed matrix operator fits the budget
//!   under the point estimate but not under the dual: the placement is
//!   justified only by the optimistic estimate and may spill or fail on
//!   adversarial sparsity drift.
//! * **PL032** (error) — a forced-CP operator (dense solve,
//!   scalar→matrix cast — no MR implementation exists) whose *finite*
//!   dual estimate exceeds the CP budget: no execution of this plan can
//!   fit. Infinite duals are not provable violations and do not fire.
//!
//! This module also contributes an interval-analysis angle to the PL051
//! rewrite rule: the dimensions a rewrite's audit record claims for its
//! rewritten root must lie inside the sound interval bound the abstract
//! interpretation computed for that hop, independently of the rewrite
//! engine's own shape propagation.

use reml_compiler::pipeline::CompiledProgram;
use reml_compiler::{CompileConfig, HopId, HopOp, VType};
use reml_planlint::{Diagnostic, LintReport};
use reml_runtime::instructions::Instruction;
use reml_runtime::program::RtBlock;

use crate::analysis::ProgramBounds;
use crate::dual_estimate_mb;

/// Relative slack when comparing the two estimators: both round through
/// f64 MB, so require the point estimate to exceed the dual by more than
/// float noise before declaring an inconsistency.
const EPS_REL: f64 = 1e-6;

/// Run the PL030 rule family over an analyzed program.
pub fn lint(
    compiled: &CompiledProgram,
    config: &CompileConfig,
    bounds: &ProgramBounds,
) -> LintReport {
    let mut diags = Vec::new();
    let budget = config.cp_budget_mb();
    for block in &compiled.runtime.blocks {
        block.visit_generic(&mut |b| {
            let RtBlock::Generic {
                source,
                instructions,
                ..
            } = b
            else {
                return;
            };
            let Some(bb) = bounds.blocks.get(&source.0) else {
                return;
            };
            for instr in instructions {
                let Instruction::Cp(cp) = instr else { continue };
                let Some(idx) = cp
                    .output
                    .as_deref()
                    .and_then(|o| o.strip_prefix("_mVar"))
                    .and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                if idx >= bb.dag.len() {
                    continue;
                }
                let hop = bb.dag.hop(HopId(idx));
                if hop.vtype != VType::Matrix {
                    continue;
                }
                let point = hop.mem_mb;
                let dual = dual_estimate_mb(bb, HopId(idx));
                let path = format!("block {} hop {}", source.0, idx);
                let forced_cp = matches!(hop.op, HopOp::Solve | HopOp::CastMatrix);
                if point.is_finite() && dual.is_finite() && point > dual * (1.0 + EPS_REL) + 1e-9 {
                    diags.push(Diagnostic::new(
                        "PL030",
                        &path,
                        format!(
                            "point memory estimate {point:.3} MB exceeds the sound \
                             worst-case bound {dual:.3} MB for {:?}",
                            hop.op
                        ),
                    ));
                }
                if forced_cp {
                    if dual.is_finite() && dual > budget {
                        diags.push(Diagnostic::new(
                            "PL032",
                            &path,
                            format!(
                                "forced-CP operator {:?} needs at most {dual:.3} MB but \
                                 provably cannot fit the {budget:.3} MB CP budget",
                                hop.op
                            ),
                        ));
                    }
                } else if point <= budget && dual > budget {
                    diags.push(Diagnostic::new(
                        "PL031",
                        &path,
                        format!(
                            "CP placement of {:?} fits the {budget:.3} MB budget only \
                             under the point estimate ({point:.3} MB); the sound bound \
                             is {}",
                            hop.op,
                            if dual.is_finite() {
                                format!("{dual:.3} MB")
                            } else {
                                "unbounded".to_string()
                            }
                        ),
                    ));
                }
            }
        });
    }
    // PL051 from the interval side: a rewrite may sharpen shape metadata
    // but never claim a dimension the sound bounds exclude. The rebuilt
    // DAG in `bounds` is post-rewrite, so the record's root id indexes
    // the same hop the intervals were computed for.
    for (bid, audit) in &compiled.rewrite_audit.blocks {
        let Some(bb) = bounds.blocks.get(bid) else {
            continue;
        };
        for (idx, rec) in audit.records.iter().enumerate() {
            // Missing snapshots are PL050's problem; out-of-range roots
            // mean the audit refers to a different DAG — also PL050.
            let Some((_, after_root)) = rec.after.iter().find(|(id, _)| *id == rec.root) else {
                continue;
            };
            if rec.root.0 >= bb.hops.len() {
                continue;
            }
            let bound = &bb.hops[rec.root.0];
            let path = format!("block {bid}/rewrite {idx}");
            for (dim, claimed, itv) in [
                ("rows", after_root.mc.rows, bound.rows),
                ("cols", after_root.mc.cols, bound.cols),
            ] {
                let Some(v) = claimed else { continue };
                if v < itv.lo || itv.hi.is_some_and(|hi| v > hi) {
                    diags.push(Diagnostic::new(
                        "PL051",
                        &path,
                        format!(
                            "rewritten root {:?} claims {dim}={v}, outside the sound \
                             interval bound [{}, {}]",
                            after_root.op,
                            itv.lo,
                            itv.hi.map_or_else(|| "inf".to_string(), |h| h.to_string())
                        ),
                    ));
                }
            }
        }
    }
    LintReport::from_diagnostics(diags)
}

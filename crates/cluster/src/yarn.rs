//! ResourceManager container-accounting state machine.
//!
//! This is the stateful half of the YARN model: the simulator requests and
//! releases containers; the RM tracks per-node allocations, enforces
//! min/max constraints, and reports cluster utilization. Scheduling policy
//! is first-fit by freest node, which is enough to reproduce the
//! memory-capacity throughput ceilings of §5.3.

use crate::config::ClusterConfig;

/// Identifier of a granted container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContainerId(pub u64);

/// A container request (memory only; §6 notes YARN's default scheduler
/// considers only memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerRequest {
    /// Requested memory, MB. Clamped up to `min_alloc` on grant.
    pub mem_mb: u64,
}

/// Errors from the RM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum YarnError {
    /// Request exceeds the maximum allocation constraint.
    ExceedsMaxAllocation {
        /// Requested MB.
        requested_mb: u64,
        /// Cluster max MB.
        max_mb: u64,
    },
    /// No node currently has enough free memory.
    InsufficientResources {
        /// Requested MB.
        requested_mb: u64,
    },
    /// Release of an unknown container.
    UnknownContainer(ContainerId),
}

impl std::fmt::Display for YarnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            YarnError::ExceedsMaxAllocation {
                requested_mb,
                max_mb,
            } => write!(
                f,
                "request of {requested_mb} MB exceeds max allocation {max_mb} MB"
            ),
            YarnError::InsufficientResources { requested_mb } => {
                write!(f, "no node can fit {requested_mb} MB right now")
            }
            YarnError::UnknownContainer(id) => write!(f, "unknown container {id:?}"),
        }
    }
}

impl std::error::Error for YarnError {}

/// A live container grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Grant {
    id: ContainerId,
    node: u32,
    mem_mb: u64,
}

/// Mutable RM state over a static [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct YarnState {
    config: ClusterConfig,
    free_mb: Vec<u64>,
    grants: Vec<Grant>,
    next_id: u64,
    /// Per-node liveness; lost nodes accept no allocations until restored.
    down: Vec<bool>,
    /// Containers preempted by the RM (fault injection / rebalancing).
    pub preemptions: u64,
    /// Containers lost to node failures.
    pub containers_lost: u64,
    /// Containers re-queued after a preemption or node loss.
    pub requeues: u64,
}

impl YarnState {
    /// Fresh RM over an idle cluster.
    pub fn new(config: ClusterConfig) -> Self {
        let free_mb = vec![config.node_mem_mb; config.num_nodes as usize];
        let down = vec![false; config.num_nodes as usize];
        YarnState {
            config,
            free_mb,
            grants: Vec::new(),
            next_id: 0,
            down,
            preemptions: 0,
            containers_lost: 0,
            requeues: 0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Try to allocate a container. The effective size is the request
    /// clamped up to `min_alloc`; placement is on the node with the most
    /// free memory (best-fit-decreasing keeps large future requests
    /// satisfiable).
    pub fn allocate(&mut self, req: ContainerRequest) -> Result<ContainerId, YarnError> {
        let mem = req.mem_mb.max(self.config.min_alloc_mb);
        if mem > self.config.max_alloc_mb {
            return Err(YarnError::ExceedsMaxAllocation {
                requested_mb: mem,
                max_mb: self.config.max_alloc_mb,
            });
        }
        let node = self
            .free_mb
            .iter()
            .enumerate()
            .filter(|(i, free)| !self.down[*i] && **free >= mem)
            .max_by_key(|(_, free)| **free)
            .map(|(i, _)| i as u32)
            .ok_or(YarnError::InsufficientResources { requested_mb: mem })?;
        self.free_mb[node as usize] -= mem;
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.grants.push(Grant {
            id,
            node,
            mem_mb: mem,
        });
        reml_trace::count("yarn.allocations", 1);
        reml_trace::count("yarn.allocated_mb", mem);
        Ok(id)
    }

    /// Release a container.
    pub fn release(&mut self, id: ContainerId) -> Result<(), YarnError> {
        let idx = self
            .grants
            .iter()
            .position(|g| g.id == id)
            .ok_or(YarnError::UnknownContainer(id))?;
        let grant = self.grants.swap_remove(idx);
        self.free_mb[grant.node as usize] += grant.mem_mb;
        reml_trace::count("yarn.releases", 1);
        Ok(())
    }

    /// Preempt a container: the RM reclaims the memory (counted
    /// separately from voluntary releases) and the owner is expected to
    /// [`Self::requeue`] the work. Returns the reclaimed memory, MB.
    pub fn preempt(&mut self, id: ContainerId) -> Result<u64, YarnError> {
        let idx = self
            .grants
            .iter()
            .position(|g| g.id == id)
            .ok_or(YarnError::UnknownContainer(id))?;
        let grant = self.grants.swap_remove(idx);
        self.free_mb[grant.node as usize] += grant.mem_mb;
        self.preemptions += 1;
        reml_trace::count("yarn.preemptions", 1);
        reml_trace::event!("yarn.preempt", container = id.0, mem_mb = grant.mem_mb);
        Ok(grant.mem_mb)
    }

    /// Re-queue previously preempted/lost work: a fresh allocation that
    /// is accounted as a requeue (re-execution pays scheduling delay on
    /// top of the work itself; the caller charges the time).
    pub fn requeue(&mut self, req: ContainerRequest) -> Result<ContainerId, YarnError> {
        let id = self.allocate(req)?;
        self.requeues += 1;
        reml_trace::count("yarn.requeues", 1);
        Ok(id)
    }

    /// A NodeManager is lost: every container on it dies (counted in
    /// `containers_lost`) and the node accepts no further allocations
    /// until [`Self::restore_node`]. Returns the killed container ids.
    pub fn fail_node(&mut self, node: u32) -> Vec<ContainerId> {
        let n = node as usize;
        if n >= self.down.len() || self.down[n] {
            return Vec::new();
        }
        self.down[n] = true;
        self.free_mb[n] = 0;
        let mut killed = Vec::new();
        self.grants.retain(|g| {
            if g.node == node {
                killed.push(g.id);
                false
            } else {
                true
            }
        });
        self.containers_lost += killed.len() as u64;
        reml_trace::count("yarn.containers_lost", killed.len() as u64);
        reml_trace::event!("yarn.node_failed", node = node, killed = killed.len());
        killed
    }

    /// A lost node rejoins with its full (idle) capacity.
    pub fn restore_node(&mut self, node: u32) {
        let n = node as usize;
        if n < self.down.len() && self.down[n] {
            self.down[n] = false;
            self.free_mb[n] = self.config.node_mem_mb;
        }
    }

    /// Whether a node is currently down.
    pub fn is_node_down(&self, node: u32) -> bool {
        self.down.get(node as usize).copied().unwrap_or(false)
    }

    /// Number of live (not-down) nodes.
    pub fn active_nodes(&self) -> u32 {
        self.down.iter().filter(|d| !**d).count() as u32
    }

    /// Containers currently placed on a node.
    pub fn containers_on(&self, node: u32) -> Vec<ContainerId> {
        self.grants
            .iter()
            .filter(|g| g.node == node)
            .map(|g| g.id)
            .collect()
    }

    /// Node hosting a container.
    pub fn node_of(&self, id: ContainerId) -> Option<u32> {
        self.grants.iter().find(|g| g.id == id).map(|g| g.node)
    }

    /// Memory currently allocated, MB.
    pub fn allocated_mb(&self) -> u64 {
        self.grants.iter().map(|g| g.mem_mb).sum()
    }

    /// Memory currently free across the cluster, MB.
    pub fn free_mb(&self) -> u64 {
        self.free_mb.iter().sum()
    }

    /// Number of live containers.
    pub fn num_containers(&self) -> usize {
        self.grants.len()
    }

    /// Cluster memory utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let total = self.config.aggregate_mem_mb();
        if total == 0 {
            0.0
        } else {
            self.allocated_mb() as f64 / total as f64
        }
    }

    /// Largest single container currently satisfiable, MB.
    pub fn max_satisfiable_mb(&self) -> u64 {
        self.free_mb
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .min(self.config.max_alloc_mb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm() -> YarnState {
        YarnState::new(ClusterConfig::small_test_cluster())
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut rm = rm();
        let total = rm.free_mb();
        let id = rm.allocate(ContainerRequest { mem_mb: 1024 }).unwrap();
        assert_eq!(rm.allocated_mb(), 1024);
        assert_eq!(rm.free_mb(), total - 1024);
        rm.release(id).unwrap();
        assert_eq!(rm.allocated_mb(), 0);
        assert_eq!(rm.free_mb(), total);
    }

    #[test]
    fn small_requests_clamped_to_min_alloc() {
        let mut rm = rm();
        rm.allocate(ContainerRequest { mem_mb: 1 }).unwrap();
        assert_eq!(rm.allocated_mb(), 256);
    }

    #[test]
    fn oversized_request_rejected() {
        let mut rm = rm();
        let err = rm
            .allocate(ContainerRequest { mem_mb: 9 * 1024 })
            .unwrap_err();
        assert!(matches!(err, YarnError::ExceedsMaxAllocation { .. }));
    }

    #[test]
    fn cluster_fills_up() {
        let mut rm = rm();
        // 2 nodes x 8 GB; 8 GB requests fit twice, then fail.
        rm.allocate(ContainerRequest { mem_mb: 8 * 1024 }).unwrap();
        rm.allocate(ContainerRequest { mem_mb: 8 * 1024 }).unwrap();
        let err = rm
            .allocate(ContainerRequest { mem_mb: 8 * 1024 })
            .unwrap_err();
        assert!(matches!(err, YarnError::InsufficientResources { .. }));
        assert_eq!(rm.utilization(), 1.0);
    }

    #[test]
    fn placement_prefers_freest_node() {
        let mut rm = rm();
        // First 6 GB on node A, second 6 GB must go on node B: placement
        // on the freest node leaves 2 GB + 2 GB free, so a third 4 GB
        // request must fail while 4 GB total is still free.
        rm.allocate(ContainerRequest { mem_mb: 6 * 1024 }).unwrap();
        rm.allocate(ContainerRequest { mem_mb: 6 * 1024 }).unwrap();
        assert_eq!(rm.free_mb(), 4 * 1024);
        assert!(rm.allocate(ContainerRequest { mem_mb: 4 * 1024 }).is_err());
        assert_eq!(rm.max_satisfiable_mb(), 2 * 1024);
    }

    #[test]
    fn unknown_release_rejected() {
        let mut rm = rm();
        assert!(matches!(
            rm.release(ContainerId(99)),
            Err(YarnError::UnknownContainer(_))
        ));
    }

    #[test]
    fn preemption_accounting_and_requeue() {
        let mut rm = rm();
        let a = rm.allocate(ContainerRequest { mem_mb: 1024 }).unwrap();
        let freed = rm.preempt(a).unwrap();
        assert_eq!(freed, 1024);
        assert_eq!(rm.preemptions, 1);
        assert_eq!(rm.allocated_mb(), 0);
        // The work is requeued: memory comes back, requeue is counted.
        rm.requeue(ContainerRequest { mem_mb: 1024 }).unwrap();
        assert_eq!(rm.requeues, 1);
        assert_eq!(rm.allocated_mb(), 1024);
        // Double preemption of a dead id is rejected.
        assert!(matches!(rm.preempt(a), Err(YarnError::UnknownContainer(_))));
    }

    #[test]
    fn node_failure_kills_containers_and_blocks_placement() {
        let mut rm = rm();
        // Fill node A (freest-node placement alternates; pin by filling).
        let a = rm.allocate(ContainerRequest { mem_mb: 8 * 1024 }).unwrap();
        let node = rm.node_of(a).unwrap();
        let killed = rm.fail_node(node);
        assert_eq!(killed, vec![a]);
        assert_eq!(rm.containers_lost, 1);
        assert!(rm.is_node_down(node));
        assert_eq!(rm.active_nodes(), 1);
        // Only the surviving node's 8 GB remain satisfiable.
        assert_eq!(rm.free_mb(), 8 * 1024);
        rm.allocate(ContainerRequest { mem_mb: 8 * 1024 }).unwrap();
        assert!(rm.allocate(ContainerRequest { mem_mb: 256 }).is_err());
        // Restore: capacity returns, placement works again.
        rm.restore_node(node);
        assert_eq!(rm.active_nodes(), 2);
        assert!(rm.allocate(ContainerRequest { mem_mb: 256 }).is_ok());
    }

    #[test]
    fn failing_a_down_or_unknown_node_is_a_noop() {
        let mut rm = rm();
        assert!(rm.fail_node(99).is_empty());
        let killed = rm.fail_node(0);
        assert!(killed.is_empty());
        assert!(rm.fail_node(0).is_empty());
        assert_eq!(rm.containers_lost, 0);
        assert_eq!(rm.active_nodes(), 1);
    }

    #[test]
    fn containers_on_node_tracked() {
        let mut rm = rm();
        let a = rm.allocate(ContainerRequest { mem_mb: 1024 }).unwrap();
        let b = rm.allocate(ContainerRequest { mem_mb: 1024 }).unwrap();
        let on_a = rm.containers_on(rm.node_of(a).unwrap());
        assert!(on_a.contains(&a));
        let total: usize = (0..2).map(|n| rm.containers_on(n).len()).sum();
        assert_eq!(total, 2);
        let _ = b;
    }

    #[test]
    fn no_fragmentation_leak_across_many_cycles() {
        let mut rm = rm();
        for _ in 0..100 {
            let a = rm.allocate(ContainerRequest { mem_mb: 3000 }).unwrap();
            let b = rm.allocate(ContainerRequest { mem_mb: 5000 }).unwrap();
            rm.release(a).unwrap();
            rm.release(b).unwrap();
        }
        assert_eq!(rm.allocated_mb(), 0);
        assert_eq!(rm.num_containers(), 0);
    }
}

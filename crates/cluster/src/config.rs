//! Static cluster configuration and resource arithmetic.

/// One megabyte in bytes.
pub const MB: u64 = 1024 * 1024;

/// Ratio of container request to JVM max heap (§5.1: "we request memory of
/// 1.5x the max heap size in order to account for additional JVM
/// requirements").
pub const CONTAINER_HEAP_RATIO: f64 = 1.5;

/// Ratio of compiler memory budget to JVM max heap (§5.1: "a memory budget
/// of 70% of the max heap size").
pub const BUDGET_HEAP_RATIO: f64 = 0.7;

/// Static description of a YARN cluster — the `cc` of the paper's problem
/// formulation (Definition 1), including min/max allocation constraints
/// and the hardware parameters the cost model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of worker nodes (NodeManagers).
    pub num_nodes: u32,
    /// Physical cores per worker node.
    pub cores_per_node: u32,
    /// NodeManager-managed memory per node, in MB.
    pub node_mem_mb: u64,
    /// Minimum container allocation, in MB (`min_cc`).
    pub min_alloc_mb: u64,
    /// Maximum container allocation, in MB (`max_cc`).
    pub max_alloc_mb: u64,
    /// HDFS block size, in MB (determines input-split counts).
    pub hdfs_block_mb: u64,
    /// Sequential HDFS read bandwidth per node, MB/s.
    pub hdfs_read_mbs: f64,
    /// Sequential HDFS write bandwidth per node, MB/s.
    pub hdfs_write_mbs: f64,
    /// Shuffle (network + merge) bandwidth per node, MB/s.
    pub shuffle_mbs: f64,
    /// Peak floating-point throughput of one task/CP thread, FLOP/s.
    /// SystemML's CP runtime is single-threaded (§6), so this is a
    /// single-core figure.
    pub peak_flops: f64,
    /// Default number of reducers (paper default: 2 × number of nodes).
    pub default_reducers: u32,
    /// Static MR job submission latency, seconds.
    pub mr_job_latency_s: f64,
    /// Per-task startup latency, seconds.
    pub mr_task_latency_s: f64,
    /// Latency of allocating a new YARN container, seconds (used by the
    /// migration cost model).
    pub container_alloc_latency_s: f64,
}

impl ClusterConfig {
    /// The paper's 1+6 node cluster (§5.1): 6 workers, 12 physical cores,
    /// 80 GB NM memory, 512 MB/80 GB allocation constraints, 128 MB HDFS
    /// blocks, 12 default reducers.
    pub fn paper_cluster() -> Self {
        ClusterConfig {
            num_nodes: 6,
            cores_per_node: 12,
            node_mem_mb: 80 * 1024,
            min_alloc_mb: 512,
            max_alloc_mb: 80 * 1024,
            hdfs_block_mb: 128,
            hdfs_read_mbs: 150.0,
            hdfs_write_mbs: 100.0,
            shuffle_mbs: 80.0,
            peak_flops: 2.0e9,
            default_reducers: 12,
            mr_job_latency_s: 15.0,
            mr_task_latency_s: 2.0,
            container_alloc_latency_s: 2.0,
        }
    }

    /// A small cluster for fast unit tests: 2 nodes, 4 cores, 8 GB.
    pub fn small_test_cluster() -> Self {
        ClusterConfig {
            num_nodes: 2,
            cores_per_node: 4,
            node_mem_mb: 8 * 1024,
            min_alloc_mb: 256,
            max_alloc_mb: 8 * 1024,
            hdfs_block_mb: 128,
            hdfs_read_mbs: 150.0,
            hdfs_write_mbs: 100.0,
            shuffle_mbs: 80.0,
            peak_flops: 2.0e9,
            default_reducers: 4,
            mr_job_latency_s: 15.0,
            mr_task_latency_s: 2.0,
            container_alloc_latency_s: 2.0,
        }
    }

    /// Max heap size such that the resulting container request fits within
    /// `max_alloc_mb` (the paper's 53.3 GB for an 80 GB limit).
    pub fn max_heap_mb(&self) -> u64 {
        (self.max_alloc_mb as f64 / CONTAINER_HEAP_RATIO) as u64
    }

    /// Minimum heap: the minimum container allocation interpreted as a
    /// heap request (a 512 MB request is granted 512 MB; heap is the
    /// request divided by the ratio... the paper simply uses 512 MB heap
    /// with a 768 MB container, still above `min_alloc`). We model
    /// min heap = min allocation.
    pub fn min_heap_mb(&self) -> u64 {
        self.min_alloc_mb
    }

    /// Container request for a given max heap size (1.5× rule).
    pub fn container_mb_for_heap(&self, heap_mb: u64) -> u64 {
        ((heap_mb as f64) * CONTAINER_HEAP_RATIO).ceil() as u64
    }

    /// Compiler memory budget for a given max heap size (0.7× rule).
    pub fn budget_mb_for_heap(&self, heap_mb: u64) -> u64 {
        ((heap_mb as f64) * BUDGET_HEAP_RATIO) as u64
    }

    /// Total memory across all worker nodes, MB.
    pub fn aggregate_mem_mb(&self) -> u64 {
        self.node_mem_mb * self.num_nodes as u64
    }

    /// Total core count across all worker nodes.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_node * self.num_nodes
    }

    /// Concurrent task slots per node for tasks with the given heap:
    /// limited by memory (container footprint) and physical cores.
    pub fn slots_per_node(&self, task_heap_mb: u64) -> u32 {
        let container = self.container_mb_for_heap(task_heap_mb).max(1);
        let by_mem = (self.node_mem_mb / container) as u32;
        by_mem.min(self.cores_per_node)
    }

    /// Cluster-wide concurrent task slots for tasks with the given heap.
    pub fn total_slots(&self, task_heap_mb: u64) -> u32 {
        self.slots_per_node(task_heap_mb) * self.num_nodes
    }

    /// Maximum number of concurrently running applications whose AM uses
    /// `cp_heap_mb` of heap (the throughput ceiling of Figure 12):
    /// `num_nodes * floor(node_mem / (1.5 * heap))`.
    pub fn max_parallel_apps(&self, cp_heap_mb: u64) -> u32 {
        let container = self.container_mb_for_heap(cp_heap_mb).max(1);
        ((self.node_mem_mb / container) as u32) * self.num_nodes
    }

    /// Number of input splits (mappers) for an input of `input_mb` MB.
    pub fn num_splits(&self, input_mb: u64) -> u32 {
        input_mb.div_ceil(self.hdfs_block_mb).max(1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_max_heap_is_53gb() {
        let cc = ClusterConfig::paper_cluster();
        let max_heap = cc.max_heap_mb();
        // 80 GB / 1.5 = 53.3 GB.
        assert_eq!(max_heap, 54_613);
        assert!(cc.container_mb_for_heap(max_heap) <= cc.max_alloc_mb);
    }

    #[test]
    fn budget_is_70_percent() {
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(cc.budget_mb_for_heap(1000), 700);
    }

    #[test]
    fn container_rounding_up() {
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(cc.container_mb_for_heap(512), 768);
        assert_eq!(cc.container_mb_for_heap(1), 2);
    }

    #[test]
    fn slots_limited_by_cores_for_small_tasks() {
        let cc = ClusterConfig::paper_cluster();
        // Tiny tasks: memory would allow far more than 12, cores cap at 12.
        assert_eq!(cc.slots_per_node(512), 12);
        assert_eq!(cc.total_slots(512), 72);
    }

    #[test]
    fn slots_limited_by_memory_for_large_tasks() {
        let cc = ClusterConfig::paper_cluster();
        // The paper's 4.4 GB task heap: 12 * 4.4GB * 1.5 ≈ 80 GB/node.
        let heap = (4.4 * 1024.0) as u64;
        assert_eq!(cc.slots_per_node(heap), 12);
        // Slightly larger tasks drop below 12 per node.
        let heap = (5.5 * 1024.0) as u64;
        assert!(cc.slots_per_node(heap) < 12);
    }

    #[test]
    fn max_parallel_apps_matches_paper_example() {
        // §5.3: 8 GB CP heap -> 6 * floor(80 / (1.5*8)) = 36 apps.
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(cc.max_parallel_apps(8 * 1024), 36);
        // 4 GB CP heap -> 78 apps (floor(80/6) = 13 per node, 6 nodes).
        assert_eq!(cc.max_parallel_apps(4 * 1024), 78);
        // B-LL 53.3 GB -> 6 apps.
        assert_eq!(cc.max_parallel_apps(cc.max_heap_mb()), 6);
    }

    #[test]
    fn split_counts() {
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(cc.num_splits(1), 1);
        assert_eq!(cc.num_splits(128), 1);
        assert_eq!(cc.num_splits(129), 2);
        assert_eq!(cc.num_splits(8 * 1024), 64);
        assert_eq!(cc.num_splits(0), 1);
    }

    #[test]
    fn aggregate_resources() {
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(cc.aggregate_mem_mb(), 480 * 1024);
        assert_eq!(cc.total_cores(), 72);
    }
}

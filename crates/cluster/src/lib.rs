//! # reml-cluster — YARN-style cluster model
//!
//! Models the resource-negotiation substrate the paper's optimizer runs
//! against (§2.2): a cluster of NodeManager nodes with memory capacities,
//! a ResourceManager granting containers within min/max allocation
//! constraints, and the translation rules between JVM heap sizes, YARN
//! container requests, and compiler memory budgets (§5.1):
//!
//! * container request = **1.5 ×** max heap (JVM overhead headroom);
//! * compiler memory budget = **0.7 ×** max heap (SystemML default);
//! * degree of parallelism = per-node slots limited by both memory and
//!   physical cores.
//!
//! The [`yarn`] module provides the container-accounting state machine the
//! discrete-event simulator drives; [`spark`] models a stateful Spark
//! deployment for the Appendix D comparison.

#![forbid(unsafe_code)]

pub mod config;
pub mod spark;
pub mod yarn;

pub use config::{ClusterConfig, MB};
pub use spark::SparkConfig;
pub use yarn::{ContainerId, ContainerRequest, YarnError, YarnState};

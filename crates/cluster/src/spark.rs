//! Stateful Spark deployment model for the Appendix D comparison.
//!
//! The paper ports SystemML's runtime operations onto Spark RDDs and
//! compares against the MR backend with resource optimization (Tables 5
//! and 6). We model the properties that drive those results:
//!
//! * **static executors**: a Spark application holds its driver and all
//!   executors for its entire lifetime (over-provisioning limits
//!   multi-tenant throughput);
//! * **RDD caching**: once an input fits in aggregate executor storage
//!   memory, iterative re-reads are served from memory (the scenario-L
//!   "sweet spot");
//! * **lazy evaluation is out of scope** — we model per-iteration stage
//!   costs directly.

use crate::config::ClusterConfig;

/// Static Spark application configuration (the paper's Appendix D setup:
/// 6 executors, 55 GB executor memory, 20 GB driver, 24 cores/executor).
#[derive(Debug, Clone, PartialEq)]
pub struct SparkConfig {
    /// Number of executors.
    pub num_executors: u32,
    /// Executor JVM memory, MB.
    pub executor_mem_mb: u64,
    /// Driver JVM memory, MB.
    pub driver_mem_mb: u64,
    /// Task cores per executor.
    pub cores_per_executor: u32,
    /// Fraction of executor memory usable for RDD storage (Spark's
    /// `spark.storage.memoryFraction`-era default ≈ 0.6).
    pub storage_fraction: f64,
}

impl SparkConfig {
    /// The Appendix D experimental configuration.
    pub fn paper_config() -> Self {
        SparkConfig {
            num_executors: 6,
            executor_mem_mb: 55 * 1024,
            driver_mem_mb: 20 * 1024,
            cores_per_executor: 24,
            storage_fraction: 0.6,
        }
    }

    /// Aggregate RDD storage memory across executors, MB.
    pub fn aggregate_storage_mb(&self) -> u64 {
        ((self.num_executors as u64 * self.executor_mem_mb) as f64 * self.storage_fraction) as u64
    }

    /// Total concurrent task slots.
    pub fn total_task_slots(&self) -> u32 {
        self.num_executors * self.cores_per_executor
    }

    /// Whether a dataset of `data_mb` fits in the aggregate RDD cache.
    pub fn fits_in_cache(&self, data_mb: u64) -> bool {
        data_mb <= self.aggregate_storage_mb()
    }

    /// Cluster memory footprint of one application, MB: driver plus all
    /// executors (with the same 1.5× container overhead as the MR path).
    pub fn cluster_footprint_mb(&self) -> u64 {
        let heap_total = self.driver_mem_mb + self.num_executors as u64 * self.executor_mem_mb;
        (heap_total as f64 * crate::config::CONTAINER_HEAP_RATIO) as u64
    }

    /// Maximum concurrently running Spark applications on the cluster.
    /// The paper observes a single application already occupies the entire
    /// cluster (Table 6).
    pub fn max_parallel_apps(&self, cc: &ClusterConfig) -> u32 {
        // Driver and each executor are separate containers; count how many
        // full application footprints the cluster can host. A conservative
        // aggregate-memory bound reproduces the observed behaviour.
        let footprint = self.cluster_footprint_mb().max(1);
        ((cc.aggregate_mem_mb() / footprint) as u32).max(if self.fits_minimum(cc) { 1 } else { 0 })
    }

    fn fits_minimum(&self, cc: &ClusterConfig) -> bool {
        // At least the driver must fit somewhere.
        (self.driver_mem_mb as f64 * crate::config::CONTAINER_HEAP_RATIO) as u64 <= cc.node_mem_mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_storage() {
        let sc = SparkConfig::paper_config();
        // 6 * 55 GB * 0.6 = 198 GB of RDD storage.
        assert_eq!(sc.aggregate_storage_mb(), 198 * 1024);
        assert_eq!(sc.total_task_slots(), 144);
    }

    #[test]
    fn cache_sweet_spot() {
        let sc = SparkConfig::paper_config();
        // Scenario L (80 GB dense) fits in aggregate cache; XL (800 GB)
        // does not — exactly the Table 5 sweet spot.
        assert!(sc.fits_in_cache(80 * 1024));
        assert!(!sc.fits_in_cache(800 * 1024));
    }

    #[test]
    fn single_app_occupies_cluster() {
        let sc = SparkConfig::paper_config();
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(sc.max_parallel_apps(&cc), 1);
    }

    #[test]
    fn small_driver_many_apps_still_bounded_by_executors() {
        let mut sc = SparkConfig::paper_config();
        sc.driver_mem_mb = 512; // the paper's reduced-driver throughput run
        let cc = ClusterConfig::paper_cluster();
        // Executors dominate the footprint; still one app at a time.
        assert_eq!(sc.max_parallel_apps(&cc), 1);
    }
}

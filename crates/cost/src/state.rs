//! Live-variable state tracking for the plan scan.

use std::collections::HashMap;

/// Where a variable's current value lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Pinned in CP memory; matches HDFS (read from there, unmodified).
    InMemoryClean,
    /// Pinned in CP memory; differs from HDFS (computed in CP).
    InMemoryDirty,
    /// On HDFS only (persistent input or MR-job output).
    OnHdfs,
}

impl VarState {
    /// Whether a CP operand in this state needs an HDFS read first.
    pub fn needs_read(self) -> bool {
        matches!(self, VarState::OnHdfs)
    }

    /// Whether an MR job consuming this variable needs it exported first.
    pub fn needs_export(self) -> bool {
        matches!(self, VarState::InMemoryDirty)
    }
}

/// The state map of the scan. Unknown variables are treated as on-HDFS
/// (conservative: the first CP use pays a read).
///
/// The map also tracks an approximate *resident set* — the bytes of
/// in-memory variables in FIFO order — so the cost model can partially
/// account for buffer-pool evictions (§5: "buffer pool evictions (only
/// partially considered by our cost model)"). Variables with unknown
/// sizes are not tracked.
#[derive(Debug, Clone, Default)]
pub struct VarStates {
    states: HashMap<String, VarState>,
    resident: Vec<(String, u64)>,
}

impl VarStates {
    /// Fresh state map.
    pub fn new() -> Self {
        VarStates::default()
    }

    /// Current state of a variable.
    pub fn get(&self, name: &str) -> VarState {
        self.states.get(name).copied().unwrap_or(VarState::OnHdfs)
    }

    /// Set a variable's state.
    pub fn set(&mut self, name: &str, state: VarState) {
        self.states.insert(name.to_string(), state);
        if state == VarState::OnHdfs {
            self.drop_resident(name);
        }
    }

    /// Note that a variable now occupies `bytes` of CP memory.
    pub fn note_resident(&mut self, name: &str, bytes: u64) {
        self.drop_resident(name);
        self.resident.push((name.to_string(), bytes));
    }

    /// Remove a variable from the resident set.
    pub fn drop_resident(&mut self, name: &str) {
        self.resident.retain(|(n, _)| n != name);
    }

    /// Total tracked resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.iter().map(|(_, b)| *b).sum()
    }

    /// Evict oldest residents until the set fits `budget_bytes`.
    /// Evicted variables transition to on-HDFS (their next use pays a
    /// read); the returned value is the bytes evicted (the write cost the
    /// caller charges). The most recent entry is never evicted (it is the
    /// pinned output of the current instruction).
    pub fn enforce_budget(&mut self, budget_bytes: u64) -> u64 {
        let mut evicted = 0u64;
        while self.resident_bytes() > budget_bytes && self.resident.len() > 1 {
            let (name, bytes) = self.resident.remove(0);
            self.states.insert(name, VarState::OnHdfs);
            evicted += bytes;
        }
        evicted
    }

    /// Known variables (diagnostics).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no variables are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_vars_default_on_hdfs() {
        let s = VarStates::new();
        assert_eq!(s.get("x"), VarState::OnHdfs);
        assert!(s.get("x").needs_read());
        assert!(!s.get("x").needs_export());
    }

    #[test]
    fn resident_tracking_and_eviction() {
        let mut s = VarStates::new();
        s.set("x", VarState::InMemoryClean);
        s.note_resident("x", 600);
        s.set("y", VarState::InMemoryDirty);
        s.note_resident("y", 600);
        assert_eq!(s.resident_bytes(), 1200);
        // Budget 1000: evict the oldest (x), keep the newest (y).
        let evicted = s.enforce_budget(1000);
        assert_eq!(evicted, 600);
        assert_eq!(s.get("x"), VarState::OnHdfs);
        assert_eq!(s.get("y"), VarState::InMemoryDirty);
        // Newest entry is never evicted even when over budget.
        let evicted2 = s.enforce_budget(100);
        assert_eq!(evicted2, 0);
    }

    #[test]
    fn on_hdfs_set_drops_residency() {
        let mut s = VarStates::new();
        s.set("x", VarState::InMemoryDirty);
        s.note_resident("x", 100);
        s.set("x", VarState::OnHdfs);
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn transitions() {
        let mut s = VarStates::new();
        s.set("x", VarState::InMemoryDirty);
        assert!(!s.get("x").needs_read());
        assert!(s.get("x").needs_export());
        s.set("x", VarState::InMemoryClean);
        assert!(!s.get("x").needs_export());
        assert!(!s.get("x").needs_read());
    }
}

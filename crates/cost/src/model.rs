//! The plan-scanning cost model.

use std::sync::Arc;

use reml_cluster::ClusterConfig;
use reml_matrix::MatrixCharacteristics;
use reml_runtime::instructions::{CpInstruction, Instruction, MrJobInstruction, OpCode};
use reml_runtime::program::{Predicate, RtBlock, RuntimeProgram};
use reml_runtime::value::Operand;

use crate::calibrate::CalibrationProfile;
use crate::flops::instruction_flops;
use crate::state::{VarState, VarStates};

/// Iteration count assumed for loops whose bound is unknown — "a constant
/// which at least reflects that the body is executed multiple times"
/// (§3.1).
pub const DEFAULT_UNKNOWN_ITERATIONS: u64 = 10;

/// Probability weight of each branch of a conditional with an unknown
/// predicate.
const BRANCH_WEIGHT: f64 = 0.5;

const MBF: f64 = (1024 * 1024) as f64;

/// Decomposed time estimate, seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostBreakdown {
    /// HDFS/local IO time.
    pub io_s: f64,
    /// Compute time.
    pub compute_s: f64,
    /// Job and task latency.
    pub latency_s: f64,
    /// Shuffle time.
    pub shuffle_s: f64,
    /// Number of MR jobs costed (latency events).
    pub mr_jobs: u64,
}

impl CostBreakdown {
    /// Total time, seconds.
    pub fn total_s(&self) -> f64 {
        self.io_s + self.compute_s + self.latency_s + self.shuffle_s
    }

    fn add(&mut self, other: &CostBreakdown) {
        self.io_s += other.io_s;
        self.compute_s += other.compute_s;
        self.latency_s += other.latency_s;
        self.shuffle_s += other.shuffle_s;
        self.mr_jobs += other.mr_jobs;
    }

    fn scale(&self, factor: f64) -> CostBreakdown {
        CostBreakdown {
            io_s: self.io_s * factor,
            compute_s: self.compute_s * factor,
            latency_s: self.latency_s * factor,
            shuffle_s: self.shuffle_s * factor,
            mr_jobs: (self.mr_jobs as f64 * factor).round() as u64,
        }
    }
}

/// The analytic cost model over a cluster configuration.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cluster description (bandwidths, latencies, slot arithmetic).
    pub cluster: ClusterConfig,
    /// Fraction of MR task slots currently available to this application
    /// (1.0 = idle cluster). Cluster-utilization-aware what-if analysis
    /// (§6): under heavy load, distributed plans lose parallelism and the
    /// optimizer correctly falls back toward single-node plans.
    pub slot_availability: f64,
    /// Optional trace-fitted calibration (see [`crate::calibrate`]):
    /// per-opcode measured corrections applied to CP compute estimates.
    /// `None` keeps the pure analytic model. Shared via `Arc` so the
    /// optimizer's parallel grid workers clone cheaply.
    pub calibration: Option<Arc<CalibrationProfile>>,
}

impl CostModel {
    /// Model over an idle cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        CostModel {
            cluster,
            slot_availability: 1.0,
            calibration: None,
        }
    }

    /// Model over a cluster with only `availability` ∈ (0, 1] of its MR
    /// slots free (multi-tenant load).
    pub fn with_slot_availability(cluster: ClusterConfig, availability: f64) -> Self {
        CostModel {
            cluster,
            slot_availability: availability.clamp(0.01, 1.0),
            calibration: None,
        }
    }

    /// Builder: attach a trace-fitted calibration profile. CP compute
    /// estimates for fitted opcodes use the measured model; everything
    /// else (unseen opcodes, MR phase decomposition) stays analytic.
    pub fn with_calibration(mut self, profile: Arc<CalibrationProfile>) -> Self {
        self.calibration = Some(profile);
        self
    }

    /// Cost a whole program. `cp_heap_mb` is the control-program heap
    /// (eviction accounting); `mr_heap_mb` maps a statement-block id to
    /// the MR task heap used for that block's jobs (the per-block `rⁱ`).
    pub fn cost_program(
        &self,
        program: &RuntimeProgram,
        cp_heap_mb: u64,
        mr_heap_mb: &dyn Fn(usize) -> u64,
    ) -> CostBreakdown {
        reml_trace::count("cost.program_invocations", 1);
        let mut states = VarStates::new();
        let mut total = CostBreakdown::default();
        for block in &program.blocks {
            total.add(&self.cost_block(block, cp_heap_mb, mr_heap_mb, &mut states));
        }
        total
    }

    /// Cost a single block subtree with a fresh state map (the
    /// optimizer's per-block memoized costing).
    pub fn cost_block_fresh(
        &self,
        block: &RtBlock,
        cp_heap_mb: u64,
        mr_heap_mb: &dyn Fn(usize) -> u64,
    ) -> CostBreakdown {
        let mut states = VarStates::new();
        self.cost_block(block, cp_heap_mb, mr_heap_mb, &mut states)
    }

    /// Cost a bare instruction list (single-block what-if costing).
    pub fn cost_instructions(
        &self,
        instructions: &[Instruction],
        cp_heap_mb: u64,
        mr_heap_mb: u64,
        states: &mut VarStates,
    ) -> CostBreakdown {
        let mut total = CostBreakdown::default();
        for instr in instructions {
            let c = match instr {
                Instruction::Cp(cp) => self.cost_cp(cp, cp_heap_mb, states),
                Instruction::MrJob(job) => self.cost_mr_job(job, mr_heap_mb, states),
            };
            total.add(&c);
        }
        total
    }

    fn cost_block(
        &self,
        block: &RtBlock,
        cp_heap_mb: u64,
        mr_heap_mb: &dyn Fn(usize) -> u64,
        states: &mut VarStates,
    ) -> CostBreakdown {
        match block {
            RtBlock::Generic {
                source,
                instructions,
                ..
            } => self.cost_instructions(instructions, cp_heap_mb, mr_heap_mb(source.0), states),
            RtBlock::If {
                source,
                pred,
                then_blocks,
                else_blocks,
            } => {
                let mut total = self.cost_predicate(pred, cp_heap_mb, mr_heap_mb(source.0), states);
                // Weighted sum over branches; states explored on clones so
                // neither branch's effects are assumed.
                let mut then_states = states.clone();
                let mut then_cost = CostBreakdown::default();
                for b in then_blocks {
                    then_cost.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, &mut then_states));
                }
                let mut else_states = states.clone();
                let mut else_cost = CostBreakdown::default();
                for b in else_blocks {
                    else_cost.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, &mut else_states));
                }
                total.add(&then_cost.scale(BRANCH_WEIGHT));
                total.add(&else_cost.scale(BRANCH_WEIGHT));
                // Keep the heavier branch's states (conservative).
                *states = if then_cost.total_s() >= else_cost.total_s() {
                    then_states
                } else {
                    else_states
                };
                total
            }
            RtBlock::While {
                source,
                pred,
                body,
                max_iter_hint,
            } => {
                let iters = max_iter_hint.unwrap_or(DEFAULT_UNKNOWN_ITERATIONS).max(1);
                let mut one_iter =
                    self.cost_predicate(pred, cp_heap_mb, mr_heap_mb(source.0), states);
                for b in body {
                    one_iter.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, states));
                }
                // Second iteration onwards benefits from warmed state:
                // cost it separately and scale.
                let mut warm_iter =
                    self.cost_predicate(pred, cp_heap_mb, mr_heap_mb(source.0), states);
                for b in body {
                    warm_iter.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, states));
                }
                let mut total = one_iter;
                total.add(&warm_iter.scale((iters - 1) as f64));
                total
            }
            RtBlock::For {
                source,
                from,
                to,
                body,
                iterations_hint,
                ..
            } => {
                let iters = iterations_hint.unwrap_or(DEFAULT_UNKNOWN_ITERATIONS).max(1);
                let mut total = self.cost_predicate(from, cp_heap_mb, mr_heap_mb(source.0), states);
                total.add(&self.cost_predicate(to, cp_heap_mb, mr_heap_mb(source.0), states));
                let mut one_iter = CostBreakdown::default();
                for b in body {
                    one_iter.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, states));
                }
                let mut warm_iter = CostBreakdown::default();
                for b in body {
                    warm_iter.add(&self.cost_block(b, cp_heap_mb, mr_heap_mb, states));
                }
                total.add(&one_iter);
                total.add(&warm_iter.scale((iters - 1) as f64));
                total
            }
        }
    }

    fn cost_predicate(
        &self,
        pred: &Predicate,
        cp_heap_mb: u64,
        mr_heap_mb: u64,
        states: &mut VarStates,
    ) -> CostBreakdown {
        self.cost_instructions(&pred.instructions, cp_heap_mb, mr_heap_mb, states)
    }

    /// Cost one CP instruction: reads for on-HDFS operands, compute,
    /// output state transition, and partial eviction accounting against
    /// the CP budget.
    fn cost_cp(
        &self,
        cp: &CpInstruction,
        cp_heap_mb: u64,
        states: &mut VarStates,
    ) -> CostBreakdown {
        let mut c = CostBreakdown::default();
        match &cp.opcode {
            OpCode::PersistentRead { .. } => {
                // Lazy-read semantics: the read instruction itself binds
                // the variable; IO is charged on first in-memory use.
                if let Some(out) = &cp.output {
                    states.set(out, VarState::OnHdfs);
                }
                return c;
            }
            OpCode::PersistentWrite { path: _ } => {
                let operand_state = cp
                    .operands
                    .first()
                    .and_then(Operand::as_var)
                    .map(|v| states.get(v))
                    .unwrap_or(VarState::InMemoryDirty);
                // Clean variables (MR outputs / unmodified reads) need no
                // write; dirty in-memory variables are exported.
                if operand_state == VarState::InMemoryDirty {
                    let mb = cp
                        .operand_mcs
                        .first()
                        .and_then(MatrixCharacteristics::hdfs_size_bytes)
                        .unwrap_or(0) as f64
                        / MBF;
                    c.io_s += mb / self.cluster.hdfs_write_mbs;
                    if let Some(var) = cp.operands.first().and_then(Operand::as_var) {
                        states.set(var, VarState::InMemoryClean);
                    }
                }
                return c;
            }
            _ => {}
        }
        // Reads for on-HDFS matrix operands.
        for (operand, mc) in cp.operands.iter().zip(&cp.operand_mcs) {
            if let Operand::Var(name) = operand {
                if !mc.is_scalar() && states.get(name).needs_read() {
                    let mb = mc.hdfs_size_bytes().unwrap_or(0) as f64 / MBF;
                    c.io_s += mb / self.cluster.hdfs_read_mbs;
                    states.set(name, VarState::InMemoryClean);
                    if let Some(bytes) = mc.estimated_size_bytes() {
                        states.note_resident(name, bytes);
                    }
                }
            }
        }
        // Compute: analytic `flops / peak`, replaced by the fitted
        // per-opcode model when a calibration profile carries this opcode
        // (and degrading back to analytic for unknown sizes — see
        // `crate::calibrate`).
        let flops = instruction_flops(&cp.opcode, &cp.operand_mcs, &cp.output_mc);
        let analytic_s = flops / self.cluster.peak_flops;
        c.compute_s += match self
            .calibration
            .as_deref()
            .and_then(|p| p.get(&cp.opcode.mnemonic()))
        {
            Some(cal) => {
                let pf = reml_runtime::flops::predicted_flops(
                    &cp.opcode,
                    &cp.operand_mcs,
                    &cp.output_mc,
                );
                cal.predict_seconds(pf, predicted_cp_bytes(cp), analytic_s)
            }
            None => analytic_s,
        };
        // Output lands in memory, dirty (except pure renames of clean
        // variables, which we still treat as dirty only if source dirty).
        if let Some(out) = &cp.output {
            let out_state = if cp.opcode == OpCode::Assign {
                cp.operands
                    .first()
                    .and_then(Operand::as_var)
                    .map(|v| states.get(v))
                    .unwrap_or(VarState::InMemoryDirty)
            } else {
                VarState::InMemoryDirty
            };
            states.set(out, out_state);
            if !cp.output_mc.is_scalar() {
                if let Some(bytes) = cp.output_mc.estimated_size_bytes() {
                    states.note_resident(out, bytes);
                }
            }
        }
        // Partial eviction accounting: overflow beyond the CP budget is
        // written out (and re-read on next use via the OnHdfs state).
        let budget_bytes = self.cluster.budget_mb_for_heap(cp_heap_mb) * 1024 * 1024;
        let evicted = states.enforce_budget(budget_bytes);
        if evicted > 0 {
            c.io_s += evicted as f64 / MBF / self.cluster.hdfs_write_mbs;
        }
        c
    }

    /// Cost one MR job per the paper's phase decomposition. MR jobs are
    /// deliberately *not* calibrated: their wall-clock behaviour is
    /// modeled by `reml-sim`, and the measured traces the calibration
    /// profile is fitted from are single-node CP executions.
    fn cost_mr_job(
        &self,
        job: &MrJobInstruction,
        mr_heap_mb: u64,
        states: &mut VarStates,
    ) -> CostBreakdown {
        let cc = &self.cluster;
        let mut c = CostBreakdown {
            latency_s: cc.mr_job_latency_s,
            mr_jobs: 1,
            ..CostBreakdown::default()
        };

        // Export of dirty in-memory inputs (single-node write).
        for (name, mc) in job.hdfs_inputs.iter().chain(&job.broadcast_inputs) {
            if states.get(name).needs_export() {
                let mb = mc.hdfs_size_bytes().unwrap_or(0) as f64 / MBF;
                c.io_s += mb / cc.hdfs_write_mbs;
                states.set(name, VarState::InMemoryClean);
            }
        }

        // Degree of parallelism (scaled by current slot availability).
        let input_mb = (job.input_bytes() as f64 / MBF).max(1.0);
        let slots = (cc.total_slots(mr_heap_mb).max(1) as f64 * self.slot_availability).max(1.0);
        // Task sizing: split by HDFS blocks but never more tasks than
        // useful — the optimizer's minimum-task-size adjustment based on
        // available virtual cores (§5.2).
        let tasks_by_block = (input_mb / cc.hdfs_block_mb as f64).ceil().max(1.0);
        let tasks = tasks_by_block.min((slots * 8.0).max(1.0));
        let map_parallel = tasks.min(slots);
        let waves = (tasks / slots).ceil().max(1.0);

        // Task latency per wave.
        c.latency_s += waves * cc.mr_task_latency_s;

        // Broadcast distribution: each node pulls the broadcast set once.
        let broadcast_mb = job.broadcast_mb();
        c.io_s += broadcast_mb * cc.num_nodes as f64 / (cc.shuffle_mbs * cc.num_nodes as f64);

        // Map read.
        c.io_s += input_mb / (cc.hdfs_read_mbs * map_parallel);

        // Map compute (+ spill penalty when the per-task working set
        // exceeds the MR task budget — small tasks thrash, §5.2's B-SS
        // observation).
        let mr_budget_mb = cc.budget_mb_for_heap(mr_heap_mb) as f64;
        let split_mb = input_mb / tasks;
        let working_set = split_mb + broadcast_mb;
        let spill_penalty = if working_set > mr_budget_mb && mr_budget_mb > 0.0 {
            (working_set / mr_budget_mb).min(8.0)
        } else {
            1.0
        };
        let map_flops: f64 = job
            .mappers
            .iter()
            .map(|op| instruction_flops(&op.opcode, &op.operand_mcs, &op.output_mc))
            .sum();
        c.compute_s += spill_penalty * map_flops / (cc.peak_flops * map_parallel);

        // Map write: outputs produced map-side.
        let map_out_mb: f64 = job
            .outputs
            .iter()
            .filter(|(name, _)| {
                job.mappers
                    .iter()
                    .any(|m| m.output.as_deref() == Some(name))
            })
            .map(|(_, mc)| mc.hdfs_size_bytes().unwrap_or(0) as f64 / MBF)
            .sum();
        c.io_s += map_out_mb / (cc.hdfs_write_mbs * map_parallel);

        if job.has_reduce() {
            let reducers = (cc.default_reducers as f64).min(slots).max(1.0);
            let shuffle_mb = job.shuffle_bytes() as f64 / MBF;
            c.shuffle_s += shuffle_mb / (cc.shuffle_mbs * reducers);
            let reduce_flops: f64 = job
                .reducers
                .iter()
                .map(|op| instruction_flops(&op.opcode, &op.operand_mcs, &op.output_mc))
                .sum();
            // Reduce-side physical operators parallelize across reducers,
            // but their map-side partial work parallelized across map
            // tasks; we charge the dominant (reducer) share plus read and
            // write of reduce outputs.
            c.compute_s += reduce_flops / (cc.peak_flops * map_parallel.max(reducers));
            let reduce_out_mb: f64 = job
                .outputs
                .iter()
                .filter(|(name, _)| {
                    job.reducers
                        .iter()
                        .any(|m| m.output.as_deref() == Some(name))
                })
                .map(|(_, mc)| mc.hdfs_size_bytes().unwrap_or(0) as f64 / MBF)
                .sum();
            c.io_s += shuffle_mb / (cc.hdfs_read_mbs * reducers);
            c.io_s += reduce_out_mb / (cc.hdfs_write_mbs * reducers);
        }

        // Job outputs land on HDFS.
        for (name, _) in &job.outputs {
            states.set(name, VarState::OnHdfs);
        }
        c
    }
}

/// Compile-time operand+output byte prediction for a CP instruction —
/// the same None-propagating fold the executors use for `MemObservation`
/// rows, so calibrated time predictions see the quantities the fit saw.
fn predicted_cp_bytes(cp: &CpInstruction) -> Option<u64> {
    let mut predicted = Some(0u64);
    for mc in cp.operand_mcs.iter().chain(std::iter::once(&cp.output_mc)) {
        predicted = match (predicted, mc.estimated_size_bytes()) {
            (Some(acc), Some(b)) => Some(acc + b),
            _ => None,
        };
    }
    predicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_lang::BlockId;
    use reml_matrix::BinaryOp;
    use reml_runtime::instructions::{MrLocation, MrOperator};
    use reml_runtime::value::ScalarValue;

    fn model() -> CostModel {
        CostModel::new(ClusterConfig::paper_cluster())
    }

    fn dense(r: u64, c: u64) -> MatrixCharacteristics {
        MatrixCharacteristics::dense(r, c)
    }

    fn cp(
        opcode: OpCode,
        operands: Vec<(Operand, MatrixCharacteristics)>,
        output: Option<(&str, MatrixCharacteristics)>,
    ) -> Instruction {
        let (ops, mcs): (Vec<_>, Vec<_>) = operands.into_iter().unzip();
        Instruction::Cp(CpInstruction {
            opcode,
            operands: ops,
            operand_mcs: mcs,
            output: output.map(|(n, _)| n.to_string()),
            output_mc: output
                .map(|(_, mc)| mc)
                .unwrap_or_else(MatrixCharacteristics::scalar),
            bound_bytes: None,
        })
    }

    #[test]
    fn first_use_pays_read_second_does_not() {
        let m = model();
        let mut states = VarStates::new();
        // 8 GB dense X.
        let x_mc = dense(10_000_000, 100);
        let instrs = [
            cp(
                OpCode::PersistentRead { path: "X".into() },
                vec![],
                Some(("X", x_mc)),
            ),
            cp(
                OpCode::Agg(reml_matrix::AggOp::Sum),
                vec![(Operand::var("X"), x_mc)],
                Some(("s", MatrixCharacteristics::scalar())),
            ),
            cp(
                OpCode::Agg(reml_matrix::AggOp::Sum),
                vec![(Operand::var("X"), x_mc)],
                Some(("s2", MatrixCharacteristics::scalar())),
            ),
        ];
        let c1 = m.cost_instructions(&instrs[..2], 1_000_000, 512, &mut states);
        // ~8000 MB / 150 MB/s ≈ 50.9 s of IO.
        assert!((c1.io_s - 50.8).abs() < 2.0, "io {}", c1.io_s);
        let c2 = m.cost_instructions(&instrs[2..], 1_000_000, 512, &mut states);
        assert_eq!(c2.io_s, 0.0, "second use reads from memory");
        assert!(c2.compute_s > 0.0);
    }

    #[test]
    fn loaded_cluster_slows_mr_jobs() {
        let idle = model();
        let loaded = CostModel::with_slot_availability(ClusterConfig::paper_cluster(), 0.1);
        let x_mc = dense(10_000_000, 100);
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), x_mc)],
            broadcast_inputs: vec![],
            mappers: vec![MrOperator {
                opcode: OpCode::Tsmm,
                operands: vec![Operand::var("X")],
                output: Some("G".into()),
                operand_mcs: vec![x_mc],
                output_mc: dense(100, 100),
                location: MrLocation::Map,
                task_mem_mb: 0.0,
            }],
            reducers: vec![],
            outputs: vec![("G".into(), dense(100, 100))],
            shuffle: vec![],
        };
        let mut s1 = VarStates::new();
        let t_idle = idle
            .cost_instructions(&[Instruction::MrJob(job.clone())], 1_000_000, 2048, &mut s1)
            .total_s();
        let mut s2 = VarStates::new();
        let t_loaded = loaded
            .cost_instructions(&[Instruction::MrJob(job)], 1_000_000, 2048, &mut s2)
            .total_s();
        assert!(t_loaded > 2.0 * t_idle, "idle {t_idle} loaded {t_loaded}");
    }

    #[test]
    fn mr_job_latency_dominates_small_jobs() {
        let m = model();
        let mut states = VarStates::new();
        let small = dense(1000, 10);
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), small)],
            broadcast_inputs: vec![],
            mappers: vec![MrOperator {
                opcode: OpCode::UnaryM(reml_matrix::UnaryOp::Abs),
                operands: vec![Operand::var("X")],
                output: Some("y".into()),
                operand_mcs: vec![small],
                output_mc: small,
                location: MrLocation::Map,
                task_mem_mb: 0.0,
            }],
            reducers: vec![],
            outputs: vec![("y".into(), small)],
            shuffle: vec![],
        };
        let c = m.cost_instructions(&[Instruction::MrJob(job)], 1_000_000, 2048, &mut states);
        assert!(c.latency_s >= 15.0);
        assert!(c.total_s() < 25.0);
        assert!(c.latency_s / c.total_s() > 0.8, "latency dominates");
    }

    #[test]
    fn mr_parallelism_beats_single_node_for_compute_heavy() {
        let m = model();
        // TSMM on 8 GB, 1000 cols: compute-bound.
        let x_mc = dense(1_000_000, 1000);
        let out = dense(1000, 1000);
        // CP version.
        let mut s1 = VarStates::new();
        let cp_cost = m.cost_instructions(
            &[
                cp(
                    OpCode::PersistentRead { path: "X".into() },
                    vec![],
                    Some(("X", x_mc)),
                ),
                cp(
                    OpCode::Tsmm,
                    vec![(Operand::var("X"), x_mc)],
                    Some(("G", out)),
                ),
            ],
            1_000_000,
            512,
            &mut s1,
        );
        // MR version.
        let mut s2 = VarStates::new();
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), x_mc)],
            broadcast_inputs: vec![],
            mappers: vec![],
            reducers: vec![MrOperator {
                opcode: OpCode::Tsmm,
                operands: vec![Operand::var("X")],
                output: Some("G".into()),
                operand_mcs: vec![x_mc],
                output_mc: out,
                location: MrLocation::Reduce,
                task_mem_mb: 0.0,
            }],
            outputs: vec![("G".into(), out)],
            shuffle: vec![out],
        };
        let mr_cost = m.cost_instructions(&[Instruction::MrJob(job)], 1_000_000, 2048, &mut s2);
        assert!(
            mr_cost.total_s() < cp_cost.total_s() / 3.0,
            "mr {} vs cp {}",
            mr_cost.total_s(),
            cp_cost.total_s()
        );
    }

    #[test]
    fn spill_penalty_for_tiny_task_memory() {
        let m = model();
        let x_mc = dense(10_000_000, 100); // 8 GB
        let job = |heap: u64| {
            let job = MrJobInstruction {
                hdfs_inputs: vec![("X".into(), x_mc)],
                broadcast_inputs: vec![],
                mappers: vec![MrOperator {
                    opcode: OpCode::BinaryMS(BinaryOp::Mul),
                    operands: vec![Operand::var("X"), Operand::num(2.0)],
                    output: Some("y".into()),
                    operand_mcs: vec![x_mc, MatrixCharacteristics::scalar()],
                    output_mc: x_mc,
                    location: MrLocation::Map,
                    task_mem_mb: 0.0,
                }],
                reducers: vec![],
                outputs: vec![("y".into(), x_mc)],
                shuffle: vec![],
            };
            let mut s = VarStates::new();
            m.cost_instructions(&[Instruction::MrJob(job)], 1_000_000, heap, &mut s)
                .compute_s
        };
        // 128 MB splits vs 64 MB budget (97 MB heap): penalty applies.
        assert!(job(97) > job(2048));
    }

    #[test]
    fn export_charged_for_dirty_inputs_only() {
        let m = model();
        let v_mc = dense(1_000_000, 1); // 8 MB
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), dense(10_000_000, 100))],
            broadcast_inputs: vec![("v".into(), v_mc)],
            mappers: vec![],
            reducers: vec![],
            outputs: vec![],
            shuffle: vec![],
        };
        // Case 1: v dirty in memory -> export charged.
        let mut s1 = VarStates::new();
        s1.set("v", VarState::InMemoryDirty);
        let c1 = m.cost_instructions(&[Instruction::MrJob(job.clone())], 1_000_000, 2048, &mut s1);
        // Case 2: v already on HDFS.
        let mut s2 = VarStates::new();
        let c2 = m.cost_instructions(&[Instruction::MrJob(job)], 1_000_000, 2048, &mut s2);
        assert!(c1.io_s > c2.io_s);
    }

    #[test]
    fn while_loop_scales_by_hint() {
        let m = model();
        let body_instr = cp(
            OpCode::BinarySS(BinaryOp::Add),
            vec![
                (Operand::var("i"), MatrixCharacteristics::scalar()),
                (Operand::num(1.0), MatrixCharacteristics::scalar()),
            ],
            Some(("i", MatrixCharacteristics::scalar())),
        );
        let mk = |hint: Option<u64>| RtBlock::While {
            source: BlockId(0),
            pred: Predicate {
                instructions: vec![cp(
                    OpCode::BinarySS(BinaryOp::Less),
                    vec![
                        (Operand::var("i"), MatrixCharacteristics::scalar()),
                        (Operand::num(100.0), MatrixCharacteristics::scalar()),
                    ],
                    Some(("__p", MatrixCharacteristics::scalar())),
                )],
                result_var: "__p".into(),
            },
            body: vec![RtBlock::Generic {
                source: BlockId(1),
                instructions: vec![body_instr.clone()],
                requires_recompile: false,
            }],
            max_iter_hint: hint,
        };
        let c5 = m.cost_block_fresh(&mk(Some(5)), 1_000_000, &|_| 512);
        let c50 = m.cost_block_fresh(&mk(Some(50)), 1_000_000, &|_| 512);
        let c_unknown = m.cost_block_fresh(&mk(None), 1_000_000, &|_| 512);
        assert!(c50.total_s() > c5.total_s() * 5.0);
        // Unknown hint = DEFAULT_UNKNOWN_ITERATIONS.
        let c10 = m.cost_block_fresh(&mk(Some(DEFAULT_UNKNOWN_ITERATIONS)), 1_000_000, &|_| 512);
        assert!((c_unknown.total_s() - c10.total_s()).abs() < 1e-12);
    }

    #[test]
    fn if_costs_weighted_sum() {
        let m = model();
        let big = dense(10_000_000, 100);
        let heavy = RtBlock::Generic {
            source: BlockId(1),
            instructions: vec![
                cp(
                    OpCode::PersistentRead { path: "X".into() },
                    vec![],
                    Some(("X", big)),
                ),
                cp(
                    OpCode::Agg(reml_matrix::AggOp::Sum),
                    vec![(Operand::var("X"), big)],
                    Some(("s", MatrixCharacteristics::scalar())),
                ),
            ],
            requires_recompile: false,
        };
        let branch = RtBlock::If {
            source: BlockId(0),
            pred: Predicate {
                instructions: vec![cp(
                    OpCode::Assign,
                    vec![(
                        Operand::Lit(ScalarValue::Bool(true)),
                        MatrixCharacteristics::scalar(),
                    )],
                    Some(("__p", MatrixCharacteristics::scalar())),
                )],
                result_var: "__p".into(),
            },
            then_blocks: vec![heavy.clone()],
            else_blocks: vec![],
        };
        let c_branch = m.cost_block_fresh(&branch, 1_000_000, &|_| 512);
        let c_heavy = m.cost_block_fresh(&heavy, 1_000_000, &|_| 512);
        // Weighted at 0.5.
        assert!((c_branch.total_s() - 0.5 * c_heavy.total_s()).abs() < 1e-9);
    }

    #[test]
    fn loop_warm_iterations_cheaper_after_first_read() {
        // First iteration pays the X read; later iterations do not — the
        // Linreg CG "read once, iterate in memory" effect.
        let m = model();
        let big = dense(10_000_000, 100);
        let w = dense(100, 1);
        let body = RtBlock::Generic {
            source: BlockId(1),
            instructions: vec![cp(
                OpCode::MatMult,
                vec![(Operand::var("X"), big), (Operand::var("w"), w)],
                Some(("q", dense(10_000_000, 1))),
            )],
            requires_recompile: false,
        };
        let loop_block = RtBlock::While {
            source: BlockId(0),
            pred: Predicate {
                instructions: vec![],
                result_var: "c".into(),
            },
            body: vec![body],
            max_iter_hint: Some(5),
        };
        // Manually give predicate var.
        let mut states = VarStates::new();
        states.set("c", VarState::InMemoryClean);
        let mut total = CostBreakdown::default();
        total.add(&m.cost_block(&loop_block, 1_000_000, &|_| 512, &mut states));
        // IO should be the one-time 8 GB read (~51 s), not 5x.
        assert!(total.io_s > 40.0 && total.io_s < 60.0, "io {}", total.io_s);
    }
}

//! # reml-cost — white-box analytic cost model (§3.1)
//!
//! Estimates the execution time of a generated runtime plan — the
//! `C(P, R_P, cc)` of the paper's problem formulation. The model is
//! *white-box over generated runtime plans*: it scans the plan in
//! execution order, tracks sizes and in-memory/on-HDFS states of live
//! variables, and sums
//!
//! * **CP instructions**: IO time (reads of on-HDFS operands at
//!   format-specific bandwidths) + compute time (operation-specific FLOP
//!   counts at a default peak rate);
//! * **MR-job instructions**: job latency, in-memory variable export, map
//!   read/compute/write, shuffle, reduce read/compute/write — each phase
//!   divided by the degree of parallelism inferred from the CP/MR
//!   resources;
//! * **control flow**: loop bodies scaled by the iteration bound (a
//!   default constant when unknown), conditionals as a weighted sum.
//!
//! No sample runs, no history: alternative plans are costed analytically,
//! which is what enables the optimizer's online what-if enumeration.
//!
//! The [`calibrate`] module adds an optional *measured* correction layer:
//! a versioned [`CalibrationProfile`] of per-opcode coefficients fitted
//! from execution traces (by the `reml-calibrate` crate), consulted by
//! [`CostModel`] when attached and degrading gracefully to the analytic
//! estimates for opcodes never observed.

#![forbid(unsafe_code)]

pub mod calibrate;
pub mod flops;
pub mod model;
pub mod state;

pub use calibrate::{
    CalibratedCostModel, CalibrationProfile, OpcodeCalibration, TimeModel, PROFILE_VERSION,
};
pub use flops::instruction_flops;
pub use model::{CostBreakdown, CostModel, DEFAULT_UNKNOWN_ITERATIONS};
pub use state::{VarState, VarStates};

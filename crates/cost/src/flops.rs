//! Operation-specific FLOP counts — re-exported from `reml_runtime`.
//!
//! The implementation moved into the runtime crate so that VM lowering can
//! annotate instructions with predicted FLOPs (for trace-driven cost-model
//! calibration) without a dependency cycle. This shim preserves the historic
//! `reml_cost::flops` path.

pub use reml_runtime::flops::{instruction_flops, UNKNOWN_FLOPS};

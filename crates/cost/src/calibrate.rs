//! Calibration profiles: measured corrections applied to the analytic
//! cost model.
//!
//! The analytic model in [`crate::model`] prices compute as
//! `flops / peak_flops` against the *paper cluster's* nominal peak — a
//! white-box estimate that is deliberately machine-independent. A
//! [`CalibrationProfile`] closes the loop with reality: the
//! `reml-calibrate` crate fits per-opcode coefficients from measured
//! execution traces, and [`CostModel`](crate::model::CostModel) consults
//! the profile (when attached) for every CP instruction whose opcode has
//! a fitted entry.
//!
//! Graceful degradation rules, in order:
//! * opcode not in the profile → analytic estimate, unchanged;
//! * [`TimeModel::Affine`] but the instruction's flops or bytes are
//!   unknown at compile time → the profile's quantile fallback ratio;
//! * profile version unknown at load → hard error (never silently
//!   misinterpret a future schema).
//!
//! Memory predictions are only ever *inflated*: `bytes_factor ≥ 1` by
//! construction, so a calibrated memory estimate can never shrink below
//! the analytic one and therefore can never flip a sound `memest`
//! decision to unsound.

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Serialize, Value};

use crate::model::CostModel;

/// Current on-disk schema version of [`CalibrationProfile`].
pub const PROFILE_VERSION: u64 = 1;

/// Error decoding a persisted profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDecodeError(pub String);

impl std::fmt::Display for ProfileDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration profile decode error: {}", self.0)
    }
}

impl std::error::Error for ProfileDecodeError {}

/// Per-opcode time model, in fit-preference order.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeModel {
    /// `t = flops_s·flops + bytes_s·bytes + base_s` (seconds), fitted by
    /// least squares when the opcode has enough well-conditioned samples
    /// with known flops and bytes.
    Affine {
        /// Seconds per FLOP (inverse effective throughput).
        flops_s: f64,
        /// Seconds per operand+output byte (inverse effective bandwidth).
        bytes_s: f64,
        /// Fixed per-instruction overhead, seconds.
        base_s: f64,
    },
    /// `t = ratio · analytic` — the robust quantile fallback: the median
    /// of measured/analytic ratios. Used when the least-squares system is
    /// ill-conditioned or produced non-physical (negative) coefficients.
    Scale {
        /// Median measured/analytic time ratio.
        ratio: f64,
    },
    /// `t = seconds` — median measured wall time, for opcodes whose
    /// analytic estimate is zero (pure data movement, bookkeeping).
    Fixed {
        /// Median measured seconds.
        seconds: f64,
    },
}

/// Fitted calibration for one opcode mnemonic.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcodeCalibration {
    /// Time correction.
    pub time: TimeModel,
    /// Memory inflation factor applied to `predicted_bytes`: the q95 of
    /// measured actual/predicted ratios, clamped to `≥ 1.0` so calibration
    /// never shrinks a memory estimate.
    pub bytes_factor: f64,
    /// Observation count behind the fit.
    pub samples: u64,
}

impl OpcodeCalibration {
    /// Predicted seconds for one instruction. `flops`/`bytes` are the
    /// compile-time predictions (`None` when sizes were unknown);
    /// `analytic_s` is the uncalibrated estimate used by the fallbacks.
    pub fn predict_seconds(&self, flops: Option<f64>, bytes: Option<u64>, analytic_s: f64) -> f64 {
        match &self.time {
            TimeModel::Affine {
                flops_s,
                bytes_s,
                base_s,
            } => match (flops, bytes) {
                (Some(f), Some(b)) => (flops_s * f + bytes_s * b as f64 + base_s).max(0.0),
                _ => analytic_s,
            },
            // Unknown flops mean `analytic_s` was priced off the
            // UNKNOWN_FLOPS sentinel; scaling a sentinel by a measured
            // ratio only amplifies it, so degrade to analytic unscaled.
            TimeModel::Scale { ratio } => match flops {
                Some(_) => ratio * analytic_s,
                None => analytic_s,
            },
            TimeModel::Fixed { seconds } => *seconds,
        }
    }

    /// Calibrated (inflated) byte prediction.
    pub fn calibrated_bytes(&self, predicted_bytes: u64) -> u64 {
        (predicted_bytes as f64 * self.bytes_factor.max(1.0)).ceil() as u64
    }
}

/// A versioned, persistable set of per-opcode calibrations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CalibrationProfile {
    /// Peak FLOPs of the analytic model the profile was fitted against
    /// (informational; lets a report flag cross-cluster reuse).
    pub fitted_peak_flops: f64,
    /// Calibrations keyed by opcode mnemonic (BTreeMap: stable JSON key
    /// order, so serialization is deterministic and round-trips
    /// byte-identically).
    pub opcodes: BTreeMap<String, OpcodeCalibration>,
}

impl CalibrationProfile {
    /// Look up the calibration for an opcode mnemonic.
    pub fn get(&self, mnemonic: &str) -> Option<&OpcodeCalibration> {
        self.opcodes.get(mnemonic)
    }

    /// Render as deterministic pretty JSON (the `results/` artifact form).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("Value serialization is infallible")
    }

    /// Decode from a JSON string produced by [`Self::to_json`].
    pub fn from_json(s: &str) -> Result<Self, ProfileDecodeError> {
        let v: Value = serde_json::from_str(s)
            .map_err(|e| ProfileDecodeError(format!("invalid JSON: {e:?}")))?;
        Self::from_value(&v)
    }

    /// Decode from a JSON tree. Rejects unknown schema versions.
    pub fn from_value(v: &Value) -> Result<Self, ProfileDecodeError> {
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or_else(|| ProfileDecodeError("missing 'version'".into()))?;
        if version != PROFILE_VERSION {
            return Err(ProfileDecodeError(format!(
                "unsupported profile version {version} (supported: {PROFILE_VERSION})"
            )));
        }
        let fitted_peak_flops = v
            .get("fitted_peak_flops")
            .and_then(Value::as_f64)
            .ok_or_else(|| ProfileDecodeError("missing 'fitted_peak_flops'".into()))?;
        let mut opcodes = BTreeMap::new();
        let entries = v
            .get("opcodes")
            .and_then(Value::as_object)
            .ok_or_else(|| ProfileDecodeError("missing 'opcodes' object".into()))?;
        for (mnemonic, entry) in entries {
            opcodes.insert(mnemonic.clone(), decode_opcode(mnemonic, entry)?);
        }
        Ok(CalibrationProfile {
            fitted_peak_flops,
            opcodes,
        })
    }
}

fn num(entry: &Value, mnemonic: &str, field: &str) -> Result<f64, ProfileDecodeError> {
    entry
        .get(field)
        .and_then(Value::as_f64)
        .ok_or_else(|| ProfileDecodeError(format!("opcode '{mnemonic}': missing number '{field}'")))
}

fn decode_opcode(mnemonic: &str, entry: &Value) -> Result<OpcodeCalibration, ProfileDecodeError> {
    let time_v = entry
        .get("time")
        .ok_or_else(|| ProfileDecodeError(format!("opcode '{mnemonic}': missing 'time'")))?;
    let kind = time_v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| ProfileDecodeError(format!("opcode '{mnemonic}': missing time kind")))?;
    let time = match kind {
        "affine" => TimeModel::Affine {
            flops_s: num(time_v, mnemonic, "flops_s")?,
            bytes_s: num(time_v, mnemonic, "bytes_s")?,
            base_s: num(time_v, mnemonic, "base_s")?,
        },
        "scale" => TimeModel::Scale {
            ratio: num(time_v, mnemonic, "ratio")?,
        },
        "fixed" => TimeModel::Fixed {
            seconds: num(time_v, mnemonic, "seconds")?,
        },
        other => {
            return Err(ProfileDecodeError(format!(
                "opcode '{mnemonic}': unknown time kind '{other}'"
            )))
        }
    };
    let bytes_factor = num(entry, mnemonic, "bytes_factor")?;
    // `< 1.0` written to also reject NaN (which fails every comparison).
    if bytes_factor.is_nan() || bytes_factor < 1.0 {
        return Err(ProfileDecodeError(format!(
            "opcode '{mnemonic}': bytes_factor {bytes_factor} < 1.0 would shrink memory estimates"
        )));
    }
    let samples = entry
        .get("samples")
        .and_then(Value::as_u64)
        .ok_or_else(|| ProfileDecodeError(format!("opcode '{mnemonic}': missing 'samples'")))?;
    Ok(OpcodeCalibration {
        time,
        bytes_factor,
        samples,
    })
}

impl Serialize for TimeModel {
    fn to_value(&self) -> Value {
        match self {
            TimeModel::Affine {
                flops_s,
                bytes_s,
                base_s,
            } => Value::Object(vec![
                ("kind".into(), Value::Str("affine".into())),
                ("flops_s".into(), Value::Num(*flops_s)),
                ("bytes_s".into(), Value::Num(*bytes_s)),
                ("base_s".into(), Value::Num(*base_s)),
            ]),
            TimeModel::Scale { ratio } => Value::Object(vec![
                ("kind".into(), Value::Str("scale".into())),
                ("ratio".into(), Value::Num(*ratio)),
            ]),
            TimeModel::Fixed { seconds } => Value::Object(vec![
                ("kind".into(), Value::Str("fixed".into())),
                ("seconds".into(), Value::Num(*seconds)),
            ]),
        }
    }
}

impl Serialize for OpcodeCalibration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("time".into(), self.time.to_value()),
            ("bytes_factor".into(), Value::Num(self.bytes_factor)),
            ("samples".into(), Value::Num(self.samples as f64)),
        ])
    }
}

impl Serialize for CalibrationProfile {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".into(), Value::Num(PROFILE_VERSION as f64)),
            (
                "fitted_peak_flops".into(),
                Value::Num(self.fitted_peak_flops),
            ),
            (
                "opcodes".into(),
                Value::Object(
                    self.opcodes
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A cost model with a calibration profile attached: the ergonomic entry
/// point for "analytic model, corrected by measured traces". Dereferences
/// to the underlying [`CostModel`] so all costing entry points are
/// available unchanged.
#[derive(Debug, Clone)]
pub struct CalibratedCostModel {
    model: CostModel,
}

impl CalibratedCostModel {
    /// Attach `profile` to `model`. The profile is shared via `Arc` so
    /// cloning the model for parallel grid workers stays cheap.
    pub fn new(model: CostModel, profile: Arc<CalibrationProfile>) -> Self {
        CalibratedCostModel {
            model: model.with_calibration(profile),
        }
    }

    /// The underlying cost model (carrying the profile).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Consume into the underlying cost model.
    pub fn into_model(self) -> CostModel {
        self.model
    }
}

impl std::ops::Deref for CalibratedCostModel {
    type Target = CostModel;
    fn deref(&self) -> &CostModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> CalibrationProfile {
        let mut opcodes = BTreeMap::new();
        opcodes.insert(
            "ba+*".to_string(),
            OpcodeCalibration {
                time: TimeModel::Affine {
                    flops_s: 2.5e-10,
                    bytes_s: 1.0e-10,
                    base_s: 3.0e-6,
                },
                bytes_factor: 1.0,
                samples: 42,
            },
        );
        opcodes.insert(
            "rix".to_string(),
            OpcodeCalibration {
                time: TimeModel::Scale { ratio: 1.75 },
                bytes_factor: 2.85,
                samples: 7,
            },
        );
        opcodes.insert(
            "print".to_string(),
            OpcodeCalibration {
                time: TimeModel::Fixed { seconds: 1.2e-6 },
                bytes_factor: 1.0,
                samples: 3,
            },
        );
        CalibrationProfile {
            fitted_peak_flops: 2.0e9,
            opcodes,
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let p = sample_profile();
        let json = p.to_json();
        let back = CalibrationProfile::from_json(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn unknown_version_rejected() {
        let mut v = sample_profile().to_value();
        if let Value::Object(fields) = &mut v {
            fields[0].1 = Value::Num(99.0);
        }
        let err = CalibrationProfile::from_value(&v).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
    }

    #[test]
    fn shrinking_bytes_factor_rejected() {
        let json = sample_profile().to_json().replace("2.85", "0.5");
        let err = CalibrationProfile::from_json(&json).unwrap_err();
        assert!(err.0.contains("bytes_factor"), "{err}");
    }

    #[test]
    fn affine_degrades_to_analytic_on_unknown_sizes() {
        let cal = sample_profile().opcodes["ba+*"].clone();
        assert_eq!(cal.predict_seconds(None, Some(100), 0.5), 0.5);
        let t = cal.predict_seconds(Some(1e6), Some(1 << 20), 0.5);
        assert!(t > 0.0 && t != 0.5);
    }

    #[test]
    fn bytes_never_shrink() {
        let cal = OpcodeCalibration {
            time: TimeModel::Scale { ratio: 0.5 },
            bytes_factor: 1.0,
            samples: 1,
        };
        assert_eq!(cal.calibrated_bytes(4096), 4096);
        let inflated = OpcodeCalibration {
            bytes_factor: 2.85,
            ..cal
        };
        assert_eq!(inflated.calibrated_bytes(1000), 2850);
    }
}

//! Estimation-accuracy evaluation: predicted vs measured, before and
//! after calibration.
//!
//! The error metric is the symmetric ratio error
//! `err = max(pred, meas) / min(pred, meas) ≥ 1`, with a 1 ns floor on
//! times (zero-flop opcodes have an analytic estimate of exactly zero;
//! the floor keeps their error finite while still charging the analytic
//! model honestly for predicting "free" on work that took real time) and
//! a 1-byte floor on sizes. Aggregation is the geometric mean, so a 2×
//! over-estimate and a 2× under-estimate weigh the same and no single
//! opcode's tail dominates.

use std::collections::BTreeMap;

use reml_cost::calibrate::CalibrationProfile;
use reml_cost::flops::UNKNOWN_FLOPS;
use reml_runtime::MemObservation;

/// 1 ns: floor for measured/predicted seconds in ratio errors.
const TIME_FLOOR_S: f64 = 1e-9;

/// Per-opcode estimation-error row (before/after calibration).
#[derive(Debug, Clone, serde::Serialize)]
pub struct OpcodeErrorRow {
    /// Opcode mnemonic.
    pub opcode: String,
    /// Observations evaluated.
    pub samples: u64,
    /// Total measured wall time, milliseconds.
    pub measured_ms: f64,
    /// Total analytically predicted time, milliseconds.
    pub analytic_ms: f64,
    /// Total calibrated predicted time, milliseconds.
    pub calibrated_ms: f64,
    /// Geomean symmetric ratio error of the analytic time estimate.
    pub analytic_time_err: f64,
    /// Geomean symmetric ratio error of the calibrated time estimate.
    pub calibrated_time_err: f64,
    /// Geomean ratio error of analytic byte predictions (known sizes).
    pub analytic_bytes_err: f64,
    /// Geomean ratio error of calibrated byte predictions.
    pub calibrated_bytes_err: f64,
}

/// Whole-evaluation error summary.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ErrorReport {
    /// Observations evaluated.
    pub samples: u64,
    /// Geomean time error of the pure analytic model.
    pub analytic_time_err: f64,
    /// Geomean time error with the calibration profile attached.
    pub calibrated_time_err: f64,
    /// Geomean byte error of the analytic predictions.
    pub analytic_bytes_err: f64,
    /// Geomean byte error of the calibrated predictions.
    pub calibrated_bytes_err: f64,
    /// Per-opcode rows, sorted by measured time (descending).
    pub per_opcode: Vec<OpcodeErrorRow>,
}

impl ErrorReport {
    /// Multiplicative improvement of the calibrated time estimate
    /// (`> 1` = calibration reduced the geomean error).
    pub fn time_error_reduction(&self) -> f64 {
        self.analytic_time_err / self.calibrated_time_err
    }

    /// Fixed-width text table for terminal reports.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:>7} {:>11} {:>11} {:>11} {:>9} {:>9}\n",
            "opcode", "samples", "measured", "analytic", "calibrated", "err", "err'"
        ));
        for r in &self.per_opcode {
            out.push_str(&format!(
                "{:<22} {:>7} {:>9.3}ms {:>9.3}ms {:>9.3}ms {:>8.2}x {:>8.2}x\n",
                r.opcode,
                r.samples,
                r.measured_ms,
                r.analytic_ms,
                r.calibrated_ms,
                r.analytic_time_err,
                r.calibrated_time_err,
            ));
        }
        out.push_str(&format!(
            "geomean time err: {:.2}x -> {:.2}x ({:.2}x reduction) | bytes err: {:.3}x -> {:.3}x | samples: {}\n",
            self.analytic_time_err,
            self.calibrated_time_err,
            self.time_error_reduction(),
            self.analytic_bytes_err,
            self.calibrated_bytes_err,
            self.samples,
        ));
        out
    }
}

fn ratio_err(pred: f64, meas: f64, floor: f64) -> f64 {
    let p = pred.max(floor);
    let m = meas.max(floor);
    if p > m {
        p / m
    } else {
        m / p
    }
}

#[derive(Default)]
struct ErrAcc {
    samples: u64,
    measured_s: f64,
    analytic_s: f64,
    calibrated_s: f64,
    ln_analytic: f64,
    ln_calibrated: f64,
    ln_bytes_analytic: f64,
    ln_bytes_calibrated: f64,
    bytes_n: u64,
}

/// Evaluate estimation error over observation rows, with and without the
/// profile. `peak_flops` is the analytic model's nominal peak (the same
/// value the fit was computed against).
pub fn evaluate(
    observations: &[MemObservation],
    peak_flops: f64,
    profile: &CalibrationProfile,
) -> ErrorReport {
    let mut by_op: BTreeMap<&str, ErrAcc> = BTreeMap::new();
    for obs in observations {
        let measured_s = obs.wall_ns as f64 / 1e9;
        let analytic_s = obs.predicted_flops.unwrap_or(UNKNOWN_FLOPS) / peak_flops;
        let calibrated_s = match profile.get(&obs.opcode) {
            Some(cal) => cal.predict_seconds(obs.predicted_flops, obs.predicted_bytes, analytic_s),
            None => analytic_s,
        };
        let acc = by_op.entry(obs.opcode.as_str()).or_default();
        acc.samples += 1;
        acc.measured_s += measured_s;
        acc.analytic_s += analytic_s;
        acc.calibrated_s += calibrated_s;
        acc.ln_analytic += ratio_err(analytic_s, measured_s, TIME_FLOOR_S).ln();
        acc.ln_calibrated += ratio_err(calibrated_s, measured_s, TIME_FLOOR_S).ln();
        if let Some(pred) = obs.predicted_bytes {
            if obs.actual_bytes > 0 && pred > 0 {
                let cal_pred = match profile.get(&obs.opcode) {
                    Some(cal) => cal.calibrated_bytes(pred),
                    None => pred,
                };
                acc.ln_bytes_analytic += ratio_err(pred as f64, obs.actual_bytes as f64, 1.0).ln();
                acc.ln_bytes_calibrated +=
                    ratio_err(cal_pred as f64, obs.actual_bytes as f64, 1.0).ln();
                acc.bytes_n += 1;
            }
        }
    }

    let mut per_opcode: Vec<OpcodeErrorRow> = by_op
        .into_iter()
        .map(|(opcode, acc)| {
            let n = acc.samples as f64;
            OpcodeErrorRow {
                opcode: opcode.to_string(),
                samples: acc.samples,
                measured_ms: acc.measured_s * 1e3,
                analytic_ms: acc.analytic_s * 1e3,
                calibrated_ms: acc.calibrated_s * 1e3,
                analytic_time_err: (acc.ln_analytic / n).exp(),
                calibrated_time_err: (acc.ln_calibrated / n).exp(),
                analytic_bytes_err: if acc.bytes_n > 0 {
                    (acc.ln_bytes_analytic / acc.bytes_n as f64).exp()
                } else {
                    1.0
                },
                calibrated_bytes_err: if acc.bytes_n > 0 {
                    (acc.ln_bytes_calibrated / acc.bytes_n as f64).exp()
                } else {
                    1.0
                },
            }
        })
        .collect();
    per_opcode.sort_by(|a, b| b.measured_ms.total_cmp(&a.measured_ms));

    let total = |f: &dyn Fn(&OpcodeErrorRow) -> (f64, u64)| -> f64 {
        let (ln_sum, n) = per_opcode
            .iter()
            .map(f)
            .fold((0.0, 0u64), |(s, n), (ln, k)| (s + ln, n + k));
        if n > 0 {
            (ln_sum / n as f64).exp()
        } else {
            1.0
        }
    };
    let samples: u64 = per_opcode.iter().map(|r| r.samples).sum();
    let bytes_samples: u64 = samples; // weights below carry their own n
    let _ = bytes_samples;
    ErrorReport {
        samples,
        analytic_time_err: total(&|r| (r.analytic_time_err.ln() * r.samples as f64, r.samples)),
        calibrated_time_err: total(&|r| (r.calibrated_time_err.ln() * r.samples as f64, r.samples)),
        analytic_bytes_err: total(&|r| (r.analytic_bytes_err.ln() * r.samples as f64, r.samples)),
        calibrated_bytes_err: total(&|r| {
            (r.calibrated_bytes_err.ln() * r.samples as f64, r.samples)
        }),
        per_opcode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cost::calibrate::{OpcodeCalibration, TimeModel};

    fn obs(opcode: &str, flops: f64, wall_ns: u64) -> MemObservation {
        MemObservation {
            opcode: opcode.to_string(),
            predicted_bytes: Some(1000),
            actual_bytes: 1000,
            resident_bytes: 1000,
            bound_bytes: None,
            wall_ns,
            predicted_flops: Some(flops),
            constituents: Vec::new(),
        }
    }

    #[test]
    fn perfect_scale_profile_zeroes_the_error() {
        // Analytic is 2x too fast everywhere: measured 1µs vs 500ns.
        let rows: Vec<MemObservation> = (0..10).map(|_| obs("ba+*", 1000.0, 1000)).collect();
        let mut profile = CalibrationProfile {
            fitted_peak_flops: 2.0e9,
            opcodes: Default::default(),
        };
        profile.opcodes.insert(
            "ba+*".into(),
            OpcodeCalibration {
                time: TimeModel::Scale { ratio: 2.0 },
                bytes_factor: 1.0,
                samples: 10,
            },
        );
        let report = evaluate(&rows, 2.0e9, &profile);
        assert!((report.analytic_time_err - 2.0).abs() < 1e-9);
        assert!((report.calibrated_time_err - 1.0).abs() < 1e-9);
        assert!(report.time_error_reduction() > 1.9);
    }

    #[test]
    fn unseen_opcode_keeps_analytic_error() {
        let rows = vec![obs("solve", 1000.0, 1000)];
        let profile = CalibrationProfile::default();
        let report = evaluate(&rows, 2.0e9, &profile);
        assert_eq!(report.analytic_time_err, report.calibrated_time_err);
    }
}

//! Per-opcode model fitting: online least squares with a robust
//! quantile fallback.
//!
//! Each opcode accumulates its samples into a 3×3 normal-equation system
//! for the affine model `t = a·flops + b·bytes + c` — O(1) state per
//! opcode regardless of sample count, so fitting streams over traces of
//! any length. The solve runs once at `finish()`:
//!
//! * enough well-conditioned samples and physical (non-negative)
//!   coefficients → [`TimeModel::Affine`];
//! * otherwise → [`TimeModel::Scale`], the *median* of per-sample
//!   measured/analytic ratios (robust to the heavy-tailed timing noise of
//!   micro-instructions);
//! * opcodes whose analytic estimate is zero (pure data movement) →
//!   [`TimeModel::Fixed`], the median measured time.
//!
//! The byte model is deliberately one-sided: `bytes_factor` is the q95 of
//! measured actual/predicted ratios clamped to `≥ 1`, so calibration can
//! inflate a memory estimate but never shrink one below the analytic
//! prediction (memest soundness is preserved by construction).

use std::collections::BTreeMap;

use reml_cost::calibrate::{CalibrationProfile, OpcodeCalibration, TimeModel};

use crate::harvest::Sample;

/// Minimum known-size samples before the affine fit is attempted.
pub const MIN_AFFINE_SAMPLES: u64 = 8;

/// Relative pivot threshold below which the normal equations are
/// declared ill-conditioned.
const COND_EPS: f64 = 1e-9;

/// Online accumulator for one opcode.
#[derive(Debug, Clone, Default)]
struct OpcodeFitter {
    /// Normal equations: `xtx · β = xty` for x = [flops, bytes, 1].
    xtx: [[f64; 3]; 3],
    xty: [f64; 3],
    /// Samples folded into the normal equations (known flops + bytes).
    n_affine: u64,
    /// All samples seen.
    n_total: u64,
    /// Per-sample measured/analytic time ratios (samples with a positive
    /// analytic estimate).
    ratios: Vec<f64>,
    /// Measured seconds of samples with a zero analytic estimate.
    zero_analytic_s: Vec<f64>,
    /// Measured actual/predicted byte ratios.
    byte_ratios: Vec<f64>,
}

impl OpcodeFitter {
    fn push(&mut self, s: &Sample, peak_flops: f64) {
        self.n_total += 1;
        let t = s.wall_s;
        if let (Some(f), Some(b)) = (s.flops, s.bytes) {
            let x = [f, b as f64, 1.0];
            for i in 0..3 {
                for j in 0..3 {
                    self.xtx[i][j] += x[i] * x[j];
                }
                self.xty[i] += x[i] * t;
            }
            self.n_affine += 1;
        }
        if let Some(f) = s.flops {
            let analytic = f / peak_flops;
            if analytic > 0.0 {
                self.ratios.push(t / analytic);
            } else {
                self.zero_analytic_s.push(t);
            }
        } else {
            // Unknown flops: the analytic model prices these via the
            // UNKNOWN_FLOPS sentinel; fitting a ratio against a sentinel
            // would be meaningless, so the sample only informs the
            // byte model below.
        }
        if let (Some(p), actual) = (s.bytes, s.actual_bytes) {
            if p > 0 {
                self.byte_ratios.push(actual as f64 / p as f64);
            }
        }
    }

    fn finish(mut self) -> Option<OpcodeCalibration> {
        if self.n_total == 0 {
            return None;
        }
        let bytes_factor = quantile(&mut self.byte_ratios, 0.95)
            .unwrap_or(1.0)
            .max(1.0);
        let time = self
            .affine()
            .or_else(|| quantile(&mut self.ratios, 0.5).map(|ratio| TimeModel::Scale { ratio }))
            .or_else(|| {
                quantile(&mut self.zero_analytic_s, 0.5).map(|seconds| TimeModel::Fixed { seconds })
            })?;
        Some(OpcodeCalibration {
            time,
            bytes_factor,
            samples: self.n_total,
        })
    }

    /// Attempt the affine solve; `None` on too few samples, an
    /// ill-conditioned system, or non-physical coefficients.
    fn affine(&self) -> Option<TimeModel> {
        if self.n_affine < MIN_AFFINE_SAMPLES {
            return None;
        }
        // Column scaling (flops and bytes can sit at ~1e6 while the
        // intercept column is 1): equilibrate before elimination.
        let scale = [
            self.xtx[0][0].sqrt().max(1.0),
            self.xtx[1][1].sqrt().max(1.0),
            self.xtx[2][2].sqrt().max(1.0),
        ];
        let mut a = [[0.0f64; 4]; 3];
        for i in 0..3 {
            for j in 0..3 {
                a[i][j] = self.xtx[i][j] / (scale[i] * scale[j]);
            }
            a[i][3] = self.xty[i] / scale[i];
        }
        // Gaussian elimination with partial pivoting.
        for col in 0..3 {
            let pivot_row = (col..3)
                .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
                .unwrap();
            if a[pivot_row][col].abs() < COND_EPS {
                return None;
            }
            a.swap(col, pivot_row);
            for row in (col + 1)..3 {
                let f = a[row][col] / a[col][col];
                // Indexes two distinct rows of `a` at once; an iterator
                // form would need split_at_mut gymnastics for no gain.
                #[allow(clippy::needless_range_loop)]
                for k in col..4 {
                    a[row][k] -= f * a[col][k];
                }
            }
        }
        let mut beta = [0.0f64; 3];
        for row in (0..3).rev() {
            let mut v = a[row][3];
            for k in (row + 1)..3 {
                v -= a[row][k] * beta[k];
            }
            beta[row] = v / a[row][row];
        }
        let (flops_s, bytes_s, base_s) =
            (beta[0] / scale[0], beta[1] / scale[1], beta[2] / scale[2]);
        // Non-physical fit (negative throughput/bandwidth/overhead):
        // reject and let the quantile fallback take over.
        if flops_s < 0.0 || bytes_s < 0.0 || base_s < 0.0 {
            return None;
        }
        Some(TimeModel::Affine {
            flops_s,
            bytes_s,
            base_s,
        })
    }
}

/// Quantile of `values` (sorted in place); `None` when empty.
fn quantile(values: &mut [f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    Some(values[idx])
}

/// Streaming profile fitter over harvested samples.
#[derive(Debug, Default)]
pub struct ProfileFitter {
    by_opcode: BTreeMap<String, OpcodeFitter>,
    peak_flops: f64,
}

impl ProfileFitter {
    /// Fitter against the analytic model's `peak_flops` (the quantile
    /// fallback expresses measured time relative to `flops / peak`).
    pub fn new(peak_flops: f64) -> Self {
        ProfileFitter {
            by_opcode: BTreeMap::new(),
            peak_flops,
        }
    }

    /// Fold one sample in (O(1) amortized; ratio vectors grow for the
    /// median fallback).
    pub fn push(&mut self, sample: &Sample) {
        self.by_opcode
            .entry(sample.opcode.clone())
            .or_default()
            .push(sample, self.peak_flops);
    }

    /// Fold many samples.
    pub fn extend<'a>(&mut self, samples: impl IntoIterator<Item = &'a Sample>) {
        for s in samples {
            self.push(s);
        }
    }

    /// Solve every opcode and assemble the profile.
    pub fn finish(self) -> CalibrationProfile {
        let peak = self.peak_flops;
        CalibrationProfile {
            fitted_peak_flops: peak,
            opcodes: self
                .by_opcode
                .into_iter()
                .filter_map(|(op, fitter)| fitter.finish().map(|cal| (op, cal)))
                .collect(),
        }
    }
}

/// One-shot convenience: fit a profile from a sample slice.
pub fn fit_profile(samples: &[Sample], peak_flops: f64) -> CalibrationProfile {
    let mut fitter = ProfileFitter::new(peak_flops);
    fitter.extend(samples);
    fitter.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(opcode: &str, flops: f64, bytes: u64, wall_s: f64) -> Sample {
        Sample {
            opcode: opcode.to_string(),
            flops: Some(flops),
            bytes: Some(bytes),
            actual_bytes: bytes,
            wall_s,
        }
    }

    #[test]
    fn affine_recovers_exact_coefficients() {
        let (a, b, c) = (3.0e-10, 5.0e-11, 2.0e-6);
        let samples: Vec<Sample> = (1..40)
            .map(|i| {
                let f = (i * i * 1000) as f64;
                let by = (i * 8192) as u64;
                sample("ba+*", f, by, a * f + b * by as f64 + c)
            })
            .collect();
        let profile = fit_profile(&samples, 2.0e9);
        let cal = profile.get("ba+*").expect("fitted");
        match cal.time {
            TimeModel::Affine {
                flops_s,
                bytes_s,
                base_s,
            } => {
                assert!((flops_s - a).abs() / a < 1e-6, "{flops_s} vs {a}");
                assert!((bytes_s - b).abs() / b < 1e-6, "{bytes_s} vs {b}");
                assert!((base_s - c).abs() / c < 1e-3, "{base_s} vs {c}");
            }
            ref other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_design_falls_back_to_scale() {
        // Identical samples: rank-1 system, unsolvable — the median
        // ratio fallback must kick in.
        let samples: Vec<Sample> = (0..20).map(|_| sample("r'", 1000.0, 4096, 1e-6)).collect();
        let profile = fit_profile(&samples, 2.0e9);
        match profile.get("r'").expect("fitted").time {
            TimeModel::Scale { ratio } => {
                // analytic = 1000/2e9 = 5e-7; measured 1e-6 → ratio 2.
                assert!((ratio - 2.0).abs() < 1e-9, "{ratio}");
            }
            ref other => panic!("expected scale, got {other:?}"),
        }
    }

    #[test]
    fn zero_flop_ops_get_fixed_median() {
        let samples: Vec<Sample> = (0..9)
            .map(|i| sample("rmvar", 0.0, 0, (i + 1) as f64 * 1e-7))
            .collect();
        let profile = fit_profile(&samples, 2.0e9);
        match profile.get("rmvar").expect("fitted").time {
            TimeModel::Fixed { seconds } => assert!((seconds - 5e-7).abs() < 1e-12, "{seconds}"),
            ref other => panic!("expected fixed, got {other:?}"),
        }
    }

    #[test]
    fn bytes_factor_never_below_one() {
        // Actual far below predicted: the one-sided q95 must clamp at 1.
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                actual_bytes: 10,
                ..sample("tsmm", (i + 1) as f64 * 1e5, 1_000_000, 1e-5)
            })
            .collect();
        let profile = fit_profile(&samples, 2.0e9);
        assert_eq!(profile.get("tsmm").unwrap().bytes_factor, 1.0);
    }

    #[test]
    fn under_estimated_bytes_inflate() {
        let samples: Vec<Sample> = (0..10)
            .map(|i| Sample {
                actual_bytes: 2_850_000,
                ..sample("rix", (i + 1) as f64 * 1e5, 1_000_000, 1e-5)
            })
            .collect();
        let profile = fit_profile(&samples, 2.0e9);
        let f = profile.get("rix").unwrap().bytes_factor;
        assert!((f - 2.85).abs() < 1e-9, "{f}");
    }
}

//! # reml-calibrate — self-calibrating cost model from measured traces
//!
//! Closes the loop between the white-box analytic cost model
//! (`reml-cost`, §3.1) and reality, following the costing methodology of
//! Boehm et al. (arXiv:1503.06384): execute real scripts with
//! per-instruction observation enabled, harvest (opcode, predicted
//! flops, predicted bytes, measured wall time) samples, fit per-opcode
//! correction models, and persist a versioned
//! [`CalibrationProfile`](reml_cost::calibrate::CalibrationProfile) that
//! [`CostModel`](reml_cost::CostModel) consults when attached.
//!
//! Pipeline:
//!
//! 1. [`harvest`] — expand raw [`MemObservation`](reml_runtime::MemObservation)
//!    rows (from `reml_sim::collect_observations` or any observed
//!    executor run) into fit samples, backfilling fused-chain composites
//!    onto their constituent opcodes, and optionally topping up from
//!    `reml_trace`'s `exec.op.*`/`vm.op.*` histograms;
//! 2. [`fit`] — online least squares per opcode
//!    (`t = a·flops + b·bytes + c`) with a robust median-ratio fallback
//!    and a one-sided (never shrinking) byte-inflation factor;
//! 3. [`report`] — per-opcode predicted-vs-measured error, before and
//!    after calibration, gated on a measured geomean error reduction.

#![forbid(unsafe_code)]

pub mod fit;
pub mod harvest;
pub mod report;

pub use fit::{fit_profile, ProfileFitter, MIN_AFFINE_SAMPLES};
pub use harvest::{samples_from_observations, samples_from_trace_histograms, Sample};
pub use report::{evaluate, ErrorReport, OpcodeErrorRow};

use reml_cost::calibrate::CalibrationProfile;
use reml_scripts::data::LabelKind;
use reml_scripts::ScriptSpec;
use reml_sim::ScriptObservations;

/// One paper script with the dataset shape used for observed execution
/// (small enough to execute for real, large enough to exercise every
/// operator the optimizer prices).
pub struct PaperRun {
    /// Script constructor.
    pub ctor: fn() -> ScriptSpec,
    /// Label distribution of the generated dataset.
    pub label: LabelKind,
    /// Dataset rows.
    pub rows: u64,
    /// Dataset cols.
    pub cols: u64,
    /// Script `$` parameter overrides.
    pub params: &'static [(&'static str, f64)],
}

/// The five paper scripts at their `profile_report` execution shapes.
pub fn paper_runs() -> Vec<PaperRun> {
    vec![
        PaperRun {
            ctor: reml_scripts::linreg_ds,
            label: LabelKind::Regression,
            rows: 1500,
            cols: 12,
            params: &[],
        },
        PaperRun {
            ctor: reml_scripts::linreg_cg,
            label: LabelKind::Regression,
            rows: 1200,
            cols: 10,
            params: &[("maxiter", 15.0)],
        },
        PaperRun {
            ctor: reml_scripts::l2svm,
            label: LabelKind::BinaryPm1,
            rows: 800,
            cols: 8,
            params: &[],
        },
        PaperRun {
            ctor: reml_scripts::mlogreg,
            label: LabelKind::Classes(4),
            rows: 600,
            cols: 6,
            params: &[],
        },
        PaperRun {
            ctor: reml_scripts::glm,
            label: LabelKind::Counts,
            rows: 500,
            cols: 5,
            params: &[],
        },
    ]
}

/// Execute every paper script with observation recording and return the
/// raw per-script rows.
pub fn collect_paper_observations() -> Vec<ScriptObservations> {
    paper_runs()
        .iter()
        .map(|run| {
            reml_sim::collect_observations(&(run.ctor)(), run.rows, run.cols, run.label, run.params)
        })
        .collect()
}

/// Fit a profile from a set of observed script executions, against the
/// given analytic peak (harvests fused backfill automatically).
pub fn fit_from_observations(sets: &[ScriptObservations], peak_flops: f64) -> CalibrationProfile {
    let mut fitter = ProfileFitter::new(peak_flops);
    for set in sets {
        let samples = samples_from_observations(&set.observations);
        fitter.extend(&samples);
    }
    fitter.finish()
}

/// End-to-end convenience: run the five paper scripts, fit a profile
/// against the paper cluster's nominal peak, and evaluate estimation
/// error before/after over the same observations. Returns the fitted
/// profile, the pooled error report, and the raw per-script rows.
pub fn calibrate_paper_scripts() -> (CalibrationProfile, ErrorReport, Vec<ScriptObservations>) {
    let peak = reml_cluster::ClusterConfig::paper_cluster().peak_flops;
    let sets = collect_paper_observations();
    let profile = fit_from_observations(&sets, peak);
    let pooled: Vec<_> = sets
        .iter()
        .flat_map(|s| s.observations.iter().cloned())
        .collect();
    let report = evaluate(&pooled, peak, &profile);
    (profile, report, sets)
}

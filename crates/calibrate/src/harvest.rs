//! Observation harvesting: turn raw execution traces into fit samples.
//!
//! Primary source: the per-instruction [`MemObservation`] rows recorded
//! by the VM/tree executors (via `sim::collect_observations`), which
//! carry predicted flops, predicted/actual bytes, and measured wall
//! time. Fused VM instructions are harvested twice — once under their
//! composite `fused(...)` mnemonic (so plans that re-fuse the same chain
//! predict accurately) and once *backfilled* onto their constituent
//! opcodes, splitting the measured wall time across constituents in
//! proportion to predicted FLOPs (equal split when unknown). Backfill is
//! what lets a profile fitted on fused executions still calibrate the
//! unfused opcodes the cost model scans.
//!
//! Secondary source: `reml_trace`'s `exec.op.*` / `vm.op.*` histograms.
//! Histograms only retain (count, sum, min, max, mean) — no per-sample
//! size columns — so they can only reinforce [`TimeModel::Fixed`]-style
//! medians for opcodes that never appeared in the observation rows.
//!
//! [`TimeModel::Fixed`]: reml_cost::calibrate::TimeModel::Fixed

use reml_runtime::MemObservation;
use reml_trace::MetricSnapshot;

/// One fit sample: an observed (or backfilled) execution of one opcode.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Opcode mnemonic.
    pub opcode: String,
    /// Predicted FLOPs (`None` when compile-time sizes were unknown).
    pub flops: Option<f64>,
    /// Predicted operand+output bytes.
    pub bytes: Option<u64>,
    /// Measured operand+output bytes in the buffer pool.
    pub actual_bytes: u64,
    /// Measured wall time, seconds.
    pub wall_s: f64,
}

/// Expand observation rows into fit samples (composite fused rows plus
/// their per-constituent backfill).
pub fn samples_from_observations(observations: &[MemObservation]) -> Vec<Sample> {
    let mut out = Vec::with_capacity(observations.len());
    for obs in observations {
        let wall_s = obs.wall_ns as f64 / 1e9;
        out.push(Sample {
            opcode: obs.opcode.clone(),
            flops: obs.predicted_flops,
            bytes: obs.predicted_bytes,
            actual_bytes: obs.actual_bytes,
            wall_s,
        });
        if obs.constituents.is_empty() {
            continue;
        }
        // Backfill: split measured wall time across constituents by
        // predicted-FLOP share (equal shares when any step is unknown).
        let total_flops: Option<f64> = obs
            .constituents
            .iter()
            .try_fold(0.0, |acc, c| c.predicted_flops.map(|f| acc + f))
            .filter(|t| *t > 0.0);
        let n = obs.constituents.len() as f64;
        for c in &obs.constituents {
            let share = match (total_flops, c.predicted_flops) {
                (Some(total), Some(f)) => f / total,
                _ => 1.0 / n,
            };
            out.push(Sample {
                opcode: c.mnemonic.clone(),
                flops: c.predicted_flops,
                bytes: c.predicted_bytes,
                // The pool footprint is a property of the whole fused
                // instruction; constituent byte predictions have no
                // measured counterpart, so don't let them touch the
                // one-sided byte model.
                actual_bytes: 0,
                wall_s: wall_s * share,
            });
        }
    }
    out
}

/// Harvest mean-time samples from the trace registry's per-opcode
/// histograms (`exec.op.<mnemonic>` from the tree executor,
/// `vm.op.<mnemonic>` from the VM), for opcodes *not* already covered by
/// observation rows. Histogram means carry no size columns, so each
/// becomes `count` flop-less samples at the mean — enough for a `Fixed`
/// fallback entry, never an affine fit.
pub fn samples_from_trace_histograms(covered: &dyn Fn(&str) -> bool) -> Vec<Sample> {
    let mut out = Vec::new();
    for (name, snap) in reml_trace::metrics().snapshot() {
        let opcode = match name
            .strip_prefix("exec.op.")
            .or(name.strip_prefix("vm.op."))
        {
            Some(op) if !op.is_empty() => op.to_string(),
            _ => continue,
        };
        if covered(&opcode) {
            continue;
        }
        if let MetricSnapshot::Histogram { count, mean, .. } = snap {
            let wall_s = mean / 1e6; // histograms record microseconds
            for _ in 0..count.min(64) {
                out.push(Sample {
                    opcode: opcode.clone(),
                    flops: Some(0.0),
                    bytes: None,
                    actual_bytes: 0,
                    wall_s,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_runtime::vm::ObservedConstituent;

    fn obs(opcode: &str, wall_ns: u64) -> MemObservation {
        MemObservation {
            opcode: opcode.to_string(),
            predicted_bytes: Some(1000),
            actual_bytes: 800,
            resident_bytes: 800,
            bound_bytes: Some(2000),
            wall_ns,
            predicted_flops: Some(500.0),
            constituents: Vec::new(),
        }
    }

    #[test]
    fn plain_rows_become_one_sample() {
        let samples = samples_from_observations(&[obs("ba+*", 1_000)]);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].opcode, "ba+*");
        assert!((samples[0].wall_s - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn fused_rows_backfill_constituents_by_flop_share() {
        let mut fused = obs("fused(map*,map+)", 4_000);
        fused.constituents = vec![
            ObservedConstituent {
                mnemonic: "map*".into(),
                predicted_flops: Some(300.0),
                predicted_bytes: Some(600),
            },
            ObservedConstituent {
                mnemonic: "map+".into(),
                predicted_flops: Some(100.0),
                predicted_bytes: Some(400),
            },
        ];
        let samples = samples_from_observations(&[fused]);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].opcode, "fused(map*,map+)");
        let star = samples.iter().find(|s| s.opcode == "map*").unwrap();
        let plus = samples.iter().find(|s| s.opcode == "map+").unwrap();
        // 4µs split 3:1 by flops.
        assert!((star.wall_s - 3e-6).abs() < 1e-15, "{}", star.wall_s);
        assert!((plus.wall_s - 1e-6).abs() < 1e-15, "{}", plus.wall_s);
        // Backfilled rows never contribute to the byte model.
        assert_eq!(star.actual_bytes, 0);
    }

    #[test]
    fn unknown_constituent_flops_split_equally() {
        let mut fused = obs("fused(s*,u^)", 2_000);
        fused.constituents = vec![
            ObservedConstituent {
                mnemonic: "s*".into(),
                predicted_flops: None,
                predicted_bytes: None,
            },
            ObservedConstituent {
                mnemonic: "u^".into(),
                predicted_flops: Some(100.0),
                predicted_bytes: Some(400),
            },
        ];
        let samples = samples_from_observations(&[fused]);
        let s = samples.iter().find(|s| s.opcode == "s*").unwrap();
        assert!((s.wall_s - 1e-6).abs() < 1e-15);
    }
}

//! Property tests for the calibration fit:
//!
//! * permutation-insensitivity — the fitted model predicts the same
//!   times (within fp-reassociation tolerance) no matter the order the
//!   samples streamed in;
//! * monotonicity/stability in sample count — on noiseless
//!   affine-generated data every prefix past the affine minimum recovers
//!   the ground truth, so more samples never degrade the fit, and the
//!   profile's recorded sample count grows with the stream;
//! * serde round-trip — a profile survives JSON encode/decode
//!   *byte-identically* (BTreeMap key order + shortest-round-trip f64
//!   rendering make the encoding canonical).

use proptest::prelude::*;
use reml_calibrate::{fit_profile, Sample, MIN_AFFINE_SAMPLES};
use reml_cost::calibrate::{CalibrationProfile, OpcodeCalibration, TimeModel};

const PEAK: f64 = 2.0e9;

fn affine_samples(a: f64, b: f64, c: f64, points: &[(f64, u64, f64)]) -> Vec<Sample> {
    points
        .iter()
        .map(|&(flops, bytes, noise)| Sample {
            opcode: "ba+*".to_string(),
            flops: Some(flops),
            bytes: Some(bytes),
            actual_bytes: bytes,
            wall_s: (a * flops + b * bytes as f64 + c) * (1.0 + noise),
        })
        .collect()
}

/// Deterministic Fisher–Yates driven by an LCG, so shuffles are
/// reproducible from the proptest seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

fn predict(profile: &CalibrationProfile, flops: f64, bytes: u64) -> f64 {
    profile.get("ba+*").expect("opcode fitted").predict_seconds(
        Some(flops),
        Some(bytes),
        flops / PEAK,
    )
}

proptest! {
    #[test]
    fn fit_is_permutation_insensitive(
        a in 1.0e-11f64..1.0e-9,
        b in 1.0e-12f64..1.0e-10,
        c in 1.0e-7f64..1.0e-4,
        points in prop::collection::vec(
            (1.0e3f64..1.0e7, 1_000u64..10_000_000, -0.004f64..0.004),
            1usize..40,
        ),
        seed in 0u64..u64::MAX,
    ) {
        let samples = affine_samples(a, b, c, &points);
        let mut shuffled = samples.clone();
        shuffle(&mut shuffled, seed);

        let p1 = fit_profile(&samples, PEAK);
        let p2 = fit_profile(&shuffled, PEAK);

        let cal1 = p1.get("ba+*").expect("fitted");
        let cal2 = p2.get("ba+*").expect("fitted");
        prop_assert_eq!(cal1.samples, cal2.samples);
        for &(f, by) in &[(1.0e4, 10_000u64), (5.0e5, 500_000), (8.0e6, 8_000_000)] {
            let (t1, t2) = (predict(&p1, f, by), predict(&p2, f, by));
            prop_assert!(
                (t1 - t2).abs() <= 1e-6 * t1.abs().max(t2.abs()).max(1e-30),
                "permutation changed prediction: {t1} vs {t2} at ({f}, {by})"
            );
        }
        let (bf1, bf2) = (cal1.bytes_factor, cal2.bytes_factor);
        prop_assert!((bf1 - bf2).abs() <= 1e-9 * bf1.max(bf2).max(1.0));
    }

    #[test]
    fn fit_is_monotone_and_stable_in_sample_count(
        a in 1.0e-11f64..1.0e-9,
        b in 1.0e-12f64..1.0e-10,
        c in 1.0e-7f64..1.0e-4,
        points in prop::collection::vec(
            (1.0e3f64..1.0e7, 1_000u64..10_000_000),
            12usize..48,
        ),
    ) {
        // Noiseless affine ground truth.
        let noiseless: Vec<(f64, u64, f64)> =
            points.iter().map(|&(f, by)| (f, by, 0.0)).collect();
        let samples = affine_samples(a, b, c, &noiseless);

        let mut last_count = 0u64;
        for k in 1..=samples.len() {
            let profile = fit_profile(&samples[..k], PEAK);
            let cal = profile.get("ba+*").expect("fitted");
            // Recorded sample count is strictly monotone in the stream.
            prop_assert!(cal.samples > last_count);
            last_count = cal.samples;
            // Past the affine minimum, every prefix must recover the
            // generating model: prediction error never grows as more
            // samples of the same distribution arrive.
            if (k as u64) >= MIN_AFFINE_SAMPLES {
                for &(f, by) in &[(2.0e4, 20_000u64), (6.0e6, 6_000_000)] {
                    let truth = a * f + b * by as f64 + c;
                    let got = predict(&profile, f, by);
                    prop_assert!(
                        (got - truth).abs() <= 1e-4 * truth,
                        "prefix {k}: predicted {got}, truth {truth}"
                    );
                }
            }
        }
    }

    #[test]
    fn profile_round_trips_byte_identically(
        entries in prop::collection::vec(
            (0u8..6, 0u8..3, 1.0e-12f64..1.0e-3, 1.0e-12f64..1.0e-3,
             1.0f64..10.0, 1u64..100_000),
            0usize..6,
        ),
        peak in 1.0e9f64..1.0e10,
    ) {
        const OPS: [&str; 6] = ["ba+*", "tsmm", "r'", "map+", "fused(s*,map+)", "rmvar"];
        let mut profile = CalibrationProfile {
            fitted_peak_flops: peak,
            opcodes: Default::default(),
        };
        for &(op, kind, x, y, bf, n) in &entries {
            let time = match kind % 3 {
                0 => TimeModel::Affine { flops_s: x, bytes_s: y, base_s: x * y },
                1 => TimeModel::Scale { ratio: x * 1e6 },
                _ => TimeModel::Fixed { seconds: y },
            };
            profile.opcodes.insert(
                OPS[op as usize % OPS.len()].to_string(),
                OpcodeCalibration { time, bytes_factor: bf, samples: n },
            );
        }
        let json = profile.to_json();
        let back = CalibrationProfile::from_json(&json)
            .unwrap_or_else(|e| panic!("decode failed: {e}\n{json}"));
        prop_assert_eq!(&back, &profile);
        prop_assert_eq!(back.to_json(), json, "re-encoding must be byte-identical");
    }
}

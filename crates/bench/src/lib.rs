//! # reml-bench — experiment harness
//!
//! Shared driver code for the per-figure/per-table binaries in
//! `src/bin/`. Each binary regenerates one experiment of the paper's
//! evaluation (see DESIGN.md's experiment index): it prints a
//! human-readable table and writes a machine-readable JSON row set under
//! `results/`.
//!
//! The paper's absolute numbers came from a physical 1+6-node cluster;
//! here execution is the `reml-sim` substitute, so the *shape* of each
//! result (who wins, by roughly what factor, where crossovers fall) is
//! the reproduction target — EXPERIMENTS.md records the comparison.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::Path;

use reml_cluster::ClusterConfig;
use reml_compiler::pipeline::{analyze_program, AnalyzedProgram};
use reml_compiler::{CompileConfig, MrHeapAssignment};
use reml_cost::CostModel;
use reml_optimizer::{OptimizationResult, ResourceConfig, ResourceOptimizer};
use reml_scripts::{DataShape, ScriptSpec};
use reml_sim::{AppOutcome, FaultPlan, SimConfig, SimFacts, Simulator};

/// The §5.1 static baselines: minimum, large-CP, large-MR, and both.
/// 53.3 GB is the largest CP container request; 4.4 GB tasks are the
/// largest that keep all 12 cores per node busy.
pub fn baselines(cluster: &ClusterConfig) -> Vec<(&'static str, ResourceConfig)> {
    let max_cp = cluster.max_heap_mb();
    let max_mr = (4.4 * 1024.0) as u64;
    vec![
        ("B-SS", ResourceConfig::uniform(512, 512)),
        ("B-LS", ResourceConfig::uniform(max_cp, 512)),
        ("B-SL", ResourceConfig::uniform(512, max_mr)),
        ("B-LL", ResourceConfig::uniform(max_cp, max_mr)),
    ]
}

/// A prepared workload: analyzed program + base compile config.
pub struct Workload {
    /// The script.
    pub script: ScriptSpec,
    /// Data shape.
    pub shape: DataShape,
    /// Analyzed program.
    pub analyzed: AnalyzedProgram,
    /// Base configuration (params/inputs bound; heaps are placeholders).
    pub base: CompileConfig,
    /// Cluster.
    pub cluster: ClusterConfig,
}

impl Workload {
    /// Prepare a workload on the paper cluster.
    pub fn new(script: ScriptSpec, shape: DataShape) -> Self {
        let cluster = ClusterConfig::paper_cluster();
        let analyzed = analyze_program(&script.source).expect("script analyzes");
        let base =
            script.compile_config(shape, cluster.clone(), 512, MrHeapAssignment::uniform(512));
        Workload {
            script,
            shape,
            analyzed,
            base,
            cluster,
        }
    }

    /// Run the resource optimizer.
    pub fn optimize(&self) -> OptimizationResult {
        let optimizer = ResourceOptimizer::new(CostModel::new(self.cluster.clone()));
        optimizer
            .optimize(&self.analyzed, &self.base, None)
            .expect("optimization succeeds")
    }

    /// Run the optimizer with a custom configuration.
    pub fn optimize_with(&self, optimizer: &ResourceOptimizer) -> OptimizationResult {
        optimizer
            .optimize(&self.analyzed, &self.base, None)
            .expect("optimization succeeds")
    }

    /// Measure an execution under fixed resources.
    pub fn measure(&self, resources: ResourceConfig, reopt: bool, facts: SimFacts) -> AppOutcome {
        let sim = Simulator::new(self.cluster.clone());
        sim.run_app(
            &self.analyzed,
            &self.base,
            &SimConfig {
                resources,
                reopt,
                facts,
                slot_availability: 1.0,
                faults: FaultPlan::none(),
            },
        )
        .expect("simulation succeeds")
    }

    /// Measure with default facts and no adaptation.
    pub fn measure_static(&self, resources: ResourceConfig) -> AppOutcome {
        self.measure(resources, false, SimFacts::default())
    }

    /// Measure an execution under fixed resources with fault injection.
    pub fn measure_faulted(
        &self,
        resources: ResourceConfig,
        reopt: bool,
        facts: SimFacts,
        faults: FaultPlan,
    ) -> AppOutcome {
        let sim = Simulator::new(self.cluster.clone());
        sim.run_app(
            &self.analyzed,
            &self.base,
            &SimConfig {
                resources,
                reopt,
                facts,
                slot_availability: 1.0,
                faults,
            },
        )
        .expect("simulation succeeds")
    }
}

/// One emitted experiment row (label → numeric series).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExperimentRow {
    /// Row label (e.g. a configuration name).
    pub label: String,
    /// Column values keyed by column label.
    pub values: Vec<(String, f64)>,
}

/// A complete experiment result for JSON emission.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "fig7a").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Rows.
    pub rows: Vec<ExperimentRow>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: String,
}

impl ExperimentResult {
    /// New result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            rows: Vec::new(),
            notes: String::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<(String, f64)>) {
        self.rows.push(ExperimentRow {
            label: label.into(),
            values,
        });
    }

    /// Print as an aligned table.
    pub fn print(&self) {
        println!("== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            println!("(no rows)");
            return;
        }
        let cols: Vec<&str> = self.rows[0]
            .values
            .iter()
            .map(|(c, _)| c.as_str())
            .collect();
        print!("{:<18}", "");
        for c in &cols {
            print!("{c:>14}");
        }
        println!();
        for row in &self.rows {
            print!("{:<18}", truncate(&row.label, 18));
            for (_, v) in &row.values {
                if v.abs() >= 1000.0 {
                    print!("{v:>14.0}");
                } else {
                    print!("{v:>14.2}");
                }
            }
            println!();
        }
        if !self.notes.is_empty() {
            println!("note: {}", self.notes);
        }
        println!();
    }

    /// Write to `results/<id>.json` relative to the workspace root.
    pub fn save(&self) {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("results dir");
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(&path).expect("result file");
        let json = serde_json::to_string_pretty(self).expect("serializes");
        f.write_all(json.as_bytes()).expect("writes");
    }
}

/// Locate the workspace `results/` directory (fixed at compile time
/// relative to this crate's manifest).
pub fn results_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// Scenario sweep used by the Figure 7–11 family (rows-of-X per scenario
/// at fixed cols); XL only for Figure 7(e).
pub fn fig_scenarios(include_xl: bool) -> Vec<reml_scripts::Scenario> {
    use reml_scripts::Scenario;
    let mut v = vec![Scenario::XS, Scenario::S, Scenario::M, Scenario::L];
    if include_xl {
        v.push(Scenario::XL);
    }
    v
}

/// Run the standard end-to-end baseline comparison (the Figure 7–11
/// family) for one script/shape family and emit one result per shape.
pub fn run_baseline_family(
    fig_id: &str,
    script_ctor: fn() -> ScriptSpec,
    include_xl: bool,
    facts: SimFacts,
) -> Vec<ExperimentResult> {
    use reml_scripts::Scenario;
    let shapes = [
        (1000u64, 1.0f64, "a_dense1000"),
        (1000, 0.01, "b_sparse1000"),
        (100, 1.0, "c_dense100"),
        (100, 0.01, "d_sparse100"),
    ];
    let mut out = Vec::new();
    for (cols, sparsity, suffix) in shapes {
        let mut result = ExperimentResult::new(
            &format!("{fig_id}{}", &suffix[..1]),
            &format!("{} end-to-end [s], {}", script_ctor().name, &suffix[2..]),
        );
        for scenario in fig_scenarios(include_xl) {
            // XL sparse/medium shapes are allowed; keep symmetric.
            let shape = DataShape {
                scenario,
                cols,
                sparsity,
            };
            let wl = Workload::new(script_ctor(), shape);
            let mut values = Vec::new();
            for (label, resources) in baselines(&wl.cluster) {
                let t = wl.measure(resources, false, facts.clone()).elapsed_s;
                values.push((label.to_string(), t));
            }
            let opt = wl.optimize();
            let t = wl.measure(opt.best.clone(), false, facts.clone()).elapsed_s
                + opt.stats.opt_time.as_secs_f64();
            values.push(("Opt".to_string(), t));
            result.push_row(Scenario::name(scenario), values);
        }
        result.print();
        result.save();
        out.push(result);
    }
    out
}

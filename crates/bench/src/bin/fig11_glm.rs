//! Figure 11: GLM end-to-end baseline comparison, scenarios XS–L.

use reml_sim::SimFacts;

fn main() {
    let facts = SimFacts {
        table_cols: 20,
        ..SimFacts::default()
    };
    reml_bench::run_baseline_family("fig11", reml_scripts::glm, false, facts);
    println!(
        "Paper shape: like MLogreg, GLM suffers unknowns on dense M, but a few \
         known heavy operations guard its initial CP size above the minimum."
    );
}

//! Table 5 (Appendix D): SystemML-on-MR with resource optimization vs
//! the hand-coded Spark ports of L2SVM (hybrid and full RDD plans),
//! across data scales.

use reml_bench::{ExperimentResult, Workload};
use reml_cluster::SparkConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::{simulate_spark_iterative, SimFacts, SparkPlan};

fn main() {
    let mut result = ExperimentResult::new(
        "table5",
        "L2SVM dense1000: SystemML-MR w/ Opt vs Spark plans [s]",
    );
    let spark = SparkConfig::paper_config();
    for scenario in Scenario::ALL {
        let shape = DataShape {
            scenario,
            cols: 1000,
            sparsity: 1.0,
        };
        let wl = Workload::new(reml_scripts::l2svm(), shape);
        let opt = wl.optimize();
        let t_sysml = wl
            .measure(opt.best.clone(), false, SimFacts::default())
            .elapsed_s
            + opt.stats.opt_time.as_secs_f64();
        let data_mb = shape.x_characteristics().estimated_size_bytes().unwrap() / (1024 * 1024);
        let t_hybrid = simulate_spark_iterative(&wl.cluster, &spark, SparkPlan::Hybrid, data_mb, 5);
        let t_full = simulate_spark_iterative(&wl.cluster, &spark, SparkPlan::Full, data_mb, 5);
        result.push_row(
            scenario.name(),
            vec![
                ("SysML+Opt".to_string(), t_sysml),
                ("Spark-Hyb".to_string(), t_hybrid),
                ("Spark-Full".to_string(), t_full),
            ],
        );
    }
    result.notes = "Paper: 6/25/59 s at XS, 40/43/184 at M, 836/167/347 at L (Spark's RDD-cache \
                    sweet spot), converging at XL (12376/10119/13661). Shape target: SystemML \
                    wins small scales, Spark wins at L, rough parity at XL."
        .to_string();
    result.print();
    result.save();
}

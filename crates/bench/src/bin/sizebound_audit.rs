//! Sizebound soundness gate: run the interval abstract interpretation
//! over the five paper scripts across the XS/S/M/L scenarios, lint every
//! plan with the PL030 rule family, then execute each script with memory
//! observation and assert that no instruction's actual footprint ever
//! exceeds its statically-proven bound. Writes
//! `results/sizebound_audit.json`; exits non-zero on any error-severity
//! diagnostic or dynamic bound violation so CI can gate on it.

use std::io::Write;

use reml_bench::{results_dir, Workload};
use reml_compiler::pipeline::compile;
use reml_compiler::MrHeapAssignment;
use reml_planlint::Severity;
use reml_scripts::data::LabelKind;
use reml_scripts::{DataShape, Scenario, ScriptSpec};
use reml_sim::{memory_soundness_audit, MemoryAuditReport};
use reml_sizebound::{analyze_bounds, sound_min_cp_budget_mb};

#[derive(Debug, serde::Serialize)]
struct StaticRow {
    script: String,
    scenario: String,
    plans_analyzed: u64,
    widening_steps: u64,
    sound_min_cp_budget_mb: f64,
    errors: u64,
    warnings: u64,
}

#[derive(Debug, serde::Serialize)]
struct SizeboundAudit {
    plans_analyzed: u64,
    errors: u64,
    warnings: u64,
    static_grid: Vec<StaticRow>,
    dynamic_audit: Vec<MemoryAuditReport>,
    bound_violations: u64,
}

fn scripts() -> Vec<fn() -> ScriptSpec> {
    vec![
        reml_scripts::linreg_ds,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ]
}

fn main() {
    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut plans_total = 0u64;
    let mut errors_total = 0u64;
    let mut warnings_total = 0u64;

    for make in scripts() {
        for scenario in [Scenario::XS, Scenario::S, Scenario::M, Scenario::L] {
            let shape = DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            };
            let wl = Workload::new(make(), shape);
            let (min_heap, max_heap) = (wl.cluster.min_heap_mb(), wl.cluster.max_heap_mb());

            // Analyze at the grid extremes: the minimal-resource probe
            // (where placement pressure is highest) and the largest
            // configuration (where everything is CP-placed).
            let mut plans = 0u64;
            let mut errors = 0u64;
            let mut warnings = 0u64;
            let mut widening = 0u64;
            let mut sound_min = 0.0f64;
            for cp in [min_heap, max_heap] {
                let mut cfg = wl.base.clone();
                cfg.cp_heap_mb = cp;
                cfg.mr_heap = MrHeapAssignment::uniform(min_heap);
                let compiled = compile(&wl.analyzed, &cfg).expect("grid point compiles");
                let bounds =
                    analyze_bounds(&wl.analyzed, &compiled, &cfg).expect("analysis succeeds");
                widening = widening.max(bounds.widening_steps);
                let min = sound_min_cp_budget_mb(&bounds);
                if min > sound_min {
                    sound_min = min;
                }
                let report = reml_sizebound::lint(&compiled, &cfg, &bounds);
                plans += 1;
                for d in &report.diagnostics {
                    match d.severity {
                        Severity::Error => {
                            errors += 1;
                            failures.push(format!(
                                "{} {} (cp={cp} MB): {d}",
                                wl.script.name,
                                scenario.name()
                            ));
                        }
                        Severity::Warning => warnings += 1,
                    }
                }
            }
            plans_total += plans;
            errors_total += errors;
            warnings_total += warnings;
            println!(
                "sizebound {:<10} {:<3} {:>2} plans  {:>2} errors  {:>3} warnings  \
                 {:>2} widenings  min-cp {:>8.1} MB",
                wl.script.name,
                scenario.name(),
                plans,
                errors,
                warnings,
                widening,
                sound_min
            );
            rows.push(StaticRow {
                script: wl.script.name.to_string(),
                scenario: scenario.name().to_string(),
                plans_analyzed: plans,
                widening_steps: widening,
                sound_min_cp_budget_mb: sound_min,
                errors,
                warnings,
            });
        }
    }

    // Dynamic audit: real executions; every observation with a finite
    // interval bound must satisfy `actual <= bound`.
    println!();
    let audits = vec![
        memory_soundness_audit(
            &reml_scripts::linreg_ds(),
            1500,
            12,
            LabelKind::Regression,
            &[],
        ),
        memory_soundness_audit(
            &reml_scripts::linreg_cg(),
            1200,
            10,
            LabelKind::Regression,
            &[("maxiter", 15.0)],
        ),
        memory_soundness_audit(&reml_scripts::l2svm(), 800, 8, LabelKind::BinaryPm1, &[]),
        memory_soundness_audit(&reml_scripts::mlogreg(), 600, 6, LabelKind::Classes(4), &[]),
        memory_soundness_audit(&reml_scripts::glm(), 500, 5, LabelKind::Counts, &[]),
    ];
    let mut bound_violations = 0u64;
    for a in &audits {
        println!(
            "audit {:<10} {:>5} observations  {:>5} bounded  {:>2} violations",
            a.script, a.observations, a.bounded_observations, a.bound_unsound_total
        );
        if a.bound_unsound_total > 0 {
            bound_violations += a.bound_unsound_total;
            failures.push(format!(
                "{}: {} observations exceeded their proven bound",
                a.script, a.bound_unsound_total
            ));
        }
        if a.bounded_observations == 0 {
            failures.push(format!(
                "{}: no observation carried a finite bound (annotation broken?)",
                a.script
            ));
        }
    }

    let out = SizeboundAudit {
        plans_analyzed: plans_total,
        errors: errors_total,
        warnings: warnings_total,
        static_grid: rows,
        dynamic_audit: audits,
        bound_violations,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("sizebound_audit.json");
    let mut f = std::fs::File::create(&path).expect("result file");
    f.write_all(
        serde_json::to_string_pretty(&out)
            .expect("serializes")
            .as_bytes(),
    )
    .expect("writes");
    println!("\nwrote {}", path.display());

    if !failures.is_empty() {
        eprintln!("\nsizebound FAILED:");
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    println!("sizebound: {plans_total} plans sound, 0 dynamic violations");
}

//! Figure 15: end-to-end comparison with runtime plan adaptation for the
//! unknown-size programs (MLogreg, GLM) on scenarios S and M: B-LL vs
//! Opt (no adaptation) vs ReOpt (adaptation), with migration counts.

use reml_bench::{ExperimentResult, Workload};
use reml_optimizer::ResourceConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::SimFacts;

fn main() {
    for (id, scenario) in [("fig15a", Scenario::S), ("fig15b", Scenario::M)] {
        let mut result = ExperimentResult::new(
            id,
            &format!(
                "runtime adaptation, scenario {} [s] (columns annotated with #migrations)",
                scenario.name()
            ),
        );
        for script_ctor in [
            reml_scripts::mlogreg as fn() -> reml_scripts::ScriptSpec,
            reml_scripts::glm,
        ] {
            for (cols, sparsity) in [(1000u64, 1.0f64), (1000, 0.01), (100, 1.0), (100, 0.01)] {
                let shape = DataShape {
                    scenario,
                    cols,
                    sparsity,
                };
                let wl = Workload::new(script_ctor(), shape);
                let facts = SimFacts {
                    table_cols: if wl.script.name == "MLogreg" { 5 } else { 20 },
                    ..SimFacts::default()
                };
                let bll = ResourceConfig::uniform(wl.cluster.max_heap_mb(), (4.4 * 1024.0) as u64);
                let t_bll = wl.measure(bll, false, facts.clone()).elapsed_s;
                let opt = wl.optimize();
                let t_opt = wl.measure(opt.best.clone(), false, facts.clone()).elapsed_s
                    + opt.stats.opt_time.as_secs_f64();
                let reopt_run = wl.measure(opt.best.clone(), true, facts.clone());
                let t_reopt = reopt_run.elapsed_s + opt.stats.opt_time.as_secs_f64();
                result.push_row(
                    format!("{} {}", wl.script.name, shape.label()),
                    vec![
                        ("B-LL".to_string(), t_bll),
                        ("Opt".to_string(), t_opt),
                        ("ReOpt".to_string(), t_reopt),
                        ("#migr".to_string(), reopt_run.migrations as f64),
                    ],
                );
            }
        }
        result.notes = "Paper: one migration suffices on S (GLM needs none on some shapes \
                        thanks to known guard operations); up to two on M; ReOpt approaches \
                        the best baseline."
            .to_string();
        result.print();
        result.save();
    }
}

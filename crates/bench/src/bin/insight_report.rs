//! Insight report: makespan attribution, utilization timelines, and
//! optimizer decision provenance for the five paper scripts.
//!
//! Sweeps 5 scripts × {XS, S, M} × {benign, canonical fault schedule}.
//! Each run optimizes the workload, simulates it at the chosen
//! configuration, attributes the makespan over the causal event DAG
//! (`reml_insight`), builds the per-node utilization timeline, and
//! renders the optimizer's decision ledger.
//!
//! Artifacts: `results/insight_report.json` (deterministic — derived
//! only from the virtual clock, never wall time) and
//! `results/insight_timeline_trace.json` (Chrome `trace_event` Gantt
//! lanes of a representative faulted run).
//!
//! Gates (process exits non-zero on failure):
//! 1. attribution invariants hold and coverage ≥ 97% on every run;
//! 2. the whole report built twice in-process is byte-identical;
//! 3. every decision ledger covers its full CP grid exactly once;
//! 4. the binding-resource demo: capping the cluster's allocation
//!    ceiling below the chosen CP container moves the optimum.

use std::io::Write;

use reml_bench::{results_dir, ExperimentResult, Workload};
use reml_insight::{attribute_app, build_timeline, explain, timeline_records};
use reml_scripts::{DataShape, Scenario, ScriptSpec};
use reml_sim::{Bucket, FaultPlan, SimFacts};
use serde::Value;

/// Coverage gate: fraction of each makespan explained by a non-residual
/// taxonomy bucket.
const COVERAGE_GATE: f64 = 0.97;

fn scripts() -> Vec<fn() -> ScriptSpec> {
    vec![
        reml_scripts::linreg_ds,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ]
}

fn scenarios() -> [Scenario; 3] {
    [Scenario::XS, Scenario::S, Scenario::M]
}

fn fault_modes() -> [(&'static str, FaultPlan); 2] {
    [
        ("none", FaultPlan::none()),
        ("canonical", FaultPlan::canonical()),
    ]
}

/// One full sweep. Returns the machine-readable report tree plus the
/// human-readable attribution table; everything in the tree derives from
/// the deterministic virtual clock, so two sweeps must agree bytewise.
fn build_report() -> (Value, ExperimentResult, f64) {
    let mut runs: Vec<Value> = Vec::new();
    let mut table = ExperimentResult::new(
        "insight_attribution",
        "makespan attribution [s] per script × scenario × faults",
    );
    let mut worst_coverage = 1.0f64;

    for ctor in scripts() {
        for scenario in scenarios() {
            let wl = Workload::new(
                ctor(),
                DataShape {
                    scenario,
                    cols: 1000,
                    sparsity: 1.0,
                },
            );
            let opt = wl.optimize();
            opt.ledger
                .check_complete(
                    &opt.ledger
                        .points
                        .iter()
                        .map(|p| p.cp_heap_mb)
                        .collect::<Vec<_>>(),
                )
                .unwrap_or_else(|e| {
                    panic!(
                        "ledger completeness gate failed ({} {}): {e}",
                        wl.script.name,
                        scenario.name()
                    )
                });
            let explanation = explain(&opt, 3);

            for (fault_label, faults) in fault_modes() {
                let outcome =
                    wl.measure_faulted(opt.best.clone(), false, SimFacts::default(), faults);
                let att = attribute_app(&outcome);
                att.check_invariants().unwrap_or_else(|e| {
                    panic!(
                        "attribution invariant violated ({} {} {fault_label}): {e}",
                        wl.script.name,
                        scenario.name()
                    )
                });
                assert!(
                    att.coverage >= COVERAGE_GATE,
                    "coverage gate failed ({} {} {fault_label}): {:.4} < {COVERAGE_GATE}",
                    wl.script.name,
                    scenario.name(),
                    att.coverage
                );
                worst_coverage = worst_coverage.min(att.coverage);

                let tl = build_timeline(&outcome.causal, &wl.cluster, outcome.elapsed_s);
                let label = format!("{}/{}/{}", wl.script.name, scenario.name(), fault_label);
                table.push_row(
                    label.clone(),
                    vec![
                        ("makespan".to_string(), att.makespan_s),
                        ("compute".to_string(), att.bucket_s(Bucket::Compute)),
                        ("io".to_string(), att.bucket_s(Bucket::Io)),
                        ("shuffle".to_string(), att.bucket_s(Bucket::Shuffle)),
                        ("sched".to_string(), att.bucket_s(Bucket::SchedulingDelay)),
                        ("rework".to_string(), att.bucket_s(Bucket::RetryRework)),
                        ("coverage%".to_string(), 100.0 * att.coverage),
                        ("util%".to_string(), 100.0 * tl.cluster_utilization),
                    ],
                );
                runs.push(Value::Object(vec![
                    ("script".to_string(), Value::Str(wl.script.name.to_string())),
                    (
                        "scenario".to_string(),
                        Value::Str(scenario.name().to_string()),
                    ),
                    ("faults".to_string(), Value::Str(fault_label.to_string())),
                    ("chosen".to_string(), Value::Str(opt.best.display_gb())),
                    ("attribution".to_string(), serde::Serialize::to_value(&att)),
                    ("timeline".to_string(), serde::Serialize::to_value(&tl)),
                    (
                        "explanation".to_string(),
                        serde::Serialize::to_value(&explanation),
                    ),
                ]));
            }
        }
    }

    let report = Value::Object(vec![
        ("coverage_gate".to_string(), Value::Num(COVERAGE_GATE)),
        ("runs".to_string(), Value::Array(runs)),
    ]);
    (report, table, worst_coverage)
}

/// Gate 4: the binding-resource demonstration. The optimizer picks a
/// large CP heap for iterative CG on M data (Figure 1); capping the
/// cluster's container-allocation ceiling below that choice must move
/// the optimum — i.e. CP memory was binding.
fn binding_resource_demo() -> Value {
    let wl = Workload::new(
        reml_scripts::linreg_cg(),
        DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        },
    );
    let opt = wl.optimize();
    let chosen = opt.best.cp_heap_mb;

    let mut capped = wl.cluster.clone();
    capped.max_alloc_mb = capped.container_mb_for_heap(chosen) - 512;
    let capped_opt = {
        use reml_cost::CostModel;
        use reml_optimizer::ResourceOptimizer;
        let optimizer = ResourceOptimizer::new(CostModel::new(capped.clone()));
        let mut base = wl.base.clone();
        base.cluster = capped.clone();
        optimizer
            .optimize(&wl.analyzed, &base, None)
            .expect("capped optimization succeeds")
    };
    assert!(
        capped_opt.best.cp_heap_mb < chosen,
        "binding-resource gate failed: capped optimum {} MB did not fall below chosen {} MB",
        capped_opt.best.cp_heap_mb,
        chosen
    );
    println!(
        "binding-resource gate OK: LinregCG M chose {} MB CP heap; capping the allocation \
         ceiling moved the optimum to {} MB (Δcost {:+.1}s)",
        chosen,
        capped_opt.best.cp_heap_mb,
        capped_opt.best_cost_s - opt.best_cost_s
    );
    Value::Object(vec![
        ("script".to_string(), Value::Str("LinregCG".to_string())),
        ("chosen_cp_heap_mb".to_string(), Value::Num(chosen as f64)),
        (
            "capped_max_alloc_mb".to_string(),
            Value::Num(capped.max_alloc_mb as f64),
        ),
        (
            "capped_cp_heap_mb".to_string(),
            Value::Num(capped_opt.best.cp_heap_mb as f64),
        ),
        (
            "cost_delta_s".to_string(),
            Value::Num(capped_opt.best_cost_s - opt.best_cost_s),
        ),
    ])
}

/// Chrome-trace artifact: the Gantt lanes of a representative faulted
/// run (LinregDS M canonical at the optimizer's choice).
fn representative_trace() -> String {
    let wl = Workload::new(
        reml_scripts::linreg_ds(),
        DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        },
    );
    let opt = wl.optimize();
    let outcome = wl.measure_faulted(
        opt.best.clone(),
        false,
        SimFacts::default(),
        FaultPlan::canonical(),
    );
    let tl = build_timeline(&outcome.causal, &wl.cluster, outcome.elapsed_s);
    reml_trace::to_chrome_trace(&timeline_records(&tl))
}

fn main() {
    println!("building insight report (5 scripts × XS/S/M × benign/canonical)...");
    let (report_a, table, worst_coverage) = build_report();
    let json_a = {
        let mut s = serde_json::to_string_pretty(&report_a).expect("serializes");
        s.push('\n');
        s
    };

    // Gate 2: a second in-process sweep must reproduce the bytes — the
    // report may depend only on (seed, config), never on wall time.
    let (report_b, _, _) = build_report();
    let json_b = {
        let mut s = serde_json::to_string_pretty(&report_b).expect("serializes");
        s.push('\n');
        s
    };
    assert!(
        json_a == json_b,
        "determinism gate failed: two in-process sweeps produced different reports"
    );
    println!(
        "determinism gate OK: double-build byte-identical ({} bytes)",
        json_a.len()
    );

    let binding = binding_resource_demo();

    table.print();
    println!(
        "coverage gate OK: worst-case attribution coverage {:.2}% (gate ≥ {:.0}%)",
        100.0 * worst_coverage,
        100.0 * COVERAGE_GATE
    );

    // Final artifact: the gated report plus the binding demo appendix.
    let full = Value::Object(vec![
        ("coverage_gate".to_string(), Value::Num(COVERAGE_GATE)),
        ("worst_coverage".to_string(), Value::Num(worst_coverage)),
        ("binding_resource_demo".to_string(), binding),
        ("report".to_string(), report_a),
        ("table".to_string(), serde::Serialize::to_value(&table)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut f = std::fs::File::create(dir.join("insight_report.json")).expect("report file");
    let mut json = serde_json::to_string_pretty(&full).expect("serializes");
    json.push('\n');
    f.write_all(json.as_bytes()).expect("writes report");
    let mut f = std::fs::File::create(dir.join("insight_timeline_trace.json")).expect("trace file");
    f.write_all(representative_trace().as_bytes())
        .expect("writes trace");
    println!("wrote results/insight_report.json and results/insight_timeline_trace.json");
}

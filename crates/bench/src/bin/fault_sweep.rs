//! Fault sweep: the five paper scripts under escalating fault schedules
//! (Figure 15-style robustness view of the §4 runtime adaptation layer).
//!
//! Each script runs at M scale with adaptation enabled, pinned to the
//! 512 MB YARN minimum at entry so recompilations and MR jobs give the
//! fault triggers something to hit, under three schedules:
//!
//! * `none`      — the clean baseline,
//! * `light`     — a lossy cluster: 10% container preemption + one
//!   1.5× straggler,
//! * `canonical` — one of every fault kind, including an AM kill that
//!   exercises the §4 recovery decision and a task OOM that forces
//!   recompilation to MR plans at actual sizes.
//!
//! Reported per script: elapsed time under each schedule, the rework
//! seconds directly attributable to faults, and recovery/retry counts
//! under the canonical schedule.

use reml_bench::{ExperimentResult, Workload};
use reml_optimizer::ResourceConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::{FaultPlan, SimFacts};

fn main() {
    let mut result = ExperimentResult::new(
        "fault_sweep",
        "Paper scripts (M, dense1000) under none/light/canonical fault schedules",
    );
    for script in reml_scripts::all_scripts() {
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        };
        let label = script.name.to_string();
        let wl = Workload::new(script, shape);
        let facts = SimFacts {
            table_cols: 5,
            ..SimFacts::default()
        };
        let entry = ResourceConfig::uniform(512, 512);
        let mut values = Vec::new();
        let mut canonical = None;
        for (plan_name, plan) in [
            ("none", FaultPlan::none()),
            ("light", FaultPlan::light()),
            ("canonical", FaultPlan::canonical()),
        ] {
            let out = wl.measure_faulted(entry.clone(), true, facts.clone(), plan);
            values.push((format!("{plan_name}[s]"), out.elapsed_s));
            if plan_name == "canonical" {
                canonical = Some(out);
            }
        }
        let canonical = canonical.expect("canonical schedule ran");
        values.push(("rework[s]".to_string(), canonical.fault_rework_s));
        values.push(("faults".to_string(), canonical.faults_injected as f64));
        values.push(("recoveries".to_string(), canonical.recoveries as f64));
        values.push(("retries".to_string(), canonical.task_retries as f64));
        result.push_row(label, values);
    }
    result.notes = "Every run replays deterministically from (seed, FaultPlan); the \
                    golden traces for the canonical schedule live in tests/golden/. \
                    Rework seconds cover re-executed task work, AM restart latency, \
                    and OOM-wasted CP attempts; they are a lower bound on the \
                    elapsed-time gap because faults also shift the optimizer's \
                    post-recovery choices."
        .to_string();
    result.print();
    result.save();
}

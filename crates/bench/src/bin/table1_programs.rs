//! Table 1: ML program characteristics — #lines, #blocks, unknown
//! dimensions during initial compilation, iterativeness.

use reml_bench::ExperimentResult;
use reml_compiler::pipeline::analyze_program;

fn main() {
    let mut result = ExperimentResult::new("table1", "ML program characteristics");
    for script in reml_scripts::all_scripts() {
        let analyzed = analyze_program(&script.source).expect("analyzes");
        result.push_row(
            script.name,
            vec![
                ("#Lines".to_string(), script.num_lines() as f64),
                ("#Blocks".to_string(), analyzed.num_blocks() as f64),
                (
                    "Unknowns(?)".to_string(),
                    if script.has_unknowns { 1.0 } else { 0.0 },
                ),
                (
                    "Iterative".to_string(),
                    if script.iterative { 1.0 } else { 0.0 },
                ),
            ],
        );
    }
    result.notes = "Paper (full scripts): LinregDS 209/22, LinregCG 273/31, L2SVM 119/20, \
                    MLogreg 351/54 (?), GLM 1149/377 (?). Our faithful reductions preserve \
                    the ordering and the unknown flags."
        .to_string();
    result.print();
    result.save();
}

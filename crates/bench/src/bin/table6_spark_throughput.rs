//! Table 6 (Appendix D): throughput — SystemML-on-MR with the resource
//! optimizer vs Spark (full plan) at 1/8/32 users, L2SVM scenario S.

use reml_bench::{ExperimentResult, Workload};
use reml_cluster::SparkConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::{simulate_spark_iterative, simulate_throughput, SimFacts, SparkPlan};

fn main() {
    let shape = DataShape {
        scenario: Scenario::S,
        cols: 1000,
        sparsity: 1.0,
    };
    let wl = Workload::new(reml_scripts::l2svm(), shape);
    let mut result = ExperimentResult::new(
        "table6",
        "L2SVM S dense1000: throughput [app/min], SysML+Opt vs Spark-Full",
    );

    // SystemML path.
    let opt = wl.optimize();
    let sysml_duration = wl
        .measure(opt.best.clone(), false, SimFacts::default())
        .elapsed_s;
    let sysml_slots = wl.cluster.max_parallel_apps(opt.best.cp_heap_mb);

    // Spark path: full plan, reduced 512 MB driver (the paper's setting),
    // but executors still occupy the whole cluster -> 1 app at a time.
    let mut spark = SparkConfig::paper_config();
    spark.driver_mem_mb = 512;
    let data_mb = shape.x_characteristics().estimated_size_bytes().unwrap() / (1024 * 1024);
    let spark_duration = simulate_spark_iterative(&wl.cluster, &spark, SparkPlan::Full, data_mb, 5);
    let spark_slots = spark.max_parallel_apps(&wl.cluster);

    println!(
        "SysML+Opt: {:.0} s/app, {} slots | Spark-Full: {:.0} s/app, {} slots",
        sysml_duration, sysml_slots, spark_duration, spark_slots
    );

    for users in [1u32, 8, 32] {
        let sysml = simulate_throughput(sysml_duration, sysml_slots, users, 8, 0.5);
        let spark_t = simulate_throughput(spark_duration, spark_slots, users, 8, 0.5);
        result.push_row(
            format!("{users} users"),
            vec![
                ("SysML+Opt".to_string(), sysml.throughput_apps_per_min),
                ("Spark-Full".to_string(), spark_t.throughput_apps_per_min),
                (
                    "ratio".to_string(),
                    sysml.throughput_apps_per_min / spark_t.throughput_apps_per_min,
                ),
                ("SysML_p50[s]".to_string(), sysml.latency_p50_s),
                ("SysML_p95[s]".to_string(), sysml.latency_p95_s),
                ("SysML_p99[s]".to_string(), sysml.latency_p99_s),
                ("SysML_qwait[s]".to_string(), sysml.queue_wait_mean_s),
                ("Spark_p99[s]".to_string(), spark_t.latency_p99_s),
                ("Spark_qwait[s]".to_string(), spark_t.queue_wait_mean_s),
            ],
        );
    }
    result.notes = "Paper: 5.1 vs 0.48 app/min at 1 user; 69.8 vs 0.83 at 32 users (13.7x \
                    scaling for SystemML, ~flat for Spark whose single app occupies the \
                    cluster)."
        .to_string();
    result.print();
    result.save();
}

//! Figure 13: number of generated grid points per generator (Equi, Exp,
//! Mem, Hybrid) for Linreg DS dense1000 across scenarios, at base grids
//! m=15 and m=45.

use reml_bench::{ExperimentResult, Workload};
use reml_compiler::pipeline::compile;
use reml_compiler::MrHeapAssignment;
use reml_optimizer::GridStrategy;
use reml_scripts::{DataShape, Scenario};

fn main() {
    for (id, m) in [("fig13a", 15usize), ("fig13b", 45usize)] {
        let mut result = ExperimentResult::new(
            id,
            &format!("# grid points, Linreg DS dense1000, base grid m={m}"),
        );
        for scenario in Scenario::ALL {
            let shape = DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            };
            let wl = Workload::new(reml_scripts::linreg_ds(), shape);
            let (min_heap, max_heap) = (wl.cluster.min_heap_mb(), wl.cluster.max_heap_mb());
            // Memory estimates from a minimal-resource compile (the
            // optimizer's probe step).
            let mut cfg = wl.base.clone();
            cfg.cp_heap_mb = min_heap;
            cfg.mr_heap = MrHeapAssignment::uniform(min_heap);
            let compiled = compile(&wl.analyzed, &cfg).expect("compiles");
            let ests: Vec<f64> = compiled
                .summaries
                .iter()
                .flat_map(|s| s.mem_estimates_mb.iter().copied())
                .collect();
            let count =
                |strategy: GridStrategy| strategy.generate(min_heap, max_heap, &ests).len() as f64;
            result.push_row(
                scenario.name(),
                vec![
                    ("Equi".to_string(), count(GridStrategy::Equi { points: m })),
                    ("Exp".to_string(), count(GridStrategy::Exp { factor: 2.0 })),
                    (
                        "Mem".to_string(),
                        count(GridStrategy::MemBased { base_points: m }),
                    ),
                    (
                        "Hybrid".to_string(),
                        count(GridStrategy::Hybrid { base_points: m }),
                    ),
                ],
            );
        }
        result.notes = "Paper: Equi constant (m), Exp ~8 points, Mem data-dependent (1 point \
                        for XS, ~5 at M, fewer again at XL when estimates truncate at max)."
            .to_string();
        result.print();
        result.save();
    }
}

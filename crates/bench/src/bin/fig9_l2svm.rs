//! Figure 9: L2SVM end-to-end baseline comparison, scenarios XS–L.

use reml_sim::SimFacts;

fn main() {
    reml_bench::run_baseline_family("fig9", reml_scripts::l2svm, false, SimFacts::default());
    println!(
        "Paper shape: iterative nested-loop program; large CP wins through M, \
         mixed CP/MR on L; Opt tracks the best baseline."
    );
}

//! Figure 1: estimated runtime of Linreg DS and Linreg CG over a grid of
//! CP × MR memory configurations (X = 8 GB dense, 1,000 features).
//!
//! The reproduction target is the qualitative shape: DS (compute-bound)
//! is best with small CP memory and distributed plans; CG (IO-bound,
//! iterative) flips to fast in-memory execution once the CP budget holds
//! X, independent of MR memory.

use reml_bench::{ExperimentResult, Workload};
use reml_compiler::pipeline::compile;
use reml_compiler::MrHeapAssignment;
use reml_cost::CostModel;
use reml_scripts::{DataShape, Scenario};

fn main() {
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    };
    let cp_grid_gb = [1u64, 2, 5, 10, 15, 20];
    let mr_grid_gb = [1u64, 2, 5, 10, 15, 20];

    for (id, script) in [
        ("fig1_ds", reml_scripts::linreg_ds()),
        ("fig1_cg", reml_scripts::linreg_cg()),
    ] {
        let wl = Workload::new(script, shape);
        let model = CostModel::new(wl.cluster.clone());
        let mut result = ExperimentResult::new(
            id,
            &format!("{} estimated runtime [s], CP x MR memory", wl.script.name),
        );
        for &cp_gb in &cp_grid_gb {
            let mut values = Vec::new();
            for &mr_gb in &mr_grid_gb {
                let mut cfg = wl.base.clone();
                cfg.cp_heap_mb = cp_gb * 1024;
                cfg.mr_heap = MrHeapAssignment::uniform(mr_gb * 1024);
                let compiled = compile(&wl.analyzed, &cfg).expect("compiles");
                let cost = model
                    .cost_program(&compiled.runtime, cp_gb * 1024, &|_| mr_gb * 1024)
                    .total_s();
                values.push((format!("MR{mr_gb}G"), cost));
            }
            result.push_row(format!("CP{cp_gb}G"), values);
        }
        result.notes = match id {
            "fig1_ds" => "Paper: DS prefers small CP (distributed plans), ~100 s best vs \
                          ~500 s with large CP forcing single-node compute."
                .to_string(),
            _ => "Paper: CG prefers CP >= ~10 GB (read X once, iterate in memory), \
                  ~140 s best vs ~240 s with small CP."
                .to_string(),
        };
        result.print();
        result.save();
    }
}

//! Ablations for the design choices DESIGN.md calls out:
//!
//! * grid generator choice — plan quality vs optimization overhead;
//! * pruning on/off — optimizer-time blow-up;
//! * always-migrate vs ΔC-amortized migration (via migration-cost
//!   sensitivity).

use reml_bench::{ExperimentResult, Workload};
use reml_cost::CostModel;
use reml_optimizer::{GridStrategy, ResourceOptimizer};
use reml_scripts::{DataShape, Scenario};

fn main() {
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    };

    // --- Grid strategy ablation on Linreg CG (memory-sensitive). ---
    let wl = Workload::new(reml_scripts::linreg_cg(), shape);
    let mut result = ExperimentResult::new(
        "ablation_grids",
        "LinregCG M dense1000: grid strategy vs plan quality and overhead",
    );
    for (label, cp, mr) in [
        (
            "Equi15",
            GridStrategy::Equi { points: 15 },
            GridStrategy::Equi { points: 15 },
        ),
        (
            "Equi45",
            GridStrategy::Equi { points: 45 },
            GridStrategy::Equi { points: 45 },
        ),
        (
            "Exp",
            GridStrategy::Exp { factor: 2.0 },
            GridStrategy::Exp { factor: 2.0 },
        ),
        (
            "Mem15",
            GridStrategy::MemBased { base_points: 15 },
            GridStrategy::MemBased { base_points: 15 },
        ),
        (
            "Hybrid15",
            GridStrategy::Hybrid { base_points: 15 },
            GridStrategy::Hybrid { base_points: 15 },
        ),
    ] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.cp_grid = cp;
        optimizer.config.mr_grid = mr;
        let r = wl.optimize_with(&optimizer);
        result.push_row(
            label,
            vec![
                ("est_cost[s]".to_string(), r.best_cost_s),
                ("cp_points".to_string(), r.stats.cp_points as f64),
                (
                    "opt_time[ms]".to_string(),
                    r.stats.opt_time.as_secs_f64() * 1000.0,
                ),
                (
                    "chosenCP[GB]".to_string(),
                    r.best.cp_heap_mb as f64 / 1024.0,
                ),
            ],
        );
    }
    result.notes = "Hybrid should match the best plan quality at a fraction of Equi45's \
                    enumeration cost."
        .to_string();
    result.print();
    result.save();

    // --- Pruning ablation on GLM (many blocks). ---
    let wl = Workload::new(reml_scripts::glm(), shape);
    let mut result = ExperimentResult::new("ablation_pruning", "GLM M dense1000: pruning on/off");
    for (label, small, unknown) in [
        ("prune both", true, true),
        ("no small-prune", false, true),
        ("no unknown-prune", true, false),
        ("no pruning", false, false),
    ] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.prune_small = small;
        optimizer.config.prune_unknown = unknown;
        let r = wl.optimize_with(&optimizer);
        result.push_row(
            label,
            vec![
                ("remaining".to_string(), r.stats.blocks_remaining as f64),
                ("#Comp".to_string(), r.stats.block_compilations as f64),
                ("#Cost".to_string(), r.stats.cost_invocations as f64),
                (
                    "opt_time[ms]".to_string(),
                    r.stats.opt_time.as_secs_f64() * 1000.0,
                ),
            ],
        );
    }
    result.notes = "Both rules matter: small-op pruning removes known-CP blocks; unknown \
                    pruning removes GLM/MLogreg's constant offset of unknown blocks."
        .to_string();
    result.print();
    result.save();

    // --- Memoization sanity: cost invocations scale linearly in blocks. ---
    let mut result = ExperimentResult::new(
        "ablation_linear",
        "optimizer work scales with program size (dense1000 M)",
    );
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ] {
        let wl = Workload::new(ctor(), shape);
        let r = wl.optimize();
        result.push_row(
            wl.script.name,
            vec![
                ("blocks".to_string(), wl.analyzed.num_blocks() as f64),
                ("#Comp".to_string(), r.stats.block_compilations as f64),
                ("#Cost".to_string(), r.stats.cost_invocations as f64),
            ],
        );
    }
    result.notes = "The semi-independent-problems property keeps optimizer work linear in \
                    the number of (unpruned) blocks."
        .to_string();
    result.print();
    result.save();
}

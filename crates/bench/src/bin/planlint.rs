//! Plan-lint gate: statically verify every plan the resource grid can
//! produce for the five paper scripts across the XS/S/M/L scenarios —
//! the compiled plan (PL001–PL025), its rewrite audit log (PL050–PL057
//! translation validation of every applied rewrite, fold, CSE merge,
//! and branch removal), and its lowered bytecode
//! (PL040–PL047, fused and unfused) — then run the differential memory
//! soundness audit (executor actual footprint vs. `memest` prediction)
//! and write `results/planlint_audit.json`. Exits non-zero on any
//! diagnostic so CI can gate on it.

use std::io::Write;

use reml_bench::{results_dir, Workload};
use reml_compiler::pipeline::compile;
use reml_compiler::MrHeapAssignment;
use reml_optimizer::GridStrategy;
use reml_planlint::{lint_compiled, lint_vm};
use reml_runtime::vm::VmLowerOptions;
use reml_scripts::data::LabelKind;
use reml_scripts::{DataShape, Scenario, ScriptSpec};
use reml_sim::{memory_soundness_audit, MemoryAuditReport};

#[derive(Debug, serde::Serialize)]
struct LintGridRow {
    script: String,
    scenario: String,
    cp_grid_points: u64,
    plans_linted: u64,
    diagnostics: u64,
    rewrites_validated: u64,
    folds_validated: u64,
    cse_hits_validated: u64,
    branches_validated: u64,
    rewrite_diagnostics: u64,
    vm_programs_linted: u64,
    vm_instructions: u64,
    vm_diagnostics: u64,
}

#[derive(Debug, serde::Serialize)]
struct PlanlintAudit {
    plans_linted: u64,
    diagnostics: u64,
    rewrites_validated: u64,
    folds_validated: u64,
    cse_hits_validated: u64,
    branches_validated: u64,
    rewrite_diagnostics: u64,
    vm_programs_linted: u64,
    vm_instructions: u64,
    vm_diagnostics: u64,
    lint_grid: Vec<LintGridRow>,
    memory_audit: Vec<MemoryAuditReport>,
}

fn scripts() -> Vec<fn() -> ScriptSpec> {
    vec![
        reml_scripts::linreg_ds,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ]
}

fn main() {
    // Any lowering anywhere in this process (including recompiled
    // fragments inside the audit executions below) panics on a bytecode
    // violation, on top of the explicit per-plan lint in the grid loop.
    reml_planlint::install_vm_verifier();

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut plans_total = 0u64;
    let mut diags_total = 0u64;
    let mut vm_programs_total = 0u64;
    let mut vm_instrs_total = 0u64;
    let mut vm_diags_total = 0u64;
    let mut rewrites_total = 0u64;
    let mut folds_total = 0u64;
    let mut cse_total = 0u64;
    let mut branches_total = 0u64;
    let mut rw_diags_total = 0u64;

    for make in scripts() {
        for scenario in [Scenario::XS, Scenario::S, Scenario::M, Scenario::L] {
            let shape = DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            };
            let wl = Workload::new(make(), shape);
            let (min_heap, max_heap) = (wl.cluster.min_heap_mb(), wl.cluster.max_heap_mb());

            // Memory estimates from the minimal-resource probe compile
            // seed the same hybrid grid the optimizer enumerates.
            let mut probe_cfg = wl.base.clone();
            probe_cfg.cp_heap_mb = min_heap;
            probe_cfg.mr_heap = MrHeapAssignment::uniform(min_heap);
            let probe = compile(&wl.analyzed, &probe_cfg).expect("probe compiles");
            let ests: Vec<f64> = probe
                .summaries
                .iter()
                .flat_map(|s| s.mem_estimates_mb.iter().copied())
                .collect();
            let cp_grid = GridStrategy::default_hybrid().generate(min_heap, max_heap, &ests);
            // MR heaps: smallest tasks and the largest that keep all
            // cores busy (the §5.1 baseline extremes).
            let mr_grid = [min_heap, (4.4 * 1024.0) as u64];

            let mut plans = 0u64;
            let mut diags = 0u64;
            let mut vm_programs = 0u64;
            let mut vm_instrs = 0u64;
            let mut vm_diags = 0u64;
            let mut rewrites = 0u64;
            let mut folds = 0u64;
            let mut cse_hits = 0u64;
            let mut branches = 0u64;
            let mut rw_diags = 0u64;
            for &cp in &cp_grid {
                for &mr in &mr_grid {
                    let mut cfg = wl.base.clone();
                    cfg.cp_heap_mb = cp;
                    cfg.mr_heap = MrHeapAssignment::uniform(mr);
                    let compiled = compile(&wl.analyzed, &cfg).expect("grid point compiles");
                    let report = lint_compiled(&wl.analyzed, &compiled, &cfg);
                    plans += 1;
                    // Every audited claim in this plan went through the
                    // PL050 validators inside `lint_compiled`.
                    let audit = &compiled.rewrite_audit;
                    rewrites += audit.num_rewrites();
                    folds += audit
                        .blocks
                        .values()
                        .map(|b| b.folds.len() as u64)
                        .sum::<u64>();
                    cse_hits += audit
                        .blocks
                        .values()
                        .map(|b| b.cse.len() as u64)
                        .sum::<u64>();
                    branches += audit.branches.len() as u64;
                    rw_diags += report
                        .diagnostics
                        .iter()
                        .filter(|d| ("PL050".."PL058").contains(&d.rule))
                        .count() as u64;
                    if !report.is_empty() {
                        diags += report.len() as u64;
                        failures.push(format!(
                            "{} {} (cp={cp} MB, mr={mr} MB):\n{}",
                            wl.script.name,
                            scenario.name(),
                            report.render()
                        ));
                    }
                    // Lint the lowered bytecode of the same plan, fused
                    // and unfused, against the source runtime tree.
                    for fuse in [false, true] {
                        let vm = compiled.runtime.lower_vm(VmLowerOptions { fuse });
                        let vm_report = lint_vm(&compiled.runtime, &vm);
                        vm_programs += 1;
                        vm_instrs += vm.stats.instructions as u64;
                        if !vm_report.is_empty() {
                            vm_diags += vm_report.len() as u64;
                            failures.push(format!(
                                "{} {} (cp={cp} MB, mr={mr} MB, fuse={fuse}) bytecode:\n{}",
                                wl.script.name,
                                scenario.name(),
                                vm_report.render()
                            ));
                        }
                    }
                }
            }
            plans_total += plans;
            diags_total += diags;
            vm_programs_total += vm_programs;
            vm_instrs_total += vm_instrs;
            vm_diags_total += vm_diags;
            rewrites_total += rewrites;
            folds_total += folds;
            cse_total += cse_hits;
            branches_total += branches;
            rw_diags_total += rw_diags;
            println!(
                "planlint {:<10} {:<3} {:>3} plans  {:>2} diagnostics  {:>4} rewrites/{:>4} folds/{:>4} cse/{:>3} branches validated ({:>2} rw diags)  {:>3} vm programs ({:>5} instrs)  {:>2} vm diagnostics",
                wl.script.name,
                scenario.name(),
                plans,
                diags,
                rewrites,
                folds,
                cse_hits,
                branches,
                rw_diags,
                vm_programs,
                vm_instrs,
                vm_diags
            );
            rows.push(LintGridRow {
                script: wl.script.name.to_string(),
                scenario: scenario.name().to_string(),
                cp_grid_points: cp_grid.len() as u64,
                plans_linted: plans,
                diagnostics: diags,
                rewrites_validated: rewrites,
                folds_validated: folds,
                cse_hits_validated: cse_hits,
                branches_validated: branches,
                rewrite_diagnostics: rw_diags,
                vm_programs_linted: vm_programs,
                vm_instructions: vm_instrs,
                vm_diagnostics: vm_diags,
            });
        }
    }

    // Differential memory-soundness audit on real executions (e2e-scale
    // datasets; the executor computes actual values and footprints).
    println!();
    let audits = vec![
        memory_soundness_audit(
            &reml_scripts::linreg_ds(),
            1500,
            12,
            LabelKind::Regression,
            &[],
        ),
        memory_soundness_audit(
            &reml_scripts::linreg_cg(),
            1200,
            10,
            LabelKind::Regression,
            &[("maxiter", 15.0)],
        ),
        memory_soundness_audit(&reml_scripts::l2svm(), 800, 8, LabelKind::BinaryPm1, &[]),
        memory_soundness_audit(&reml_scripts::mlogreg(), 600, 6, LabelKind::Classes(4), &[]),
        memory_soundness_audit(&reml_scripts::glm(), 500, 5, LabelKind::Counts, &[]),
    ];
    for a in &audits {
        println!(
            "audit {:<10} {:>5} observations  {:>2} unsound  ({} opcodes)",
            a.script,
            a.observations,
            a.unsound_total,
            a.per_opcode.len()
        );
    }

    let out = PlanlintAudit {
        plans_linted: plans_total,
        diagnostics: diags_total,
        rewrites_validated: rewrites_total,
        folds_validated: folds_total,
        cse_hits_validated: cse_total,
        branches_validated: branches_total,
        rewrite_diagnostics: rw_diags_total,
        vm_programs_linted: vm_programs_total,
        vm_instructions: vm_instrs_total,
        vm_diagnostics: vm_diags_total,
        lint_grid: rows,
        memory_audit: audits,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("planlint_audit.json");
    let mut f = std::fs::File::create(&path).expect("result file");
    f.write_all(
        serde_json::to_string_pretty(&out)
            .expect("serializes")
            .as_bytes(),
    )
    .expect("writes");
    println!("\nwrote {}", path.display());

    if !failures.is_empty() {
        eprintln!(
            "\nplanlint FAILED with {} diagnostics:",
            diags_total + vm_diags_total
        );
        for f in &failures {
            eprintln!("{f}");
        }
        std::process::exit(1);
    }
    println!(
        "planlint: {plans_total} plans clean, {rewrites_total} rewrites / {folds_total} folds / \
         {cse_total} CSE merges / {branches_total} branch removals validated, \
         {vm_programs_total} bytecode programs clean ({vm_instrs_total} instructions)"
    );
}

//! Ablation: cluster-utilization-aware what-if analysis (§6 extension).
//!
//! Sweeps the fraction of MR slots available to the application and
//! reports (a) the CP configuration the optimizer chooses and (b) the
//! measured time with and without utilization-aware adaptation. As the
//! cluster fills up, distributed plans lose their parallelism and the
//! optimizer falls back toward single-node in-memory plans.

use reml_bench::{ExperimentResult, Workload};
use reml_cost::CostModel;
use reml_optimizer::{ResourceConfig, ResourceOptimizer};
use reml_scripts::{DataShape, Scenario};
use reml_sim::{FaultPlan, SimConfig, SimFacts, Simulator};

fn main() {
    let shape = DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    };
    let wl = Workload::new(reml_scripts::linreg_ds(), shape);
    let mut result = ExperimentResult::new(
        "ablation_utilization",
        "LinregDS M dense1000: optimizer choice vs cluster load",
    );
    let sim = Simulator::new(wl.cluster.clone());
    for avail_pct in [100u32, 50, 25, 10, 5, 2, 1] {
        let availability = avail_pct as f64 / 100.0;
        let optimizer = ResourceOptimizer::new(CostModel::with_slot_availability(
            wl.cluster.clone(),
            availability,
        ));
        let opt = wl.optimize_with(&optimizer);
        let outcome = sim
            .run_app(
                &wl.analyzed,
                &wl.base,
                &SimConfig {
                    resources: opt.best.clone(),
                    reopt: false,
                    facts: SimFacts::default(),
                    slot_availability: availability,
                    faults: FaultPlan::none(),
                },
            )
            .expect("simulates");
        // Contrast: the idle-cluster choice executed under the same load.
        let idle_choice = wl.optimize();
        let naive = sim
            .run_app(
                &wl.analyzed,
                &wl.base,
                &SimConfig {
                    resources: ResourceConfig {
                        cp_heap_mb: idle_choice.best.cp_heap_mb,
                        mr_heap: idle_choice.best.mr_heap.clone(),
                    },
                    reopt: false,
                    facts: SimFacts::default(),
                    slot_availability: availability,
                    faults: FaultPlan::none(),
                },
            )
            .expect("simulates");
        result.push_row(
            format!("{avail_pct}% slots free"),
            vec![
                (
                    "chosenCP[GB]".to_string(),
                    opt.best.cp_heap_mb as f64 / 1024.0,
                ),
                ("aware[s]".to_string(), outcome.elapsed_s),
                ("unaware[s]".to_string(), naive.elapsed_s),
            ],
        );
    }
    result.notes = "As slots disappear, the load-aware optimizer shifts from distributed \
                    plans to single-node CP plans; the load-unaware choice degrades with \
                    the shrinking parallelism (§6, 'fallback to single node in-memory \
                    computation might be beneficial')."
        .to_string();
    result.print();
    result.save();
}

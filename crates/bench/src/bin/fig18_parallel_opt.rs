//! Figure 18 (Appendix C): parallel resource optimization on GLM,
//! dense1000 — (a) optimization time vs worker threads at scenario L,
//! (b) serial vs parallel across scenarios with the Hybrid grid.

use reml_bench::{ExperimentResult, Workload};
use reml_cost::CostModel;
use reml_optimizer::{GridStrategy, ResourceOptimizer};
use reml_scripts::{DataShape, Scenario};

fn main() {
    // (a) Thread sweep at scenario L with a denser Equi grid (m=45),
    // where parallelism has the most to chew on.
    let shape = DataShape {
        scenario: Scenario::L,
        cols: 1000,
        sparsity: 1.0,
    };
    let wl = Workload::new(reml_scripts::glm(), shape);
    let mut result = ExperimentResult::new(
        "fig18a",
        "GLM dense1000 L: optimization time [s] vs worker threads (Equi m=45)",
    );
    let mut serial_time = 0.0;
    for threads in [1usize, 2, 4, 8, 16] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.cp_grid = GridStrategy::Equi { points: 45 };
        optimizer.config.mr_grid = GridStrategy::Equi { points: 45 };
        optimizer.config.workers = threads;
        let r = wl.optimize_with(&optimizer);
        let t = r.stats.opt_time.as_secs_f64();
        if threads == 1 {
            serial_time = t;
        }
        let requests = r.stats.plan_cache_hits + r.stats.plan_cache_misses;
        result.push_row(
            format!("{threads} threads"),
            vec![
                ("time[s]".to_string(), t),
                ("speedup".to_string(), serial_time / t.max(1e-9)),
                ("#CacheHit".to_string(), r.stats.plan_cache_hits as f64),
                (
                    "hit%".to_string(),
                    100.0 * r.stats.plan_cache_hits as f64 / requests.max(1) as f64,
                ),
            ],
        );
    }
    result.notes =
        "Paper: 4.9x at 16 threads, with a pipelining gain already at 1 worker.".to_string();
    result.print();
    result.save();

    // (b) Serial vs parallel across scenarios with the default Hybrid.
    let mut result_b = ExperimentResult::new(
        "fig18b",
        "GLM dense1000: serial vs parallel (Hybrid m=15) across scenarios [s]",
    );
    for scenario in [Scenario::XS, Scenario::S, Scenario::M, Scenario::L] {
        let shape = DataShape {
            scenario,
            cols: 1000,
            sparsity: 1.0,
        };
        let wl = Workload::new(reml_scripts::glm(), shape);
        let mut serial = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        serial.config.workers = 1;
        let mut parallel = serial.clone();
        parallel.config.workers = 8;
        let rs = wl.optimize_with(&serial);
        let rp = wl.optimize_with(&parallel);
        let (ts, tp) = (
            rs.stats.opt_time.as_secs_f64(),
            rp.stats.opt_time.as_secs_f64(),
        );
        result_b.push_row(
            scenario.name(),
            vec![
                ("serial[s]".to_string(), ts),
                ("parallel[s]".to_string(), tp),
                (
                    "#CompAvoided".to_string(),
                    rp.stats.compilations_avoided as f64,
                ),
            ],
        );
    }
    result_b.notes =
        "Paper: the benefit grows with the scenario (more points, fewer pruned blocks)."
            .to_string();
    result_b.print();
    result_b.save();
}

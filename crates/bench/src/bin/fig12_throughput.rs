//! Figure 12: end-to-end throughput, Opt vs B-LL, 1–128 users × 8 apps —
//! the over-provisioning experiment. Paper: 5.6x (Linreg DS, S,
//! dense1000) and 7.1x (L2SVM, M, sparse100) at saturation.

use reml_bench::{ExperimentResult, Workload};
use reml_optimizer::ResourceConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::{simulate_throughput, SimFacts};

fn main() {
    let cases = [
        (
            "fig12a",
            reml_scripts::linreg_ds(),
            DataShape {
                scenario: Scenario::S,
                cols: 1000,
                sparsity: 1.0,
            },
        ),
        (
            "fig12b",
            reml_scripts::l2svm(),
            DataShape {
                scenario: Scenario::M,
                cols: 100,
                sparsity: 0.01,
            },
        ),
    ];
    for (id, script, shape) in cases {
        let wl = Workload::new(script, shape);
        let mut result = ExperimentResult::new(
            id,
            &format!(
                "{} {} {}: throughput [app/min] vs #users",
                wl.script.name,
                shape.scenario.name(),
                shape.label()
            ),
        );
        let opt = wl.optimize();
        let bll = ResourceConfig::uniform(wl.cluster.max_heap_mb(), (4.4 * 1024.0) as u64);
        let opt_duration = wl
            .measure(opt.best.clone(), false, SimFacts::default())
            .elapsed_s;
        let bll_duration = wl
            .measure(bll.clone(), false, SimFacts::default())
            .elapsed_s;
        let opt_slots = wl.cluster.max_parallel_apps(opt.best.cp_heap_mb);
        let bll_slots = wl.cluster.max_parallel_apps(bll.cp_heap_mb);
        println!(
            "{}: Opt {} GB -> {} slots ({:.0} s/app); B-LL {} GB -> {} slots ({:.0} s/app)",
            id,
            opt.best.display_gb(),
            opt_slots,
            opt_duration,
            bll.display_gb(),
            bll_slots,
            bll_duration
        );
        let mut final_ratio = 0.0;
        for users in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let t_opt = simulate_throughput(opt_duration, opt_slots, users, 8, 0.5);
            let t_bll = simulate_throughput(bll_duration, bll_slots, users, 8, 0.5);
            final_ratio = t_opt.throughput_apps_per_min / t_bll.throughput_apps_per_min;
            result.push_row(
                format!("{users} users"),
                vec![
                    ("Opt".to_string(), t_opt.throughput_apps_per_min),
                    ("B-LL".to_string(), t_bll.throughput_apps_per_min),
                    ("speedup".to_string(), final_ratio),
                    ("Opt_p50[s]".to_string(), t_opt.latency_p50_s),
                    ("Opt_p95[s]".to_string(), t_opt.latency_p95_s),
                    ("Opt_p99[s]".to_string(), t_opt.latency_p99_s),
                    ("Opt_qwait[s]".to_string(), t_opt.queue_wait_mean_s),
                    ("BLL_p99[s]".to_string(), t_bll.latency_p99_s),
                    ("BLL_qwait[s]".to_string(), t_bll.queue_wait_mean_s),
                ],
            );
        }
        result.notes = format!(
            "Paper reports 5.6x (a) / 7.1x (b) at saturation; measured {final_ratio:.1}x at 128 users."
        );
        result.print();
        result.save();
    }
}

//! Figure 8: Linreg CG end-to-end baseline comparison, scenarios XS–L.

use reml_sim::SimFacts;

fn main() {
    reml_bench::run_baseline_family("fig8", reml_scripts::linreg_cg, false, SimFacts::default());
    println!(
        "Paper shape: larger CP memory wins on S/M (read X once, iterate in memory); \
         on L both CP and MR budgets matter; Opt finds near-optimal configurations."
    );
}

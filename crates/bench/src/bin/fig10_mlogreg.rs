//! Figure 10: MLogreg end-to-end baseline comparison, scenarios XS–L.
//!
//! MLogreg carries table()-induced unknowns: initial resource
//! optimization is handicapped on the dense M shapes (the paper's "Opt
//! was not able to find the right configuration here due to unknowns in
//! the core loops") — Figure 15 shows adaptation fixing this.

use reml_sim::SimFacts;

fn main() {
    let facts = SimFacts {
        table_cols: 5,
        ..SimFacts::default()
    };
    reml_bench::run_baseline_family("fig10", reml_scripts::mlogreg, false, facts);
    println!(
        "Paper shape: unknowns are the major problem on dense M; see fig15 for \
         the runtime-adaptation remedy."
    );
}

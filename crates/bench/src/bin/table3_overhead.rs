//! Table 3: optimization details on dense1000 — block recompilations,
//! cost-model invocations, optimization time, and relative overhead
//! against the measured execution time.

use reml_bench::{ExperimentResult, Workload};
use reml_scripts::{DataShape, Scenario};
use reml_sim::SimFacts;

fn main() {
    let mut result = ExperimentResult::new(
        "table3",
        "optimization overhead, dense1000 (Hybrid m=15, serial)",
    );
    for script_ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ] {
        // XL only for the non-iterative DS, matching the paper's table.
        let scenarios: &[Scenario] = if script_ctor().name == "LinregDS" {
            &[
                Scenario::XS,
                Scenario::S,
                Scenario::M,
                Scenario::L,
                Scenario::XL,
            ]
        } else {
            &[Scenario::XS, Scenario::S, Scenario::M, Scenario::L]
        };
        for &scenario in scenarios {
            let shape = DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            };
            let wl = Workload::new(script_ctor(), shape);
            let opt = wl.optimize();
            let exec_s = wl
                .measure(opt.best.clone(), false, SimFacts::default())
                .elapsed_s;
            let opt_s = opt.stats.opt_time.as_secs_f64();
            let requests = opt.stats.plan_cache_hits + opt.stats.plan_cache_misses;
            result.push_row(
                format!("{} {}", wl.script.name, scenario.name()),
                vec![
                    ("#Comp".to_string(), opt.stats.block_compilations as f64),
                    ("#Cost".to_string(), opt.stats.cost_invocations as f64),
                    ("OptTime[s]".to_string(), opt_s),
                    ("Enum[s]".to_string(), opt.stats.enumerate_s),
                    ("Cost[s]".to_string(), opt.stats.cost_s),
                    ("Prune[s]".to_string(), opt.stats.prune_s),
                    ("Cache[s]".to_string(), opt.stats.cache_s),
                    ("%overhead".to_string(), 100.0 * opt_s / (opt_s + exec_s)),
                    ("#CacheHit".to_string(), opt.stats.plan_cache_hits as f64),
                    ("#CacheMiss".to_string(), opt.stats.plan_cache_misses as f64),
                    (
                        "#CompAvoided".to_string(),
                        opt.stats.compilations_avoided as f64,
                    ),
                    (
                        "hit%".to_string(),
                        100.0 * opt.stats.plan_cache_hits as f64 / requests.max(1) as f64,
                    ),
                ],
            );
        }
    }
    result.notes = "Paper: 0.35 s (LinregDS XS) to 11.2 s (GLM M); relative overhead < 0.1–7 % \
                    except GLM XS (35 %). Shape target: overhead grows with program size and \
                    data size, but stays small relative to execution for M+. Enum/Cost/Prune/\
                    Cache split OptTime into enumeration, cost-model, unsound-prune, and \
                    plan-cache phases (worker CPU time when parallel)."
        .to_string();
    result.print();
    result.save();
}

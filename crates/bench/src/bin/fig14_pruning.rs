//! Figure 14: percentage of generic blocks remaining after pruning, all
//! five programs × scenarios XS–XL (dense, 1,000 columns).

use reml_bench::{ExperimentResult, Workload};
use reml_cost::CostModel;
use reml_optimizer::ResourceOptimizer;
use reml_scripts::{DataShape, Scenario};

fn main() {
    let mut result = ExperimentResult::new(
        "fig14",
        "% generic blocks remaining after pruning (dense1000)",
    );
    for script_ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ] {
        let mut values = Vec::new();
        let mut total_blocks = 0usize;
        for scenario in Scenario::ALL {
            let shape = DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            };
            let wl = Workload::new(script_ctor(), shape);
            let optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
            let r = optimizer
                .optimize(&wl.analyzed, &wl.base, None)
                .expect("optimizes");
            total_blocks = r.stats.blocks_total;
            let pct = if r.stats.blocks_total == 0 {
                0.0
            } else {
                100.0 * r.stats.blocks_remaining as f64 / r.stats.blocks_total as f64
            };
            values.push((scenario.name().to_string(), pct));
        }
        let script = script_ctor();
        result.push_row(format!("{} (|B|={})", script.name, total_blocks), values);
    }
    result.notes = "Paper: pruning removes 100% of blocks for XS everywhere; the unknown-block \
                    rule keeps MLogreg/GLM from a constant offset (14 and 64 blocks) at small \
                    scenarios."
        .to_string();
    result.print();
    result.save();
}

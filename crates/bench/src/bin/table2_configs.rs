//! Table 2: Opt-chosen resource configurations (CP / max-MR heap, GB)
//! for Linreg DS across scenarios and the four data shapes.

use reml_bench::{ExperimentResult, Workload};
use reml_scripts::{DataShape, Scenario};

fn main() {
    let mut result = ExperimentResult::new(
        "table2",
        "Opt resource configurations for Linreg DS [GB heap: CP, max MR]",
    );
    for scenario in Scenario::ALL {
        let mut values = Vec::new();
        for (cols, sparsity, label) in [
            (1000u64, 1.0f64, "d1000"),
            (1000, 0.01, "s1000"),
            (100, 1.0, "d100"),
            (100, 0.01, "s100"),
        ] {
            let shape = DataShape {
                scenario,
                cols,
                sparsity,
            };
            let wl = Workload::new(reml_scripts::linreg_ds(), shape);
            let opt = wl.optimize();
            values.push((format!("{label}-CP"), opt.best.cp_heap_mb as f64 / 1024.0));
            values.push((format!("{label}-MR"), opt.best.max_mr_mb() as f64 / 1024.0));
        }
        result.push_row(scenario.name(), values);
    }
    result.notes = "Paper (Table 2): XS–M choose 0.5–8 GB CP / 2 GB MR; L/XL may grow either \
                    dimension (e.g. 53.4/12.8 for dense100 XL) but never default to B-LL's \
                    53.3/4.4 over-provisioning."
        .to_string();
    result.print();
    result.save();
}

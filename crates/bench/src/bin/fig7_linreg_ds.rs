//! Figure 7: Linreg DS end-to-end baseline comparison, scenarios XS–XL,
//! all four data shapes (the only figure the paper extends to XL).

use reml_sim::SimFacts;

fn main() {
    reml_bench::run_baseline_family("fig7", reml_scripts::linreg_ds, true, SimFacts::default());
    println!(
        "Paper shape: on M dense1000 small-CP configurations are ~4x faster than \
         single-node compute; on sparse shapes in-memory plans win; Opt tracks the \
         best baseline everywhere and beats B-LL on L/XL via right-sized tasks."
    );
}

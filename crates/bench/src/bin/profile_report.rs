//! Profile report: flight-recorder profiling of the five paper scripts.
//!
//! Default mode runs analyze → optimize → simulate → execute for each
//! script under a wall-clock `reml_trace` recorder and emits
//!
//! 1. a per-phase time-attribution table (self time per span name — the
//!    Table 3 analogue generalized to the whole stack), gated on
//!    coverage: ≥ 95% of measured wall time must be explained by named
//!    sub-phases rather than unattributed root-span self time;
//! 2. a per-opcode CP instruction timing table from the `vm.op.*`
//!    histograms (populated by the real executor pass, which runs on
//!    the bytecode VM);
//! 3. `results/profile_report.json` — phases + full metric registry —
//!    and `results/profile_trace.json` — Chrome `trace_event` format,
//!    loadable in chrome://tracing or Perfetto.
//!
//! `profile_report overhead` instead runs the tracing-overhead gate: a
//! fig7-style workload measured with no recorder installed (the
//! instrumentation's disabled fast path: one relaxed atomic load per
//! site) vs. with a sampled always-on recorder. The gate asserts the
//! disabled path stays within 3% (+ a fixed epsilon for timer noise) of
//! the baseline established in the same process, interleaving the two
//! configurations and comparing min-of-N to shed scheduler noise.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use reml_bench::{results_dir, ExperimentResult, Workload};
use reml_scripts::data::LabelKind;
use reml_scripts::{DataShape, Scenario, ScriptSpec};
use reml_sim::{memory_soundness_audit, SimFacts};
use reml_trace::Recorder;
use serde::Value;

/// One profiled script: the figure workload (optimize + simulate at S,
/// dense1000) plus a small real execution to exercise the executor path.
struct ScriptRun {
    ctor: fn() -> ScriptSpec,
    label: LabelKind,
    exec_rows: u64,
    exec_cols: u64,
    params: &'static [(&'static str, f64)],
}

fn runs() -> Vec<ScriptRun> {
    vec![
        ScriptRun {
            ctor: reml_scripts::linreg_ds,
            label: LabelKind::Regression,
            exec_rows: 1500,
            exec_cols: 12,
            params: &[],
        },
        ScriptRun {
            ctor: reml_scripts::linreg_cg,
            label: LabelKind::Regression,
            exec_rows: 1200,
            exec_cols: 10,
            params: &[("maxiter", 15.0)],
        },
        ScriptRun {
            ctor: reml_scripts::l2svm,
            label: LabelKind::BinaryPm1,
            exec_rows: 800,
            exec_cols: 8,
            params: &[],
        },
        ScriptRun {
            ctor: reml_scripts::mlogreg,
            label: LabelKind::Classes(4),
            exec_rows: 600,
            exec_cols: 6,
            params: &[],
        },
        ScriptRun {
            ctor: reml_scripts::glm,
            label: LabelKind::Counts,
            exec_rows: 500,
            exec_cols: 5,
            params: &[],
        },
    ]
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("overhead") => overhead_gate(),
        Some("vm") => vm_speedup_gate(),
        Some("calibrate") => calibrate_gate(),
        _ => profile(),
    }
}

/// `profile_report calibrate`: execute the five paper scripts with
/// per-instruction observation, fit a calibration profile, report the
/// per-opcode predicted-vs-measured estimation error before/after
/// calibration, and persist the profile + error report under `results/`.
/// Gates on a measured geomean time-error reduction.
fn calibrate_gate() {
    use reml_cost::CostModel;
    use reml_optimizer::ResourceOptimizer;

    /// Required multiplicative reduction of the geomean time error.
    const GATE: f64 = 1.25;

    reml_trace::uninstall();
    println!("fitting calibration profile from observed executions of the five paper scripts...");
    let (profile, report, sets) = reml_calibrate::calibrate_paper_scripts();

    let mut table = ExperimentResult::new(
        "calibration_runs",
        "observed executions behind the calibration fit",
    );
    for set in &sets {
        let measured_ms = set.observations.iter().map(|o| o.wall_ns).sum::<u64>() as f64 / 1e6;
        table.push_row(
            set.script.clone(),
            vec![
                ("rows".to_string(), set.rows as f64),
                ("cols".to_string(), set.cols as f64),
                ("cp_instr".to_string(), set.cp_instructions as f64),
                ("observations".to_string(), set.observations.len() as f64),
                ("measured[ms]".to_string(), measured_ms),
            ],
        );
    }
    table.notes = format!(
        "{} opcodes fitted (profile schema v{})",
        profile.opcodes.len(),
        reml_cost::PROFILE_VERSION
    );
    table.print();

    println!("\nper-opcode estimation error (predicted vs measured), before/after calibration:");
    print!("{}", report.table());

    // The optimizer grid-walk accepts the fitted profile: same plan
    // enumeration, calibrated CP prices.
    let wl = Workload::new(
        reml_scripts::linreg_ds(),
        DataShape {
            scenario: Scenario::S,
            cols: 1000,
            sparsity: 1.0,
        },
    );
    let analytic_opt = wl.optimize();
    let calibrated = ResourceOptimizer::with_calibration(
        CostModel::new(wl.cluster.clone()),
        Arc::new(profile.clone()),
    );
    let calibrated_opt = wl.optimize_with(&calibrated);
    println!(
        "\noptimizer grid-walk (LinregDS S dense1000):\n  analytic:   cp_heap {} MB, predicted {:.1}s\n  calibrated: cp_heap {} MB, predicted {:.1}s",
        analytic_opt.best.cp_heap_mb,
        analytic_opt.best_cost_s,
        calibrated_opt.best.cp_heap_mb,
        calibrated_opt.best_cost_s,
    );

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut profile_json = profile.to_json();
    profile_json.push('\n');
    std::fs::write(dir.join("calibration_profile.json"), profile_json)
        .expect("writes calibration profile");
    println!("wrote results/calibration_profile.json");

    let reduction = report.time_error_reduction();
    let error_report = Value::Object(vec![
        (
            "gate".to_string(),
            Value::Object(vec![
                ("required_reduction".to_string(), Value::Num(GATE)),
                ("measured_reduction".to_string(), Value::Num(reduction)),
                ("pass".to_string(), Value::Bool(reduction >= GATE)),
            ]),
        ),
        (
            "scripts".to_string(),
            Value::Array(
                sets.iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("script".to_string(), Value::Str(s.script.clone())),
                            ("rows".to_string(), Value::Num(s.rows as f64)),
                            ("cols".to_string(), Value::Num(s.cols as f64)),
                            (
                                "observations".to_string(),
                                Value::Num(s.observations.len() as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("errors".to_string(), serde::Serialize::to_value(&report)),
    ]);
    let mut json = serde_json::to_string_pretty(&error_report).expect("serializes");
    json.push('\n');
    std::fs::write(dir.join("calibration_error.json"), json).expect("writes error report");
    println!("wrote results/calibration_error.json");

    assert!(
        reduction >= GATE,
        "calibration gate failed: geomean time-error reduction {reduction:.2}x < {GATE}x \
         (analytic {:.2}x -> calibrated {:.2}x)",
        report.analytic_time_err,
        report.calibrated_time_err,
    );
    println!(
        "calibration gate OK: geomean time error {:.2}x -> {:.2}x ({reduction:.2}x reduction, gate >= {GATE}x)",
        report.analytic_time_err, report.calibrated_time_err,
    );
}

fn profile() {
    let recorder = Recorder::new(1 << 20);
    reml_trace::install(Arc::clone(&recorder));
    reml_trace::metrics().reset();

    for run in runs() {
        let script = (run.ctor)();
        let _root = reml_trace::span_owned(format!("profile.{}", script.name), &[]);
        let wl = {
            let _s = reml_trace::span!("profile.prepare");
            Workload::new(
                (run.ctor)(),
                DataShape {
                    scenario: Scenario::S,
                    cols: 1000,
                    sparsity: 1.0,
                },
            )
        };
        let opt = {
            let _s = reml_trace::span!("profile.optimize");
            wl.optimize()
        };
        {
            let _s = reml_trace::span!("profile.simulate");
            wl.measure(opt.best.clone(), false, SimFacts::default());
        }
        {
            let _s = reml_trace::span!("profile.execute");
            memory_soundness_audit(&script, run.exec_rows, run.exec_cols, run.label, run.params);
        }
    }

    reml_trace::uninstall();
    let records = recorder.drain();
    let att = reml_trace::attribute(&records);
    let wall_s = att.wall_us as f64 / 1e6;

    // Per-phase table: self time per span name, descending.
    let mut phases = ExperimentResult::new(
        "profile_phases",
        "per-phase time attribution, 5 scripts (self time)",
    );
    for row in &att.rows {
        phases.push_row(
            row.name.clone(),
            vec![
                ("count".to_string(), row.count as f64),
                ("self[ms]".to_string(), row.self_us as f64 / 1e3),
                ("total[ms]".to_string(), row.total_us as f64 / 1e3),
                (
                    "self%".to_string(),
                    100.0 * row.self_us as f64 / att.wall_us.max(1) as f64,
                ),
            ],
        );
    }
    phases.notes = format!(
        "wall {:.3} s over {} records ({} dropped), coverage {:.1}%",
        wall_s,
        records.len(),
        recorder.dropped(),
        100.0 * att.coverage()
    );
    phases.print();

    // Per-opcode table from the executor histograms. The real-executor
    // pass (the memory-soundness audit) runs on the bytecode VM, so the
    // histograms are `vm.op.*`; `exec.op.*` is matched too in case a
    // tree-interpreter pass ran under the same recorder.
    let snapshot = reml_trace::metrics().snapshot();
    let mut opcodes = ExperimentResult::new(
        "profile_opcodes",
        "CP instruction timing by opcode (real executor pass, VM)",
    );
    for (name, snap) in &snapshot {
        let Some(op) = name
            .strip_prefix("vm.op.")
            .or_else(|| name.strip_prefix("exec.op."))
        else {
            continue;
        };
        if let reml_trace::MetricSnapshot::Histogram {
            count, sum, mean, ..
        } = snap
        {
            opcodes.push_row(
                op,
                vec![
                    ("count".to_string(), *count as f64),
                    ("total[ms]".to_string(), *sum as f64 / 1e3),
                    ("mean[us]".to_string(), *mean),
                ],
            );
        }
    }
    opcodes.print();

    // Machine-readable report + Chrome trace artifacts.
    let report = Value::Object(vec![
        ("wall_s".to_string(), Value::Num(wall_s)),
        ("coverage".to_string(), Value::Num(att.coverage())),
        ("records".to_string(), Value::Num(records.len() as f64)),
        ("dropped".to_string(), Value::Num(recorder.dropped() as f64)),
        (
            "phases".to_string(),
            Value::Array(
                att.rows
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("name".to_string(), Value::Str(r.name.clone())),
                            ("count".to_string(), Value::Num(r.count as f64)),
                            ("self_us".to_string(), Value::Num(r.self_us as f64)),
                            ("total_us".to_string(), Value::Num(r.total_us as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics".to_string(), reml_trace::metrics().to_value()),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut f = std::fs::File::create(dir.join("profile_report.json")).expect("report file");
    let mut json = serde_json::to_string_pretty(&report).expect("serializes");
    json.push('\n');
    f.write_all(json.as_bytes()).expect("writes report");
    let mut f = std::fs::File::create(dir.join("profile_trace.json")).expect("trace file");
    f.write_all(reml_trace::to_chrome_trace(&records).as_bytes())
        .expect("writes trace");
    println!("wrote results/profile_report.json and results/profile_trace.json");

    // Acceptance gate: the named phases must explain ≥ 95% of wall time.
    assert!(
        att.coverage() >= 0.95,
        "phase coverage {:.1}% < 95% — unattributed root self time too large",
        100.0 * att.coverage()
    );
    println!(
        "coverage gate OK: {:.1}% of {:.3} s attributed",
        100.0 * att.coverage(),
        wall_s
    );
}

/// `profile_report vm`: the bytecode-VM speedup gate.
///
/// Each of the five paper scripts is compiled once and executed for real
/// by both engines — the tree interpreter and the register VM with
/// peephole fusion — interleaved min-of-N to shed scheduler noise, with
/// no recorder installed so both run their untraced fast paths. The gate
/// asserts a geometric-mean speedup of at least 1.15×. A second
/// (recorded) pass populates the `exec.op.*` / `vm.op.*` histograms, and
/// the per-opcode before/after table plus per-script timings land in
/// `results/vm_speedup.json`.
fn vm_speedup_gate() {
    use reml_compiler::pipeline::compile_source;
    use reml_compiler::CompileConfig;
    use reml_runtime::executor::NoRecompile;
    use reml_runtime::vm::VmLowerOptions;
    use reml_runtime::{Executor, HdfsStore, VmExecutor};
    use reml_scripts::data::generate_dataset;

    const ITERS: usize = 7;
    const GATE: f64 = 1.15;

    struct ScriptResult {
        name: &'static str,
        tree_s: f64,
        vm_s: f64,
        fused_groups: usize,
        fused_ops_eliminated: usize,
    }

    reml_trace::uninstall();
    let mut results: Vec<ScriptResult> = Vec::new();
    let mut prepared = Vec::new();
    for run in runs() {
        let script = (run.ctor)();
        let data = generate_dataset(
            run.exec_rows as usize,
            run.exec_cols as usize,
            1.0,
            run.label,
            7,
        );
        let mut cfg =
            CompileConfig::new(reml_cluster::ClusterConfig::paper_cluster(), 4 * 1024, 1024);
        for (name, value) in &script.params {
            cfg.params.insert((*name).to_string(), value.clone());
        }
        for (name, value) in run.params {
            cfg.params
                .insert((*name).to_string(), reml_runtime::ScalarValue::Num(*value));
        }
        cfg.inputs.insert("X".to_string(), data.x.characteristics());
        cfg.inputs.insert("y".to_string(), data.y.characteristics());
        let compiled = compile_source(&script.source, &cfg)
            .unwrap_or_else(|e| panic!("{} compile: {e}", script.name));
        let program = compiled.runtime.lower_vm(VmLowerOptions::default());
        let mut hdfs = HdfsStore::new();
        hdfs.stage("X", data.x.clone());
        hdfs.stage("y", data.y.clone());

        let mut tree_s = f64::INFINITY;
        let mut vm_s = f64::INFINITY;
        for _ in 0..ITERS {
            let mut exec = Executor::new(4 << 30, hdfs.clone());
            let t0 = Instant::now();
            exec.run(&compiled.runtime, &mut NoRecompile)
                .unwrap_or_else(|e| panic!("{} tree execute: {e}", script.name));
            tree_s = tree_s.min(t0.elapsed().as_secs_f64());

            let mut vm = VmExecutor::new(4 << 30, hdfs.clone());
            let t0 = Instant::now();
            vm.run(&program, &mut NoRecompile)
                .unwrap_or_else(|e| panic!("{} vm execute: {e}", script.name));
            vm_s = vm_s.min(t0.elapsed().as_secs_f64());
        }
        results.push(ScriptResult {
            name: script.name,
            tree_s,
            vm_s,
            fused_groups: program.stats.fused_groups,
            fused_ops_eliminated: program.stats.fused_ops_eliminated,
        });
        prepared.push((script, compiled, program, hdfs));
    }

    // Recorded pass: per-opcode timing histograms for both engines.
    reml_trace::install(Recorder::new(1 << 20));
    reml_trace::metrics().reset();
    for (script, compiled, program, hdfs) in &prepared {
        let mut exec = Executor::new(4 << 30, hdfs.clone());
        exec.run(&compiled.runtime, &mut NoRecompile)
            .unwrap_or_else(|e| panic!("{} tree execute: {e}", script.name));
        let mut vm = VmExecutor::new(4 << 30, hdfs.clone());
        vm.run(program, &mut NoRecompile)
            .unwrap_or_else(|e| panic!("{} vm execute: {e}", script.name));
    }
    reml_trace::uninstall();
    let snapshot = reml_trace::metrics().snapshot();
    struct OpRow {
        count: u64,
        total_ms: f64,
        mean_us: f64,
    }
    let mut tree_ops: Vec<(String, OpRow)> = Vec::new();
    let mut vm_ops: Vec<(String, OpRow)> = Vec::new();
    for (name, snap) in &snapshot {
        let (op, rows) = if let Some(op) = name.strip_prefix("exec.op.") {
            (op, &mut tree_ops)
        } else if let Some(op) = name.strip_prefix("vm.op.") {
            (op, &mut vm_ops)
        } else {
            continue;
        };
        if let reml_trace::MetricSnapshot::Histogram {
            count, sum, mean, ..
        } = snap
        {
            rows.push((
                op.to_string(),
                OpRow {
                    count: *count,
                    total_ms: *sum as f64 / 1e3,
                    mean_us: *mean,
                },
            ));
        }
    }
    tree_ops.sort_by(|a, b| a.0.cmp(&b.0));
    vm_ops.sort_by(|a, b| a.0.cmp(&b.0));

    // Human-readable tables.
    let mut table = ExperimentResult::new(
        "vm_speedup",
        "tree interpreter vs bytecode VM, real execution (min of 7)",
    );
    let mut geomean_log = 0.0;
    for r in &results {
        let speedup = r.tree_s / r.vm_s.max(1e-12);
        geomean_log += speedup.ln();
        table.push_row(
            r.name,
            vec![
                ("tree[ms]".to_string(), r.tree_s * 1e3),
                ("vm[ms]".to_string(), r.vm_s * 1e3),
                ("speedup".to_string(), speedup),
                ("fused_groups".to_string(), r.fused_groups as f64),
                ("ops_eliminated".to_string(), r.fused_ops_eliminated as f64),
            ],
        );
    }
    let geomean = (geomean_log / results.len() as f64).exp();
    table.notes = format!("geomean speedup {geomean:.3}x (gate >= {GATE}x)");
    table.print();

    let mut before_after = ExperimentResult::new(
        "vm_opcodes",
        "per-opcode timing before (exec.op.*) / after (vm.op.*)",
    );
    for (op, row) in &tree_ops {
        let vm_row = vm_ops.iter().find(|(v, _)| v == op).map(|(_, r)| r);
        before_after.push_row(
            op.clone(),
            vec![
                ("tree_count".to_string(), row.count as f64),
                ("tree_mean[us]".to_string(), row.mean_us),
                (
                    "vm_mean[us]".to_string(),
                    vm_row.map(|r| r.mean_us).unwrap_or(f64::NAN),
                ),
            ],
        );
    }
    for (op, row) in &vm_ops {
        if tree_ops.iter().any(|(t, _)| t == op) {
            continue;
        }
        // VM-only rows: the fused composite opcodes.
        before_after.push_row(
            op.clone(),
            vec![
                ("vm_count".to_string(), row.count as f64),
                ("vm_mean[us]".to_string(), row.mean_us),
                ("vm_total[ms]".to_string(), row.total_ms),
            ],
        );
    }
    before_after.print();

    // Machine-readable artifact.
    let op_json = |ops: &[(String, OpRow)]| {
        Value::Array(
            ops.iter()
                .map(|(op, r)| {
                    Value::Object(vec![
                        ("opcode".to_string(), Value::Str(op.clone())),
                        ("count".to_string(), Value::Num(r.count as f64)),
                        ("total_ms".to_string(), Value::Num(r.total_ms)),
                        ("mean_us".to_string(), Value::Num(r.mean_us)),
                    ])
                })
                .collect(),
        )
    };
    let report = Value::Object(vec![
        ("geomean_speedup".to_string(), Value::Num(geomean)),
        ("gate".to_string(), Value::Num(GATE)),
        ("iters".to_string(), Value::Num(ITERS as f64)),
        (
            "scripts".to_string(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("script".to_string(), Value::Str(r.name.to_string())),
                            ("tree_s".to_string(), Value::Num(r.tree_s)),
                            ("vm_s".to_string(), Value::Num(r.vm_s)),
                            (
                                "speedup".to_string(),
                                Value::Num(r.tree_s / r.vm_s.max(1e-12)),
                            ),
                            (
                                "fused_groups".to_string(),
                                Value::Num(r.fused_groups as f64),
                            ),
                            (
                                "fused_ops_eliminated".to_string(),
                                Value::Num(r.fused_ops_eliminated as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("per_opcode_tree".to_string(), op_json(&tree_ops)),
        ("per_opcode_vm".to_string(), op_json(&vm_ops)),
    ]);
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let mut f = std::fs::File::create(dir.join("vm_speedup.json")).expect("report file");
    let mut json = serde_json::to_string_pretty(&report).expect("serializes");
    json.push('\n');
    f.write_all(json.as_bytes()).expect("writes report");
    println!("wrote results/vm_speedup.json");

    assert!(
        geomean >= GATE,
        "VM speedup gate failed: geomean {geomean:.3}x < {GATE}x"
    );
    println!("VM speedup gate OK: geomean {geomean:.3}x >= {GATE}x");
}

/// One fig7-style iteration: optimize LinregDS M dense1000 and simulate
/// at the chosen point. Returns elapsed wall seconds.
fn overhead_iteration(wl: &Workload) -> f64 {
    let t0 = Instant::now();
    let opt = wl.optimize();
    wl.measure(opt.best.clone(), false, SimFacts::default());
    t0.elapsed().as_secs_f64()
}

fn overhead_gate() {
    const ITERS: usize = 5;
    /// Absolute slack for timer/scheduler noise on short runs.
    const EPSILON_S: f64 = 0.05;
    let wl = Workload::new(
        reml_scripts::linreg_ds(),
        DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        },
    );
    // Warm-up: fault in lazy state (plan caches are per-session, so the
    // measured iterations below still do full work).
    overhead_iteration(&wl);

    let mut disabled = f64::INFINITY;
    let mut sampled = f64::INFINITY;
    for _ in 0..ITERS {
        // Interleave A/B so slow drift hits both configurations equally.
        reml_trace::uninstall();
        disabled = disabled.min(overhead_iteration(&wl));
        reml_trace::install(Recorder::sampled(1 << 16, 64));
        sampled = sampled.min(overhead_iteration(&wl));
    }
    reml_trace::uninstall();

    let ratio = sampled / disabled.max(1e-9);
    println!(
        "overhead gate: disabled {:.4} s, sampled always-on {:.4} s, ratio {:.3}",
        disabled, sampled, ratio
    );
    assert!(
        sampled <= disabled * 1.03 + EPSILON_S,
        "sampled always-on tracing overhead too high: {:.4} s vs {:.4} s disabled (> 3% + {} s)",
        sampled,
        disabled,
        EPSILON_S
    );
    println!("overhead gate OK: sampled within 3% (+{EPSILON_S} s) of disabled");
}

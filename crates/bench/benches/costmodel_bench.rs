//! Criterion benches of the analytic cost model — the operation the
//! optimizer invokes hundreds of times per run (Table 3's "# Cost.").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reml_bench::Workload;
use reml_compiler::pipeline::compile;
use reml_cost::CostModel;
use reml_scripts::{DataShape, Scenario};

fn bench_cost_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_program");
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::linreg_cg,
        reml_scripts::glm,
    ] {
        let wl = Workload::new(
            ctor(),
            DataShape {
                scenario: Scenario::M,
                cols: 1000,
                sparsity: 1.0,
            },
        );
        let compiled = compile(&wl.analyzed, &wl.base).unwrap();
        let model = CostModel::new(wl.cluster.clone());
        group.bench_function(BenchmarkId::from_parameter(wl.script.name), |b| {
            b.iter(|| model.cost_program(&compiled.runtime, 512, &|_| 512))
        });
    }
    group.finish();
}

fn bench_cost_scaling_with_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_linreg_cg_by_scenario");
    for scenario in [Scenario::XS, Scenario::M, Scenario::XL] {
        let wl = Workload::new(
            reml_scripts::linreg_cg(),
            DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            },
        );
        let compiled = compile(&wl.analyzed, &wl.base).unwrap();
        let model = CostModel::new(wl.cluster.clone());
        group.bench_function(BenchmarkId::from_parameter(scenario.name()), |b| {
            b.iter(|| model.cost_program(&compiled.runtime, 512, &|_| 2048))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cost_program,
    bench_cost_scaling_with_scenario
);
criterion_main!(benches);

//! Criterion benches of the resource optimizer: the Table 3 / Figure 18
//! hot path — one full Algorithm 1 run per program, plus grid-strategy
//! and worker-count ablations on GLM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reml_bench::Workload;
use reml_cost::CostModel;
use reml_optimizer::{GridStrategy, ResourceOptimizer};
use reml_scripts::{DataShape, Scenario};

fn shape() -> DataShape {
    DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    }
}

fn bench_optimize_per_program(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_dense1000_M");
    group.sample_size(10);
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::linreg_cg,
        reml_scripts::l2svm,
        reml_scripts::mlogreg,
        reml_scripts::glm,
    ] {
        let wl = Workload::new(ctor(), shape());
        group.bench_function(BenchmarkId::from_parameter(wl.script.name), |b| {
            b.iter(|| wl.optimize())
        });
    }
    group.finish();
}

fn bench_grid_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_glm_grid_strategy");
    group.sample_size(10);
    let wl = Workload::new(reml_scripts::glm(), shape());
    for (label, strategy) in [
        ("equi15", GridStrategy::Equi { points: 15 }),
        ("exp2", GridStrategy::Exp { factor: 2.0 }),
        ("hybrid15", GridStrategy::Hybrid { base_points: 15 }),
    ] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.cp_grid = strategy;
        optimizer.config.mr_grid = strategy;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| wl.optimize_with(&optimizer))
        });
    }
    group.finish();
}

fn bench_plan_cache(c: &mut Criterion) {
    // The what-if session's breakpoint-keyed plan cache, on vs off: same
    // grid walk, same result, different number of actual compilations.
    let mut group = c.benchmark_group("optimize_glm_plan_cache");
    group.sample_size(10);
    let wl = Workload::new(reml_scripts::glm(), shape());
    for (label, enabled) in [("cached", true), ("bypass", false)] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.plan_cache = enabled;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| wl.optimize_with(&optimizer))
        });
    }
    group.finish();
}

fn bench_parallel_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_glm_workers");
    group.sample_size(10);
    let wl = Workload::new(reml_scripts::glm(), shape());
    for workers in [1usize, 4, 8] {
        let mut optimizer = ResourceOptimizer::new(CostModel::new(wl.cluster.clone()));
        optimizer.config.workers = workers;
        group.bench_function(BenchmarkId::from_parameter(workers), |b| {
            b.iter(|| wl.optimize_with(&optimizer))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_optimize_per_program,
    bench_grid_strategies,
    bench_plan_cache,
    bench_parallel_workers
);
criterion_main!(benches);

//! Criterion benches of the execution simulator: single-app runs (with
//! and without adaptation) and the multi-tenant throughput model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reml_bench::Workload;
use reml_optimizer::ResourceConfig;
use reml_scripts::{DataShape, Scenario};
use reml_sim::{simulate_throughput, SimFacts};

fn bench_sim_single_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_app_dense1000_M");
    group.sample_size(10);
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::l2svm,
    ] {
        let wl = Workload::new(
            ctor(),
            DataShape {
                scenario: Scenario::M,
                cols: 1000,
                sparsity: 1.0,
            },
        );
        group.bench_function(BenchmarkId::from_parameter(wl.script.name), |b| {
            b.iter(|| wl.measure_static(ResourceConfig::uniform(2 * 1024, 2 * 1024)))
        });
    }
    group.finish();
}

fn bench_sim_adaptive(c: &mut Criterion) {
    let wl = Workload::new(
        reml_scripts::mlogreg(),
        DataShape {
            scenario: Scenario::S,
            cols: 100,
            sparsity: 1.0,
        },
    );
    let mut group = c.benchmark_group("sim_mlogreg_adaptive");
    group.sample_size(10);
    group.bench_function("reopt", |b| {
        b.iter(|| {
            wl.measure(
                ResourceConfig::uniform(512, 512),
                true,
                SimFacts {
                    table_cols: 20,
                    ..SimFacts::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_throughput_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput_model");
    for users in [8u32, 128] {
        group.bench_function(BenchmarkId::from_parameter(users), |b| {
            b.iter(|| simulate_throughput(30.0, 36, users, 8, 0.5))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sim_single_app,
    bench_sim_adaptive,
    bench_throughput_model
);
criterion_main!(benches);

//! Criterion benches of the compilation chain: front end, whole-program
//! compilation (the optimizer's inner loop), and single-block
//! recompilation (the dynamic-recompilation hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reml_bench::Workload;
use reml_compiler::pipeline::{analyze_program, compile, compile_single_block};
use reml_lang::BlockId;
use reml_scripts::{DataShape, Scenario};

fn shape() -> DataShape {
    DataShape {
        scenario: Scenario::M,
        cols: 1000,
        sparsity: 1.0,
    }
}

fn bench_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontend_analyze");
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::l2svm,
        reml_scripts::glm,
    ] {
        let script = ctor();
        group.bench_function(BenchmarkId::from_parameter(script.name), |b| {
            b.iter(|| analyze_program(&script.source).unwrap())
        });
    }
    group.finish();
}

fn bench_full_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_program");
    for ctor in [
        reml_scripts::linreg_ds as fn() -> reml_scripts::ScriptSpec,
        reml_scripts::l2svm,
        reml_scripts::glm,
    ] {
        let wl = Workload::new(ctor(), shape());
        group.bench_function(BenchmarkId::from_parameter(wl.script.name), |b| {
            b.iter(|| compile(&wl.analyzed, &wl.base).unwrap())
        });
    }
    group.finish();
}

fn bench_single_block_recompile(c: &mut Criterion) {
    let wl = Workload::new(reml_scripts::l2svm(), shape());
    let compiled = compile(&wl.analyzed, &wl.base).unwrap();
    // Pick the largest generic block (the while-loop body workhorse).
    let (bid, env) = compiled
        .entry_envs
        .iter()
        .max_by_key(|(_, env)| env.len())
        .map(|(bid, env)| (*bid, env.clone()))
        .expect("has blocks");
    c.bench_function("recompile_single_block_l2svm", |b| {
        b.iter(|| compile_single_block(&wl.analyzed, &wl.base, BlockId(bid), &env).unwrap())
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_full_compile,
    bench_single_block_recompile
);
criterion_main!(benches);

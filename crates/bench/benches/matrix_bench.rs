//! Criterion benches of the matrix substrate kernels — the operations
//! the CP executor spends its time in.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reml_matrix::generate::{rand_dense, rand_sparse};
use reml_matrix::{AggOp, BinaryOp, Matrix};

fn bench_matmult(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmult");
    for n in [64usize, 256] {
        let a = rand_dense(n, n, -1.0, 1.0, 1);
        let b = rand_dense(n, n, -1.0, 1.0, 2);
        group.bench_function(BenchmarkId::new("dense", n), |bch| {
            bch.iter(|| a.matmult(&b).unwrap())
        });
        let s = rand_sparse(n, n, 0.05, -1.0, 1.0, 3);
        group.bench_function(BenchmarkId::new("sparse_dense", n), |bch| {
            bch.iter(|| s.matmult_dense(&b).unwrap())
        });
    }
    group.finish();
}

fn bench_tsmm_vs_explicit(c: &mut Criterion) {
    let x = rand_dense(2048, 64, -1.0, 1.0, 4);
    let mut group = c.benchmark_group("tsmm");
    group.bench_function("fused", |b| b.iter(|| x.tsmm()));
    group.bench_function("explicit_t_mm", |b| {
        b.iter(|| x.transpose().matmult(&x).unwrap())
    });
    group.finish();
}

fn bench_elementwise_and_agg(c: &mut Criterion) {
    let d = rand_dense(1024, 256, -1.0, 1.0, 5);
    let m = Matrix::Dense(d.clone());
    let mut group = c.benchmark_group("elementwise");
    group.bench_function("mul_scalar", |b| {
        b.iter(|| m.binary_scalar(BinaryOp::Mul, 2.0))
    });
    group.bench_function("binary_mm", |b| {
        b.iter(|| m.binary(BinaryOp::Add, &m).unwrap())
    });
    group.bench_function("rowsums", |b| b.iter(|| m.aggregate(AggOp::RowSums)));
    group.bench_function("sum", |b| b.iter(|| m.aggregate(AggOp::Sum)));
    group.finish();
}

fn bench_solve(c: &mut Criterion) {
    let m = rand_dense(128, 128, -1.0, 1.0, 6);
    let mut a = m.tsmm();
    for i in 0..128 {
        a.set(i, i, a.get(i, i) + 1.0);
    }
    let b = rand_dense(128, 1, -1.0, 1.0, 7);
    let mut group = c.benchmark_group("solve_128");
    group.bench_function("lu", |bch| {
        bch.iter(|| reml_matrix::solve::solve(&a, &b).unwrap())
    });
    group.bench_function("cholesky", |bch| {
        bch.iter(|| reml_matrix::solve::solve_spd(&a, &b).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmult,
    bench_tsmm_vs_explicit,
    bench_elementwise_and_agg,
    bench_solve
);
criterion_main!(benches);

//! Executable instructions: CP (in-memory) and MR-job instructions.

use reml_matrix::{AggOp, BinaryOp, MatrixCharacteristics, UnaryOp};

use crate::value::Operand;

/// Prefix of compiler-generated temporary variable names. The compiler's
/// DAG lowering names intra-block intermediates with this prefix, and the
/// VM's peephole fusion pass treats single-use variables carrying it as
/// elidable (never observed outside the block that defines them).
pub const TEMP_PREFIX: &str = "_mVar";

/// Operation codes shared by CP instructions and MR operators.
///
/// The same vocabulary serves both execution (the executor dispatches on
/// it) and costing (the cost model derives FLOP counts and IO sizes from
/// the opcode plus operand characteristics).
#[derive(Debug, Clone, PartialEq)]
pub enum OpCode {
    /// Read a persistent dataset from HDFS into a variable.
    PersistentRead {
        /// HDFS path/name of the dataset.
        path: String,
    },
    /// Write a variable to HDFS.
    PersistentWrite {
        /// HDFS path/name to write.
        path: String,
    },
    /// `matrix(value, rows, cols)` — constant matrix generation.
    DataGenConst,
    /// `seq(from, to[, by])` — sequence generation.
    DataGenSeq,
    /// `rand(rows, cols, sparsity, seed)` — random generation.
    DataGenRand,
    /// Matrix multiply `A %*% B`.
    MatMult,
    /// Transpose-left matrix multiply `t(A) %*% B` (fused physical
    /// operator: avoids materializing the large transpose, Appendix B's
    /// transpose-mm rewrite).
    MatMultTransLeft,
    /// Transpose-self multiply `t(X) %*% X` (fused physical operator).
    Tsmm,
    /// Fused matrix-multiply chain `t(X) %*% (X %*% v)` (MapMMChain).
    MmChain,
    /// Dense linear solve.
    Solve,
    /// Transpose.
    Transpose,
    /// Diagonal extract/expand.
    Diag,
    /// Elementwise binary over matrices/vectors (broadcast per DML rules).
    BinaryMM(BinaryOp),
    /// Matrix (left) op scalar (right).
    BinaryMS(BinaryOp),
    /// Scalar (left) op matrix (right).
    BinarySM(BinaryOp),
    /// Scalar op scalar.
    BinarySS(BinaryOp),
    /// Elementwise unary on a matrix.
    UnaryM(UnaryOp),
    /// Unary on a scalar.
    UnaryS(UnaryOp),
    /// Aggregation (sum, rowSums, ...) — scalar or vector result.
    Agg(AggOp),
    /// `table(seq(1, nrow(y)), y)` contingency table.
    TableSeq,
    /// Right indexing; operands: matrix, row_lo, row_hi, col_lo, col_hi
    /// (1-based inclusive, scalar operands).
    RightIndex,
    /// Left indexing; operands: target, value, row_lo, row_hi, col_lo,
    /// col_hi.
    LeftIndex,
    /// Horizontal append (cbind).
    Append,
    /// Vertical append (rbind).
    AppendR,
    /// `nrow(X)` — scalar result.
    NRow,
    /// `ncol(X)` — scalar result.
    NCol,
    /// Cast a 1×1 matrix to scalar.
    CastScalar,
    /// Cast a scalar to a 1×1 matrix.
    CastMatrix,
    /// Copy/rename a value into a new variable.
    Assign,
    /// String concatenation (DML `+` over strings).
    Concat,
    /// Print to stdout (captured by the executor).
    Print,
    /// Remove a variable (end-of-block cleanup).
    RmVar,
}

impl OpCode {
    /// Whether this opcode is an elementwise matrix op the VM's peephole
    /// pass may fuse into a chain (shape-preserving, cell-independent).
    pub fn is_fusible_elementwise(&self) -> bool {
        matches!(
            self,
            OpCode::BinaryMM(_) | OpCode::BinaryMS(_) | OpCode::BinarySM(_) | OpCode::UnaryM(_)
        )
    }

    /// Short opcode mnemonic for EXPLAIN-style plan rendering.
    pub fn mnemonic(&self) -> String {
        match self {
            OpCode::PersistentRead { .. } => "pread".into(),
            OpCode::PersistentWrite { .. } => "pwrite".into(),
            OpCode::DataGenConst => "datagen-const".into(),
            OpCode::DataGenSeq => "datagen-seq".into(),
            OpCode::DataGenRand => "datagen-rand".into(),
            OpCode::MatMult => "ba+*".into(),
            OpCode::MatMultTransLeft => "tmm".into(),
            OpCode::Tsmm => "tsmm".into(),
            OpCode::MmChain => "mmchain".into(),
            OpCode::Solve => "solve".into(),
            OpCode::Transpose => "r'".into(),
            OpCode::Diag => "rdiag".into(),
            OpCode::BinaryMM(op) => format!("map{}", op.token()),
            OpCode::BinaryMS(op) | OpCode::BinarySM(op) => format!("s{}", op.token()),
            OpCode::BinarySS(op) => format!("ss{}", op.token()),
            OpCode::UnaryM(op) => format!("u{}", op.token()),
            OpCode::UnaryS(op) => format!("us{}", op.token()),
            OpCode::Agg(op) => format!("ua{}", op.token()),
            OpCode::TableSeq => "ctable".into(),
            OpCode::RightIndex => "rix".into(),
            OpCode::LeftIndex => "lix".into(),
            OpCode::Append => "append".into(),
            OpCode::AppendR => "rappend".into(),
            OpCode::NRow => "nrow".into(),
            OpCode::NCol => "ncol".into(),
            OpCode::CastScalar => "castdts".into(),
            OpCode::CastMatrix => "castdtm".into(),
            OpCode::Assign => "assignvar".into(),
            OpCode::Concat => "concat".into(),
            OpCode::Print => "print".into(),
            OpCode::RmVar => "rmvar".into(),
        }
    }
}

/// A CP (control-program, in-memory) instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct CpInstruction {
    /// Operation.
    pub opcode: OpCode,
    /// Operands in positional order.
    pub operands: Vec<Operand>,
    /// Output variable (None for sinks like `print`/`pwrite`).
    pub output: Option<String>,
    /// Compile-time characteristics per operand (scalar operands use
    /// [`MatrixCharacteristics::scalar`]).
    pub operand_mcs: Vec<MatrixCharacteristics>,
    /// Compile-time characteristics of the output.
    pub output_mc: MatrixCharacteristics,
    /// Sound upper bound on the operand + output bytes this instruction
    /// can hold resident, from the `sizebound` interval analysis. `None`
    /// means no finite bound could be proven (or the analysis has not
    /// annotated this plan). Never read by the executor's semantics —
    /// only copied into [`MemObservation`](crate::executor::MemObservation)
    /// for the differential soundness audit.
    pub bound_bytes: Option<u64>,
}

impl CpInstruction {
    /// EXPLAIN rendering: `CP mnemonic in1 in2 -> out`.
    pub fn render(&self) -> String {
        let ins: Vec<String> = self
            .operands
            .iter()
            .map(|o| match o {
                Operand::Var(v) => v.clone(),
                Operand::Lit(l) => l.render(),
            })
            .collect();
        format!(
            "CP {} {} -> {}",
            self.opcode.mnemonic(),
            ins.join(" "),
            self.output.as_deref().unwrap_or("-")
        )
    }
}

/// Where an MR operator executes within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MrLocation {
    /// Map phase.
    Map,
    /// Reduce phase.
    Reduce,
}

/// One operator packed into an MR job.
#[derive(Debug, Clone, PartialEq)]
pub struct MrOperator {
    /// Operation (same vocabulary as CP).
    pub opcode: OpCode,
    /// Operands.
    pub operands: Vec<Operand>,
    /// Output variable (job-local intermediate or job output).
    pub output: Option<String>,
    /// Compile-time operand characteristics.
    pub operand_mcs: Vec<MatrixCharacteristics>,
    /// Compile-time output characteristics.
    pub output_mc: MatrixCharacteristics,
    /// Map or reduce side.
    pub location: MrLocation,
    /// Memory the operator needs inside each task (e.g. the broadcast
    /// vector of a map-side multiply), MB. Constrains piggybacking.
    pub task_mem_mb: f64,
}

/// An MR-job instruction: one Hadoop job running a pack of operators.
#[derive(Debug, Clone, PartialEq)]
pub struct MrJobInstruction {
    /// Variables read from HDFS by the map phase (with their compile-time
    /// characteristics).
    pub hdfs_inputs: Vec<(String, MatrixCharacteristics)>,
    /// Variables broadcast to every map task via distributed cache.
    pub broadcast_inputs: Vec<(String, MatrixCharacteristics)>,
    /// Operators in the map phase, in execution order.
    pub mappers: Vec<MrOperator>,
    /// Operators in the reduce phase, in execution order.
    pub reducers: Vec<MrOperator>,
    /// Variables written to HDFS as job outputs.
    pub outputs: Vec<(String, MatrixCharacteristics)>,
    /// Characteristics of data shuffled from map to reduce (empty for
    /// map-only jobs).
    pub shuffle: Vec<MatrixCharacteristics>,
}

impl MrJobInstruction {
    /// Whether this job has a reduce phase.
    pub fn has_reduce(&self) -> bool {
        !self.reducers.is_empty() || !self.shuffle.is_empty()
    }

    /// Total map-side broadcast memory requirement, MB.
    pub fn broadcast_mb(&self) -> f64 {
        self.broadcast_inputs
            .iter()
            .map(|(_, mc)| mc.estimated_size_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0))
            .sum()
    }

    /// Total bytes read from HDFS by mappers.
    pub fn input_bytes(&self) -> u64 {
        self.hdfs_inputs
            .iter()
            .map(|(_, mc)| mc.hdfs_size_bytes().unwrap_or(0))
            .sum()
    }

    /// Total bytes written to HDFS by the job.
    pub fn output_bytes(&self) -> u64 {
        self.outputs
            .iter()
            .map(|(_, mc)| mc.hdfs_size_bytes().unwrap_or(0))
            .sum()
    }

    /// Total bytes shuffled.
    pub fn shuffle_bytes(&self) -> u64 {
        self.shuffle
            .iter()
            .map(|mc| mc.estimated_size_bytes().unwrap_or(0))
            .sum()
    }

    /// EXPLAIN rendering.
    pub fn render(&self) -> String {
        let map: Vec<String> = self.mappers.iter().map(|m| m.opcode.mnemonic()).collect();
        let red: Vec<String> = self.reducers.iter().map(|m| m.opcode.mnemonic()).collect();
        format!(
            "MR-Job map[{}] reduce[{}] in:{} bc:{} out:{}",
            map.join(","),
            red.join(","),
            self.hdfs_inputs.len(),
            self.broadcast_inputs.len(),
            self.outputs.len()
        )
    }
}

/// A runtime instruction: CP or MR job.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// In-memory control-program instruction.
    Cp(CpInstruction),
    /// Distributed MR-job instruction.
    MrJob(MrJobInstruction),
}

impl Instruction {
    /// Whether this is an MR job.
    pub fn is_mr(&self) -> bool {
        matches!(self, Instruction::MrJob(_))
    }

    /// EXPLAIN rendering.
    pub fn render(&self) -> String {
        match self {
            Instruction::Cp(i) => i.render(),
            Instruction::MrJob(j) => j.render(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc(r: u64, c: u64) -> MatrixCharacteristics {
        MatrixCharacteristics::dense(r, c)
    }

    #[test]
    fn cp_render() {
        let i = CpInstruction {
            opcode: OpCode::MatMult,
            operands: vec![Operand::var("X"), Operand::var("y")],
            output: Some("g".into()),
            operand_mcs: vec![mc(10, 2), mc(2, 1)],
            output_mc: mc(10, 1),
            bound_bytes: None,
        };
        assert_eq!(i.render(), "CP ba+* X y -> g");
    }

    #[test]
    fn mr_job_accounting() {
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), mc(1024 * 128, 1024))], // 1 GB dense
            broadcast_inputs: vec![("v".into(), mc(1024, 1))],
            mappers: vec![MrOperator {
                opcode: OpCode::MatMult,
                operands: vec![Operand::var("X"), Operand::var("v")],
                output: Some("q".into()),
                operand_mcs: vec![mc(1024 * 128, 1024), mc(1024, 1)],
                output_mc: mc(1024 * 128, 1),
                location: MrLocation::Map,
                task_mem_mb: 0.01,
            }],
            reducers: vec![],
            outputs: vec![("q".into(), mc(1024 * 128, 1))],
            shuffle: vec![],
        };
        assert!(!job.has_reduce());
        assert_eq!(job.input_bytes(), 1024 * 128 * 1024 * 8);
        assert_eq!(job.output_bytes(), 1024 * 128 * 8);
        assert_eq!(job.shuffle_bytes(), 0);
        assert!(job.broadcast_mb() > 0.0);
        assert!(Instruction::MrJob(job).is_mr());
    }

    #[test]
    fn shuffle_presence_implies_reduce() {
        let job = MrJobInstruction {
            hdfs_inputs: vec![],
            broadcast_inputs: vec![],
            mappers: vec![],
            reducers: vec![],
            outputs: vec![],
            shuffle: vec![mc(10, 10)],
        };
        assert!(job.has_reduce());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(OpCode::Tsmm.mnemonic(), "tsmm");
        assert_eq!(OpCode::BinaryMM(BinaryOp::Mul).mnemonic(), "map*");
        assert_eq!(OpCode::Agg(AggOp::Sum).mnemonic(), "uasum");
    }
}

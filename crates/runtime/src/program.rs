//! Runtime program representation: a tree of program blocks.

use reml_lang::BlockId;
use reml_matrix::MatrixCharacteristics;

use crate::instructions::Instruction;
use crate::value::ScalarValue;

/// A compiled predicate: a short list of CP instructions ending in a
/// scalar `result_var`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Instructions evaluating the predicate (CP only).
    pub instructions: Vec<Instruction>,
    /// Variable holding the boolean/numeric result.
    pub result_var: String,
}

/// One runtime program block.
#[derive(Debug, Clone, PartialEq)]
pub enum RtBlock {
    /// Straight-line instruction block (last-level block; the granularity
    /// of dynamic recompilation, §4.1).
    Generic {
        /// The statement block this was compiled from (recompile key).
        source: BlockId,
        /// Instructions in execution order.
        instructions: Vec<Instruction>,
        /// Marked when compile-time sizes were unknown; the executor
        /// invokes the recompilation hook before running the block.
        requires_recompile: bool,
    },
    /// Conditional block.
    If {
        /// Source statement block.
        source: BlockId,
        /// Compiled predicate.
        pred: Predicate,
        /// Then-branch blocks.
        then_blocks: Vec<RtBlock>,
        /// Else-branch blocks.
        else_blocks: Vec<RtBlock>,
    },
    /// While-loop block.
    While {
        /// Source statement block.
        source: BlockId,
        /// Compiled predicate (re-evaluated each iteration).
        pred: Predicate,
        /// Body blocks.
        body: Vec<RtBlock>,
        /// Upper bound on iterations when derivable from the predicate
        /// (e.g. `iter < maxiterations` with a known constant); used by
        /// the cost model's loop scaling.
        max_iter_hint: Option<u64>,
    },
    /// For-loop block.
    For {
        /// Source statement block.
        source: BlockId,
        /// Loop variable.
        var: String,
        /// Range start (compiled predicate-style, constant or variable).
        from: Predicate,
        /// Range end.
        to: Predicate,
        /// Body blocks.
        body: Vec<RtBlock>,
        /// Iteration count when statically known.
        iterations_hint: Option<u64>,
    },
}

impl RtBlock {
    /// The source statement block id.
    pub fn source(&self) -> BlockId {
        match self {
            RtBlock::Generic { source, .. }
            | RtBlock::If { source, .. }
            | RtBlock::While { source, .. }
            | RtBlock::For { source, .. } => *source,
        }
    }

    /// Number of MR-job instructions in this subtree.
    pub fn count_mr_jobs(&self) -> usize {
        match self {
            RtBlock::Generic { instructions, .. } => {
                instructions.iter().filter(|i| i.is_mr()).count()
            }
            RtBlock::If {
                pred,
                then_blocks,
                else_blocks,
                ..
            } => {
                pred.instructions.iter().filter(|i| i.is_mr()).count()
                    + then_blocks
                        .iter()
                        .map(RtBlock::count_mr_jobs)
                        .sum::<usize>()
                    + else_blocks
                        .iter()
                        .map(RtBlock::count_mr_jobs)
                        .sum::<usize>()
            }
            RtBlock::While { pred, body, .. } => {
                pred.instructions.iter().filter(|i| i.is_mr()).count()
                    + body.iter().map(RtBlock::count_mr_jobs).sum::<usize>()
            }
            RtBlock::For { body, .. } => body.iter().map(RtBlock::count_mr_jobs).sum(),
        }
    }

    /// Visit all generic blocks in execution order.
    pub fn visit_generic<'a>(&'a self, f: &mut impl FnMut(&'a RtBlock)) {
        match self {
            RtBlock::Generic { .. } => f(self),
            RtBlock::If {
                then_blocks,
                else_blocks,
                ..
            } => {
                for b in then_blocks.iter().chain(else_blocks) {
                    b.visit_generic(f);
                }
            }
            RtBlock::While { body, .. } | RtBlock::For { body, .. } => {
                for b in body {
                    b.visit_generic(f);
                }
            }
        }
    }
}

/// A complete runtime program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RuntimeProgram {
    /// Top-level blocks in execution order.
    pub blocks: Vec<RtBlock>,
    /// Known `$` parameter bindings used at compile time.
    pub params: Vec<(String, ScalarValue)>,
    /// Compile-time characteristics of persistent inputs (by read path).
    pub inputs: Vec<(String, MatrixCharacteristics)>,
}

impl RuntimeProgram {
    /// Total number of blocks (all levels).
    pub fn num_blocks(&self) -> usize {
        fn count(b: &RtBlock) -> usize {
            1 + match b {
                RtBlock::Generic { .. } => 0,
                RtBlock::If {
                    then_blocks,
                    else_blocks,
                    ..
                } => {
                    then_blocks.iter().map(count).sum::<usize>()
                        + else_blocks.iter().map(count).sum::<usize>()
                }
                RtBlock::While { body, .. } | RtBlock::For { body, .. } => {
                    body.iter().map(count).sum()
                }
            }
        }
        self.blocks.iter().map(count).sum()
    }

    /// Total number of MR-job instructions in the program.
    pub fn count_mr_jobs(&self) -> usize {
        self.blocks.iter().map(RtBlock::count_mr_jobs).sum()
    }

    /// EXPLAIN rendering of the whole program.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            explain_block(b, 0, &mut out);
        }
        out
    }

    /// Lower this tree into flat bytecode for the register VM (see
    /// [`crate::vm`]). Symbols are interned and operand slots preresolved
    /// once here, so execution never hashes a variable name.
    pub fn lower_vm(&self, options: crate::vm::VmLowerOptions) -> crate::vm::VmProgram {
        crate::vm::lower_program(self, options)
    }
}

fn explain_block(block: &RtBlock, depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match block {
        RtBlock::Generic {
            source,
            instructions,
            requires_recompile,
        } => {
            out.push_str(&format!(
                "{pad}GENERIC b{}{}\n",
                source.0,
                if *requires_recompile {
                    " [recompile]"
                } else {
                    ""
                }
            ));
            for i in instructions {
                out.push_str(&format!("{pad}  {}\n", i.render()));
            }
        }
        RtBlock::If {
            source,
            then_blocks,
            else_blocks,
            ..
        } => {
            out.push_str(&format!("{pad}IF b{}\n", source.0));
            for b in then_blocks {
                explain_block(b, depth + 1, out);
            }
            if !else_blocks.is_empty() {
                out.push_str(&format!("{pad}ELSE\n"));
                for b in else_blocks {
                    explain_block(b, depth + 1, out);
                }
            }
        }
        RtBlock::While {
            source,
            body,
            max_iter_hint,
            ..
        } => {
            out.push_str(&format!(
                "{pad}WHILE b{}{}\n",
                source.0,
                max_iter_hint
                    .map(|n| format!(" [maxiter={n}]"))
                    .unwrap_or_default()
            ));
            for b in body {
                explain_block(b, depth + 1, out);
            }
        }
        RtBlock::For {
            source,
            var,
            body,
            iterations_hint,
            ..
        } => {
            out.push_str(&format!(
                "{pad}FOR b{} {var}{}\n",
                source.0,
                iterations_hint
                    .map(|n| format!(" [iters={n}]"))
                    .unwrap_or_default()
            ));
            for b in body {
                explain_block(b, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instructions::{CpInstruction, OpCode};
    use crate::value::Operand;

    fn cp_noop(out_name: &str) -> Instruction {
        Instruction::Cp(CpInstruction {
            opcode: OpCode::Assign,
            operands: vec![Operand::num(1.0)],
            output: Some(out_name.into()),
            operand_mcs: vec![MatrixCharacteristics::scalar()],
            output_mc: MatrixCharacteristics::scalar(),
            bound_bytes: None,
        })
    }

    fn generic(id: usize, n_instr: usize) -> RtBlock {
        RtBlock::Generic {
            source: BlockId(id),
            instructions: (0..n_instr).map(|i| cp_noop(&format!("v{i}"))).collect(),
            requires_recompile: false,
        }
    }

    #[test]
    fn block_counting() {
        let prog = RuntimeProgram {
            blocks: vec![
                generic(0, 2),
                RtBlock::While {
                    source: BlockId(1),
                    pred: Predicate {
                        instructions: vec![cp_noop("p")],
                        result_var: "p".into(),
                    },
                    body: vec![generic(2, 1)],
                    max_iter_hint: Some(5),
                },
            ],
            ..Default::default()
        };
        assert_eq!(prog.num_blocks(), 3);
        assert_eq!(prog.count_mr_jobs(), 0);
    }

    #[test]
    fn visit_generic_order() {
        let tree = RtBlock::While {
            source: BlockId(0),
            pred: Predicate {
                instructions: vec![],
                result_var: "p".into(),
            },
            body: vec![generic(1, 0), generic(2, 0)],
            max_iter_hint: None,
        };
        let mut seen = Vec::new();
        tree.visit_generic(&mut |b| seen.push(b.source().0));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn explain_renders_structure() {
        let prog = RuntimeProgram {
            blocks: vec![RtBlock::If {
                source: BlockId(0),
                pred: Predicate {
                    instructions: vec![],
                    result_var: "c".into(),
                },
                then_blocks: vec![generic(1, 1)],
                else_blocks: vec![generic(2, 1)],
            }],
            ..Default::default()
        };
        let text = prog.explain();
        assert!(text.contains("IF b0"));
        assert!(text.contains("ELSE"));
        assert!(text.contains("GENERIC b1"));
    }
}

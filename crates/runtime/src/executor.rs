//! Semantic executor for runtime programs.
//!
//! Executes CP instructions on real matrices through the buffer pool, and
//! MR-job instructions by running their packed map/reduce operators
//! in-process (value-equivalent to distributed execution). Timing of
//! distributed execution is modeled by `reml-sim`; this executor answers
//! "what values does the program compute" and produces the IO/eviction
//! statistics the simulator converts to time.

use std::collections::HashMap;
use std::fmt;

use reml_matrix::MatrixCharacteristics;
#[cfg(feature = "legacy-interpreter")]
use reml_matrix::{BinaryOp, Matrix};

use crate::bufferpool::BufferPool;
use crate::hdfs::HdfsStore;
use crate::instructions::Instruction;
#[cfg(feature = "legacy-interpreter")]
use crate::instructions::{CpInstruction, MrJobInstruction, OpCode};
#[cfg(feature = "legacy-interpreter")]
use crate::program::{Predicate, RtBlock, RuntimeProgram};
#[cfg(feature = "legacy-interpreter")]
use crate::value::Operand;
use crate::value::ScalarValue;

/// Execution statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// CP instructions executed.
    pub cp_instructions: u64,
    /// MR jobs executed.
    pub mr_jobs: u64,
    /// Loop iterations executed.
    pub loop_iterations: u64,
    /// Dynamic recompilations performed (hook invocations that returned a
    /// new plan).
    pub recompilations: u64,
    /// Lines printed by `print`.
    pub printed: Vec<String>,
}

/// Errors during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A referenced variable does not exist.
    UnknownVariable(String),
    /// An operand had the wrong type (scalar where matrix expected etc).
    TypeError(String),
    /// The underlying matrix kernel failed.
    Matrix(reml_matrix::MatrixError),
    /// A persistent read path is missing from the HDFS store.
    MissingInput(String),
    /// Iteration guard: a while loop exceeded the hard safety bound.
    RunawayLoop(usize),
    /// A produced matrix pushed the executor past its OOM limit — the
    /// runtime surface of the simulator's task-OOM fault: the caller
    /// (AM) recompiles the block to a distributed plan at actual sizes.
    OutOfMemory {
        /// Bytes the operation needed resident.
        needed_bytes: u64,
        /// Configured OOM limit.
        limit_bytes: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownVariable(v) => write!(f, "unknown variable '{v}'"),
            ExecError::TypeError(m) => write!(f, "type error: {m}"),
            ExecError::Matrix(e) => write!(f, "matrix error: {e}"),
            ExecError::MissingInput(p) => write!(f, "missing HDFS input '{p}'"),
            ExecError::RunawayLoop(n) => write!(f, "while loop exceeded {n} iterations"),
            ExecError::OutOfMemory {
                needed_bytes,
                limit_bytes,
            } => write!(
                f,
                "out of memory: needed {needed_bytes} bytes resident, limit {limit_bytes}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<reml_matrix::MatrixError> for ExecError {
    fn from(e: reml_matrix::MatrixError) -> Self {
        ExecError::Matrix(e)
    }
}

/// Hook invoked before executing a generic block marked
/// `requires_recompile`: given the source block id and the *actual*
/// characteristics of all live matrix variables, return replacement
/// instructions (dynamic recompilation, §4) or `None` to keep the plan.
pub trait RecompileHook {
    /// Produce a replacement instruction list for the block, or None.
    fn recompile(
        &mut self,
        source: reml_lang::BlockId,
        live_vars: &HashMap<String, MatrixCharacteristics>,
    ) -> Option<Vec<Instruction>>;
}

/// A no-op hook (static execution).
pub struct NoRecompile;

impl RecompileHook for NoRecompile {
    fn recompile(
        &mut self,
        _source: reml_lang::BlockId,
        _live_vars: &HashMap<String, MatrixCharacteristics>,
    ) -> Option<Vec<Instruction>> {
        None
    }
}

/// Hard safety bound on while-loop iterations (scripts in this repo all
/// converge or carry explicit maxiter bounds far below this). Shared with
/// the bytecode VM so both interpreters abort identically.
pub(crate) const MAX_WHILE_ITERATIONS: usize = 100_000;

/// Report of one AM runtime migration (§4.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Dirty variables exported to HDFS.
    pub dirty_exported: u64,
    /// Bytes of dirty state written.
    pub dirty_bytes: u64,
    /// Total variables carried across the migration.
    pub variables: u64,
}

/// The CP executor: buffer pool + scalar variables + HDFS store.
pub struct Executor {
    /// Matrix variables.
    pub pool: BufferPool,
    /// Scalar variables.
    pub scalars: HashMap<String, ScalarValue>,
    /// The HDFS stand-in.
    pub hdfs: HdfsStore,
    /// Accumulated statistics.
    pub stats: ExecStats,
    /// Hard OOM watermark: a computed matrix that would push resident
    /// bytes past this limit aborts execution with
    /// [`ExecError::OutOfMemory`] instead of spilling. `None` (default)
    /// keeps the pure spill-to-disk behaviour.
    #[cfg_attr(not(feature = "legacy-interpreter"), allow(dead_code))]
    oom_limit_bytes: Option<u64>,
    /// Opt-in memory-observation recording (the planlint soundness audit).
    #[cfg_attr(not(feature = "legacy-interpreter"), allow(dead_code))]
    observe_memory: bool,
    observations: Vec<MemObservation>,
}

/// One comparison between the compiler's memory prediction for a CP
/// instruction and the actual operator footprint at execution time.
/// Recorded opt-in via [`Executor::enable_memory_observation`]; the
/// planlint memory-soundness audit aggregates these per opcode.
#[derive(Debug, Clone)]
pub struct MemObservation {
    /// Opcode mnemonic (e.g. `ba+*`).
    pub opcode: String,
    /// Compile-time estimate: operand + output sizes from the recorded
    /// [`MatrixCharacteristics`]; `None` when any operand size was
    /// unknown at compile time.
    pub predicted_bytes: Option<u64>,
    /// Actual operand + output bytes held in the buffer pool.
    pub actual_bytes: u64,
    /// Pool resident bytes right after the instruction.
    pub resident_bytes: u64,
    /// Sound upper bound from the `sizebound` interval analysis, copied
    /// from the instruction when the plan was annotated; `None` when no
    /// finite bound was proven. The soundness audit asserts
    /// `actual_bytes <= bound_bytes` whenever a bound exists.
    pub bound_bytes: Option<u64>,
    /// Measured wall time of the instruction in nanoseconds. Recorded
    /// whenever memory observation is enabled (independent of the trace
    /// recorder and its deterministic mode), so calibration always has a
    /// time signal.
    pub wall_ns: u64,
    /// Predicted FLOPs from the analytic flop model, `None` when operand
    /// sizes were unknown at compile time.
    pub predicted_flops: Option<f64>,
    /// For fused VM chains: the constituent opcodes with their shares of
    /// the prediction, so composite `fused(...)` rows can be backfilled
    /// onto per-opcode calibration rows. Empty otherwise.
    pub constituents: Vec<crate::vm::ObservedConstituent>,
}

impl Executor {
    /// New executor with the given CP budget (bytes) and staged inputs.
    pub fn new(cp_budget_bytes: u64, hdfs: HdfsStore) -> Self {
        Executor {
            pool: BufferPool::new(cp_budget_bytes),
            scalars: HashMap::new(),
            hdfs,
            stats: ExecStats::default(),
            oom_limit_bytes: None,
            observe_memory: false,
            observations: Vec::new(),
        }
    }

    /// Start recording one [`MemObservation`] per executed CP
    /// instruction (the differential memory-soundness audit). Off by
    /// default: observation clones no data but grows a vector.
    pub fn enable_memory_observation(&mut self) {
        self.observe_memory = true;
    }

    /// Drain the recorded memory observations.
    pub fn take_memory_observations(&mut self) -> Vec<MemObservation> {
        std::mem::take(&mut self.observations)
    }

    /// Builder: fail with [`ExecError::OutOfMemory`] when a computed
    /// matrix would push resident bytes past `limit_bytes` (fault
    /// injection / JVM-heap modeling; the buffer pool otherwise spills
    /// silently).
    pub fn with_oom_limit(mut self, limit_bytes: u64) -> Self {
        self.oom_limit_bytes = Some(limit_bytes);
        self
    }

    /// Execute a whole program with an optional recompilation hook.
    #[cfg(feature = "legacy-interpreter")]
    pub fn run(
        &mut self,
        program: &RuntimeProgram,
        hook: &mut dyn RecompileHook,
    ) -> Result<(), ExecError> {
        for block in &program.blocks {
            self.run_block(block, hook)?;
        }
        Ok(())
    }

    /// §4.1 AM runtime migration: materialize the current runtime state
    /// — all *dirty* live variables are exported to HDFS (clean ones
    /// already have an up-to-date HDFS representation) — then resume in a
    /// "new container" with a buffer pool of the given capacity. Safe at
    /// program-block boundaries because all operators are stateless and
    /// intermediates are bound to logical variable names; scalars travel
    /// with the (tiny) serialized position state.
    pub fn migrate(&mut self, new_capacity_bytes: u64) -> MigrationReport {
        let mut report = MigrationReport::default();
        let names = self.pool.variables();
        report.variables = names.len() as u64;
        // Export dirty variables (the §4.1 "write all dirty variables").
        for name in &names {
            if self.pool.is_dirty(name) == Some(true) {
                if let Some(m) = self.pool.peek(name).cloned() {
                    report.dirty_exported += 1;
                    report.dirty_bytes += m.size_bytes();
                    self.hdfs.write(format!("am_state/{name}"), m);
                    self.pool.mark_clean(name);
                }
            } else if let Some(m) = self.pool.peek(name).cloned() {
                // Clean variables are staged without IO accounting: their
                // HDFS representation is already current.
                self.hdfs.stage(format!("am_state/{name}"), m);
            }
        }
        // "Start" the new container: a fresh pool at the new capacity,
        // restoring the variable stack from the materialized state.
        let mut new_pool = BufferPool::new(new_capacity_bytes);
        for name in &names {
            if let Some(m) = self.hdfs.peek(&format!("am_state/{name}")).cloned() {
                new_pool.put_with_dirty(name, m, false);
            }
        }
        self.pool = new_pool;
        report
    }

    /// Characteristics of all live matrix variables (input to dynamic
    /// recompilation).
    pub fn live_matrix_characteristics(&self) -> HashMap<String, MatrixCharacteristics> {
        self.pool
            .variables()
            .into_iter()
            .filter_map(|name| {
                let mc = self.pool.peek(&name)?.characteristics();
                Some((name, mc))
            })
            .collect()
    }

    #[cfg(feature = "legacy-interpreter")]
    fn run_block(
        &mut self,
        block: &RtBlock,
        hook: &mut dyn RecompileHook,
    ) -> Result<(), ExecError> {
        match block {
            RtBlock::Generic {
                source,
                instructions,
                requires_recompile,
            } => {
                let plan;
                let instructions = if *requires_recompile {
                    match hook.recompile(*source, &self.live_matrix_characteristics()) {
                        Some(new_plan) => {
                            self.stats.recompilations += 1;
                            plan = new_plan;
                            &plan
                        }
                        None => instructions,
                    }
                } else {
                    instructions
                };
                for instr in instructions {
                    self.execute(instr)?;
                }
                Ok(())
            }
            RtBlock::If {
                pred,
                then_blocks,
                else_blocks,
                ..
            } => {
                if self.eval_predicate(pred)? {
                    for b in then_blocks {
                        self.run_block(b, hook)?;
                    }
                } else {
                    for b in else_blocks {
                        self.run_block(b, hook)?;
                    }
                }
                Ok(())
            }
            RtBlock::While { pred, body, .. } => {
                let mut iters = 0usize;
                while self.eval_predicate(pred)? {
                    iters += 1;
                    if iters > MAX_WHILE_ITERATIONS {
                        return Err(ExecError::RunawayLoop(MAX_WHILE_ITERATIONS));
                    }
                    self.stats.loop_iterations += 1;
                    for b in body {
                        self.run_block(b, hook)?;
                    }
                }
                Ok(())
            }
            RtBlock::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let from_v = self.eval_predicate_num(from)?;
                let to_v = self.eval_predicate_num(to)?;
                let mut i = from_v;
                while i <= to_v {
                    self.scalars.insert(var.clone(), ScalarValue::Num(i));
                    self.stats.loop_iterations += 1;
                    for b in body {
                        self.run_block(b, hook)?;
                    }
                    i += 1.0;
                }
                Ok(())
            }
        }
    }

    #[cfg(feature = "legacy-interpreter")]
    fn eval_predicate(&mut self, pred: &Predicate) -> Result<bool, ExecError> {
        for instr in &pred.instructions {
            self.execute(instr)?;
        }
        let v = self
            .scalars
            .get(&pred.result_var)
            .ok_or_else(|| ExecError::UnknownVariable(pred.result_var.clone()))?;
        v.as_bool().ok_or_else(|| {
            ExecError::TypeError(format!("predicate '{}' not boolean", pred.result_var))
        })
    }

    #[cfg(feature = "legacy-interpreter")]
    fn eval_predicate_num(&mut self, pred: &Predicate) -> Result<f64, ExecError> {
        for instr in &pred.instructions {
            self.execute(instr)?;
        }
        let v = self
            .scalars
            .get(&pred.result_var)
            .ok_or_else(|| ExecError::UnknownVariable(pred.result_var.clone()))?;
        v.as_f64()
            .ok_or_else(|| ExecError::TypeError(format!("'{}' not numeric", pred.result_var)))
    }

    /// Execute one instruction. When tracing is enabled each CP
    /// instruction's wall time feeds the per-opcode histograms
    /// (`exec.op.<mnemonic>`) behind `profile_report`'s attribution
    /// table; under a deterministic (sim-clock) recorder the wall-time
    /// measurement is skipped so traces stay bit-reproducible.
    #[cfg(feature = "legacy-interpreter")]
    pub fn execute(&mut self, instr: &Instruction) -> Result<(), ExecError> {
        match instr {
            Instruction::Cp(cp) => {
                self.stats.cp_instructions += 1;
                let trace_timed = reml_trace::enabled() && !reml_trace::deterministic();
                let timed = trace_timed || self.observe_memory;
                let t0 = timed.then(std::time::Instant::now);
                self.execute_op(&cp.opcode, &cp.operands, cp.output.as_deref())?;
                let wall_ns = t0.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
                if trace_timed {
                    reml_trace::metrics()
                        .histogram(&format!("exec.op.{}", cp.opcode.mnemonic()))
                        .observe(wall_ns / 1_000);
                }
                if self.observe_memory {
                    self.record_observation(cp, wall_ns);
                }
                Ok(())
            }
            Instruction::MrJob(job) => {
                self.stats.mr_jobs += 1;
                reml_trace::count("exec.mr_jobs", 1);
                let timed = reml_trace::enabled() && !reml_trace::deterministic();
                let t0 = timed.then(std::time::Instant::now);
                let result = self.execute_mr_job(job);
                if let Some(t0) = t0 {
                    reml_trace::metrics()
                        .histogram("exec.op.mr_job")
                        .observe(t0.elapsed().as_micros() as u64);
                }
                result
            }
        }
    }

    /// Record predicted vs. actual footprint of a just-executed CP
    /// instruction. Prediction sums the compile-time operand/output
    /// characteristics (the same quantities `memest` budgets against);
    /// actual sums the live pool sizes of the distinct variables touched.
    #[cfg(feature = "legacy-interpreter")]
    fn record_observation(&mut self, cp: &CpInstruction, wall_ns: u64) {
        let mut predicted: Option<u64> = Some(0);
        for mc in cp.operand_mcs.iter().chain(std::iter::once(&cp.output_mc)) {
            predicted = match (predicted, mc.estimated_size_bytes()) {
                (Some(acc), Some(b)) => Some(acc + b),
                _ => None,
            };
        }
        let mut touched: Vec<&str> = cp
            .operands
            .iter()
            .filter_map(|o| match o {
                Operand::Var(name) => Some(name.as_str()),
                Operand::Lit(_) => None,
            })
            .chain(cp.output.as_deref())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let actual_bytes = touched
            .iter()
            .filter_map(|name| self.pool.peek(name).map(Matrix::size_bytes))
            .sum();
        if reml_trace::enabled() {
            let mut fields: Vec<(&'static str, reml_trace::FieldValue)> = vec![
                ("opcode", reml_trace::FieldValue::Str(cp.opcode.mnemonic())),
                ("actual_bytes", reml_trace::FieldValue::U64(actual_bytes)),
                (
                    "resident_bytes",
                    reml_trace::FieldValue::U64(self.pool.resident_bytes()),
                ),
            ];
            if let Some(p) = predicted {
                fields.push(("predicted_bytes", reml_trace::FieldValue::U64(p)));
            }
            if let Some(b) = cp.bound_bytes {
                fields.push(("bound_bytes", reml_trace::FieldValue::U64(b)));
            }
            reml_trace::event("exec.mem_observation", &fields);
        }
        self.observations.push(MemObservation {
            opcode: cp.opcode.mnemonic(),
            predicted_bytes: predicted,
            actual_bytes,
            resident_bytes: self.pool.resident_bytes(),
            bound_bytes: cp.bound_bytes,
            wall_ns,
            predicted_flops: crate::flops::predicted_flops(
                &cp.opcode,
                &cp.operand_mcs,
                &cp.output_mc,
            ),
            constituents: Vec::new(),
        });
    }

    /// Execute an MR job value-equivalently: run map operators then reduce
    /// operators in order. Job outputs are also exported to HDFS (MR
    /// intermediates are exchanged through HDFS, §2.1).
    #[cfg(feature = "legacy-interpreter")]
    fn execute_mr_job(&mut self, job: &MrJobInstruction) -> Result<(), ExecError> {
        for op in job.mappers.iter().chain(job.reducers.iter()) {
            self.execute_op(&op.opcode, &op.operands, op.output.as_deref())?;
        }
        for (name, _) in &job.outputs {
            let m = self
                .pool
                .get(name)
                .ok_or_else(|| ExecError::UnknownVariable(name.clone()))?;
            self.hdfs.write(format!("tmp/{name}"), m);
            self.pool.mark_clean(name);
        }
        Ok(())
    }

    #[cfg(feature = "legacy-interpreter")]
    fn matrix_operand(&mut self, op: &Operand) -> Result<Matrix, ExecError> {
        match op {
            Operand::Var(name) => {
                if let Some(m) = self.pool.get(name) {
                    Ok(m)
                } else if let Some(s) = self.scalars.get(name) {
                    // Scalar used in matrix position: 1x1.
                    let v = s
                        .as_f64()
                        .ok_or_else(|| ExecError::TypeError(format!("'{name}' not numeric")))?;
                    Ok(Matrix::constant(1, 1, v))
                } else {
                    Err(ExecError::UnknownVariable(name.clone()))
                }
            }
            Operand::Lit(v) => {
                let f = v
                    .as_f64()
                    .ok_or_else(|| ExecError::TypeError("literal not numeric".into()))?;
                Ok(Matrix::constant(1, 1, f))
            }
        }
    }

    #[cfg(feature = "legacy-interpreter")]
    fn scalar_operand(&mut self, op: &Operand) -> Result<ScalarValue, ExecError> {
        match op {
            Operand::Var(name) => {
                if let Some(s) = self.scalars.get(name) {
                    Ok(s.clone())
                } else if let Some(m) = self.pool.get(name) {
                    let v = m.as_scalar().map_err(ExecError::Matrix)?;
                    Ok(ScalarValue::Num(v))
                } else {
                    Err(ExecError::UnknownVariable(name.clone()))
                }
            }
            Operand::Lit(v) => Ok(v.clone()),
        }
    }

    #[cfg(feature = "legacy-interpreter")]
    fn scalar_num(&mut self, op: &Operand) -> Result<f64, ExecError> {
        self.scalar_operand(op)?
            .as_f64()
            .ok_or_else(|| ExecError::TypeError("expected numeric scalar".into()))
    }

    #[cfg(feature = "legacy-interpreter")]
    fn put_matrix(&mut self, name: Option<&str>, m: Matrix) -> Result<(), ExecError> {
        if let Some(name) = name {
            if let Some(limit) = self.oom_limit_bytes {
                let needed = self.pool.resident_bytes().saturating_add(m.size_bytes());
                if needed > limit {
                    reml_trace::event!("exec.oom", needed_bytes = needed, limit_bytes = limit);
                    return Err(ExecError::OutOfMemory {
                        needed_bytes: needed,
                        limit_bytes: limit,
                    });
                }
            }
            self.scalars.remove(name);
            self.pool.put(name, m);
        }
        Ok(())
    }

    #[cfg(feature = "legacy-interpreter")]
    fn put_scalar(&mut self, name: Option<&str>, v: ScalarValue) {
        if let Some(name) = name {
            self.pool.remove(name);
            self.scalars.insert(name.to_string(), v);
        }
    }

    #[cfg(feature = "legacy-interpreter")]
    fn execute_op(
        &mut self,
        opcode: &OpCode,
        operands: &[Operand],
        output: Option<&str>,
    ) -> Result<(), ExecError> {
        match opcode {
            OpCode::PersistentRead { path } => {
                let m = self
                    .hdfs
                    .read(path)
                    .ok_or_else(|| ExecError::MissingInput(path.clone()))?;
                if let Some(name) = output {
                    self.scalars.remove(name);
                    self.pool.put_with_dirty(name, m, false);
                }
                Ok(())
            }
            OpCode::PersistentWrite { path } => {
                let m = self.matrix_operand(&operands[0])?;
                self.hdfs.write(path.clone(), m);
                if let Some(name) = operands[0].as_var() {
                    self.pool.mark_clean(name);
                }
                Ok(())
            }
            OpCode::DataGenConst => {
                let v = self.scalar_num(&operands[0])?;
                let rows = self.scalar_num(&operands[1])? as usize;
                let cols = self.scalar_num(&operands[2])? as usize;
                self.put_matrix(output, Matrix::constant(rows, cols, v))?;
                Ok(())
            }
            OpCode::DataGenSeq => {
                let from = self.scalar_num(&operands[0])?;
                let to = self.scalar_num(&operands[1])?;
                let by = if operands.len() > 2 {
                    self.scalar_num(&operands[2])?
                } else if from <= to {
                    1.0
                } else {
                    -1.0
                };
                self.put_matrix(
                    output,
                    Matrix::Dense(reml_matrix::generate::seq_by(from, to, by)),
                )?;
                Ok(())
            }
            OpCode::DataGenRand => {
                let rows = self.scalar_num(&operands[0])? as usize;
                let cols = self.scalar_num(&operands[1])? as usize;
                let sparsity = self.scalar_num(&operands[2])?;
                let seed = self.scalar_num(&operands[3])? as u64;
                let m = if sparsity >= 1.0 {
                    Matrix::Dense(reml_matrix::generate::rand_dense(
                        rows, cols, 0.0, 1.0, seed,
                    ))
                } else {
                    Matrix::from_sparse_auto(reml_matrix::generate::rand_sparse(
                        rows, cols, sparsity, 0.0, 1.0, seed,
                    ))
                };
                self.put_matrix(output, m)?;
                Ok(())
            }
            OpCode::MatMult => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.matmult(&b)?)?;
                Ok(())
            }
            OpCode::Tsmm => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_matrix(output, a.tsmm())?;
                Ok(())
            }
            OpCode::MatMultTransLeft => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.transpose().matmult(&b)?)?;
                Ok(())
            }
            OpCode::MmChain => {
                // t(X) %*% (X %*% v): operands [X, v].
                let x = self.matrix_operand(&operands[0])?;
                let v = self.matrix_operand(&operands[1])?;
                let xv = x.matmult(&v)?;
                self.put_matrix(output, x.transpose().matmult(&xv)?)?;
                Ok(())
            }
            OpCode::Solve => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.solve(&b)?)?;
                Ok(())
            }
            OpCode::Transpose => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_matrix(output, a.transpose())?;
                Ok(())
            }
            OpCode::Diag => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_matrix(output, a.diag())?;
                Ok(())
            }
            OpCode::BinaryMM(op) => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                // 1x1 matrices degrade to scalar ops per DML semantics.
                let out = if a.rows() == 1 && a.cols() == 1 && (b.rows() > 1 || b.cols() > 1) {
                    b.scalar_binary(*op, a.get(0, 0))
                } else if b.rows() == 1 && b.cols() == 1 && (a.rows() > 1 || a.cols() > 1) {
                    a.binary_scalar(*op, b.get(0, 0))
                } else {
                    a.binary(*op, &b)?
                };
                self.put_matrix(output, out)?;
                Ok(())
            }
            OpCode::BinaryMS(op) => {
                let a = self.matrix_operand(&operands[0])?;
                let s = self.scalar_num(&operands[1])?;
                self.put_matrix(output, a.binary_scalar(*op, s))?;
                Ok(())
            }
            OpCode::BinarySM(op) => {
                let s = self.scalar_num(&operands[0])?;
                let a = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.scalar_binary(*op, s))?;
                Ok(())
            }
            OpCode::BinarySS(op) => {
                let a = self.scalar_operand(&operands[0])?;
                let b = self.scalar_operand(&operands[1])?;
                let result = match op {
                    BinaryOp::And | BinaryOp::Or => {
                        let (x, y) = (
                            a.as_bool().ok_or_else(|| {
                                ExecError::TypeError("non-boolean in logical op".into())
                            })?,
                            b.as_bool().ok_or_else(|| {
                                ExecError::TypeError("non-boolean in logical op".into())
                            })?,
                        );
                        ScalarValue::Bool(if *op == BinaryOp::And { x && y } else { x || y })
                    }
                    BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Less
                    | BinaryOp::LessEq
                    | BinaryOp::Greater
                    | BinaryOp::GreaterEq => {
                        let (x, y) = (
                            a.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                            b.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                        );
                        ScalarValue::Bool(op.apply(x, y) != 0.0)
                    }
                    _ => {
                        let (x, y) = (
                            a.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                            b.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                        );
                        ScalarValue::Num(op.apply(x, y))
                    }
                };
                self.put_scalar(output, result);
                Ok(())
            }
            OpCode::UnaryM(op) => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_matrix(output, a.unary(*op))?;
                Ok(())
            }
            OpCode::UnaryS(op) => {
                let v = self.scalar_num(&operands[0])?;
                self.put_scalar(output, ScalarValue::Num(op.apply(v)));
                Ok(())
            }
            OpCode::Agg(op) => {
                let a = self.matrix_operand(&operands[0])?;
                let out = a.aggregate(*op);
                if op.is_full_reduction() {
                    let v = out.as_scalar().map_err(ExecError::Matrix)?;
                    self.put_scalar(output, ScalarValue::Num(v));
                } else {
                    self.put_matrix(output, out)?;
                }
                Ok(())
            }
            OpCode::TableSeq => {
                let y = self.matrix_operand(&operands[0])?;
                let t = reml_matrix::generate::table_seq(&y.to_dense())?;
                self.put_matrix(output, t)?;
                Ok(())
            }
            OpCode::RightIndex => {
                let a = self.matrix_operand(&operands[0])?;
                let (rl, rh, cl, ch) = self.index_bounds(&operands[1..5], &a)?;
                self.put_matrix(output, a.slice(rl, rh, cl, ch)?)?;
                Ok(())
            }
            OpCode::LeftIndex => {
                let target = self.matrix_operand(&operands[0])?;
                let value = self.matrix_operand(&operands[1])?;
                let (rl, rh, cl, ch) = self.index_bounds(&operands[2..6], &target)?;
                let mut d = target.to_dense();
                let vd = value.to_dense();
                for (ri, r) in (rl..=rh).enumerate() {
                    for (ci, c) in (cl..=ch).enumerate() {
                        let v = if vd.rows() == 1 && vd.cols() == 1 {
                            vd.get(0, 0)
                        } else {
                            vd.get(ri, ci)
                        };
                        d.set(r, c, v);
                    }
                }
                self.put_matrix(output, Matrix::from_dense_auto(d))?;
                Ok(())
            }
            OpCode::Append => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.cbind(&b)?)?;
                Ok(())
            }
            OpCode::AppendR => {
                let a = self.matrix_operand(&operands[0])?;
                let b = self.matrix_operand(&operands[1])?;
                self.put_matrix(output, a.rbind(&b)?)?;
                Ok(())
            }
            OpCode::NRow => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_scalar(output, ScalarValue::Num(a.rows() as f64));
                Ok(())
            }
            OpCode::NCol => {
                let a = self.matrix_operand(&operands[0])?;
                self.put_scalar(output, ScalarValue::Num(a.cols() as f64));
                Ok(())
            }
            OpCode::CastScalar => {
                let a = self.matrix_operand(&operands[0])?;
                let v = a.as_scalar().map_err(ExecError::Matrix)?;
                self.put_scalar(output, ScalarValue::Num(v));
                Ok(())
            }
            OpCode::CastMatrix => {
                let v = self.scalar_num(&operands[0])?;
                self.put_matrix(output, Matrix::constant(1, 1, v))?;
                Ok(())
            }
            OpCode::Assign => {
                match &operands[0] {
                    Operand::Var(name) => {
                        if let Some(s) = self.scalars.get(name).cloned() {
                            self.put_scalar(output, s);
                        } else if let Some(m) = self.pool.get(name) {
                            self.put_matrix(output, m)?;
                        } else {
                            return Err(ExecError::UnknownVariable(name.clone()));
                        }
                    }
                    Operand::Lit(v) => self.put_scalar(output, v.clone()),
                }
                Ok(())
            }
            OpCode::Concat => {
                let a = self.scalar_operand(&operands[0])?;
                let b = self.scalar_operand(&operands[1])?;
                self.put_scalar(
                    output,
                    ScalarValue::Str(format!("{}{}", a.render(), b.render())),
                );
                Ok(())
            }
            OpCode::Print => {
                let v = self.scalar_operand(&operands[0])?;
                self.stats.printed.push(v.render());
                Ok(())
            }
            OpCode::RmVar => {
                for op in operands {
                    if let Operand::Var(name) = op {
                        self.pool.remove(name);
                        self.scalars.remove(name);
                    }
                }
                Ok(())
            }
        }
    }

    /// Resolve 1-based inclusive index bounds, with 0 meaning "open" (the
    /// compiler encodes `X[, 1:k]` row bounds as 0/0 = full range).
    #[cfg(feature = "legacy-interpreter")]
    fn index_bounds(
        &mut self,
        ops: &[Operand],
        m: &Matrix,
    ) -> Result<(usize, usize, usize, usize), ExecError> {
        let rl = self.scalar_num(&ops[0])? as usize;
        let rh = self.scalar_num(&ops[1])? as usize;
        let cl = self.scalar_num(&ops[2])? as usize;
        let ch = self.scalar_num(&ops[3])? as usize;
        let rl = if rl == 0 { 1 } else { rl };
        let rh = if rh == 0 { m.rows() } else { rh };
        let cl = if cl == 0 { 1 } else { cl };
        let ch = if ch == 0 { m.cols() } else { ch };
        Ok((rl - 1, rh - 1, cl - 1, ch - 1))
    }
}

#[cfg(all(test, feature = "legacy-interpreter"))]
mod tests {
    use super::*;
    use crate::instructions::CpInstruction;
    use reml_matrix::AggOp;

    fn cp(opcode: OpCode, operands: Vec<Operand>, output: Option<&str>) -> Instruction {
        Instruction::Cp(CpInstruction {
            opcode,
            operands,
            output: output.map(str::to_string),
            operand_mcs: vec![],
            output_mc: MatrixCharacteristics::unknown(),
            bound_bytes: None,
        })
    }

    fn exec() -> Executor {
        Executor::new(1 << 30, HdfsStore::new())
    }

    #[test]
    fn oom_limit_aborts_instead_of_spilling() {
        // 100x100 doubles = 80 KB output against a 10 KB limit.
        let mut e = exec().with_oom_limit(10 * 1024);
        let err = e
            .execute(&cp(
                OpCode::DataGenConst,
                vec![Operand::num(1.0), Operand::num(100.0), Operand::num(100.0)],
                Some("A"),
            ))
            .unwrap_err();
        let ExecError::OutOfMemory {
            needed_bytes,
            limit_bytes,
        } = err
        else {
            panic!("expected OutOfMemory, got {err:?}");
        };
        assert!(needed_bytes > limit_bytes);
        assert_eq!(limit_bytes, 10 * 1024);
        // Without the limit the same program spills and succeeds.
        let mut e = exec();
        e.execute(&cp(
            OpCode::DataGenConst,
            vec![Operand::num(1.0), Operand::num(100.0), Operand::num(100.0)],
            Some("A"),
        ))
        .unwrap();
        assert!(e.pool.contains("A"));
    }

    #[test]
    fn datagen_and_aggregate() {
        let mut e = exec();
        e.execute(&cp(
            OpCode::DataGenConst,
            vec![Operand::num(2.0), Operand::num(3.0), Operand::num(4.0)],
            Some("A"),
        ))
        .unwrap();
        e.execute(&cp(
            OpCode::Agg(AggOp::Sum),
            vec![Operand::var("A")],
            Some("s"),
        ))
        .unwrap();
        assert_eq!(e.scalars["s"], ScalarValue::Num(24.0));
    }

    #[test]
    fn persistent_read_write() {
        let mut e = exec();
        e.hdfs.stage("in", Matrix::constant(2, 2, 5.0));
        e.execute(&cp(
            OpCode::PersistentRead { path: "in".into() },
            vec![],
            Some("X"),
        ))
        .unwrap();
        assert_eq!(e.pool.is_dirty("X"), Some(false));
        e.execute(&cp(
            OpCode::PersistentWrite { path: "out".into() },
            vec![Operand::var("X")],
            None,
        ))
        .unwrap();
        assert!(e.hdfs.exists("out"));
    }

    #[test]
    fn missing_input_errors() {
        let mut e = exec();
        let err = e
            .execute(&cp(
                OpCode::PersistentRead {
                    path: "gone".into(),
                },
                vec![],
                Some("X"),
            ))
            .unwrap_err();
        assert!(matches!(err, ExecError::MissingInput(_)));
    }

    #[test]
    fn matmult_pipeline() {
        let mut e = exec();
        e.hdfs.stage(
            "X",
            Matrix::Dense(
                reml_matrix::DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
            ),
        );
        e.execute(&cp(
            OpCode::PersistentRead { path: "X".into() },
            vec![],
            Some("X"),
        ))
        .unwrap();
        e.execute(&cp(OpCode::Transpose, vec![Operand::var("X")], Some("Xt")))
            .unwrap();
        e.execute(&cp(
            OpCode::MatMult,
            vec![Operand::var("Xt"), Operand::var("X")],
            Some("G"),
        ))
        .unwrap();
        let g = e.pool.get("G").unwrap();
        assert_eq!(g.get(0, 0), 10.0);
        assert_eq!(g.get(1, 1), 20.0);
    }

    #[test]
    fn mmchain_equals_two_step() {
        let mut e = exec();
        e.pool.put("X", Matrix::constant(4, 3, 2.0));
        e.pool.put("v", Matrix::constant(3, 1, 1.0));
        e.execute(&cp(
            OpCode::MmChain,
            vec![Operand::var("X"), Operand::var("v")],
            Some("out"),
        ))
        .unwrap();
        // X v = 6 per row; t(X) * (6...) = 4 * 2 * 6 = 48 per entry.
        assert_eq!(e.pool.get("out").unwrap().get(0, 0), 48.0);
    }

    #[test]
    fn scalar_arithmetic_and_logic() {
        let mut e = exec();
        e.execute(&cp(
            OpCode::BinarySS(BinaryOp::Add),
            vec![Operand::num(2.0), Operand::num(3.0)],
            Some("a"),
        ))
        .unwrap();
        assert_eq!(e.scalars["a"], ScalarValue::Num(5.0));
        e.execute(&cp(
            OpCode::BinarySS(BinaryOp::Less),
            vec![Operand::var("a"), Operand::num(10.0)],
            Some("c"),
        ))
        .unwrap();
        assert_eq!(e.scalars["c"], ScalarValue::Bool(true));
        e.execute(&cp(
            OpCode::BinarySS(BinaryOp::And),
            vec![Operand::var("c"), Operand::Lit(ScalarValue::Bool(false))],
            Some("d"),
        ))
        .unwrap();
        assert_eq!(e.scalars["d"], ScalarValue::Bool(false));
    }

    #[test]
    fn one_by_one_matrix_degrades_to_scalar_in_mm() {
        let mut e = exec();
        e.pool.put("v", Matrix::constant(3, 1, 2.0));
        e.pool.put("s", Matrix::constant(1, 1, 10.0));
        e.execute(&cp(
            OpCode::BinaryMM(BinaryOp::Mul),
            vec![Operand::var("v"), Operand::var("s")],
            Some("out"),
        ))
        .unwrap();
        assert_eq!(e.pool.get("out").unwrap().get(2, 0), 20.0);
    }

    #[test]
    fn right_and_left_indexing() {
        let mut e = exec();
        e.pool.put(
            "P",
            Matrix::Dense(
                reml_matrix::DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap(),
            ),
        );
        // P[, 1:2]
        e.execute(&cp(
            OpCode::RightIndex,
            vec![
                Operand::var("P"),
                Operand::num(0.0),
                Operand::num(0.0),
                Operand::num(1.0),
                Operand::num(2.0),
            ],
            Some("Q"),
        ))
        .unwrap();
        let q = e.pool.get("Q").unwrap();
        assert_eq!(q.cols(), 2);
        assert_eq!(q.get(1, 1), 5.0);
        // P[1, 1] = 99
        e.execute(&cp(
            OpCode::LeftIndex,
            vec![
                Operand::var("P"),
                Operand::num(99.0),
                Operand::num(1.0),
                Operand::num(1.0),
                Operand::num(1.0),
                Operand::num(1.0),
            ],
            Some("P"),
        ))
        .unwrap();
        assert_eq!(e.pool.get("P").unwrap().get(0, 0), 99.0);
    }

    #[test]
    fn while_loop_program() {
        use crate::program::{Predicate, RtBlock};
        let mut e = exec();
        e.scalars.insert("i".into(), ScalarValue::Num(0.0));
        let pred = Predicate {
            instructions: vec![cp(
                OpCode::BinarySS(BinaryOp::Less),
                vec![Operand::var("i"), Operand::num(5.0)],
                Some("__p"),
            )],
            result_var: "__p".into(),
        };
        let body = RtBlock::Generic {
            source: reml_lang::BlockId(1),
            instructions: vec![cp(
                OpCode::BinarySS(BinaryOp::Add),
                vec![Operand::var("i"), Operand::num(1.0)],
                Some("i"),
            )],
            requires_recompile: false,
        };
        let prog = RuntimeProgram {
            blocks: vec![RtBlock::While {
                source: reml_lang::BlockId(0),
                pred,
                body: vec![body],
                max_iter_hint: None,
            }],
            ..Default::default()
        };
        e.run(&prog, &mut NoRecompile).unwrap();
        assert_eq!(e.scalars["i"], ScalarValue::Num(5.0));
        assert_eq!(e.stats.loop_iterations, 5);
    }

    #[test]
    fn recompile_hook_invoked_and_replaces_plan() {
        struct Hook;
        impl RecompileHook for Hook {
            fn recompile(
                &mut self,
                _source: reml_lang::BlockId,
                _live: &HashMap<String, MatrixCharacteristics>,
            ) -> Option<Vec<Instruction>> {
                Some(vec![Instruction::Cp(CpInstruction {
                    opcode: OpCode::Assign,
                    operands: vec![Operand::num(42.0)],
                    output: Some("x".into()),
                    operand_mcs: vec![],
                    output_mc: MatrixCharacteristics::scalar(),
                    bound_bytes: None,
                })])
            }
        }
        let mut e = exec();
        let prog = RuntimeProgram {
            blocks: vec![RtBlock::Generic {
                source: reml_lang::BlockId(0),
                instructions: vec![cp(OpCode::Assign, vec![Operand::num(1.0)], Some("x"))],
                requires_recompile: true,
            }],
            ..Default::default()
        };
        e.run(&prog, &mut Hook).unwrap();
        assert_eq!(e.scalars["x"], ScalarValue::Num(42.0));
        assert_eq!(e.stats.recompilations, 1);
    }

    #[test]
    fn mr_job_executes_and_exports() {
        use crate::instructions::{MrLocation, MrOperator};
        let mut e = exec();
        e.pool.put("X", Matrix::constant(4, 2, 1.0));
        e.pool.put("v", Matrix::constant(2, 1, 3.0));
        let job = MrJobInstruction {
            hdfs_inputs: vec![("X".into(), MatrixCharacteristics::dense(4, 2))],
            broadcast_inputs: vec![("v".into(), MatrixCharacteristics::dense(2, 1))],
            mappers: vec![MrOperator {
                opcode: OpCode::MatMult,
                operands: vec![Operand::var("X"), Operand::var("v")],
                output: Some("q".into()),
                operand_mcs: vec![],
                output_mc: MatrixCharacteristics::dense(4, 1),
                location: MrLocation::Map,
                task_mem_mb: 0.0,
            }],
            reducers: vec![],
            outputs: vec![("q".into(), MatrixCharacteristics::dense(4, 1))],
            shuffle: vec![],
        };
        e.execute(&Instruction::MrJob(job)).unwrap();
        assert_eq!(e.pool.get("q").unwrap().get(0, 0), 6.0);
        assert!(e.hdfs.exists("tmp/q"));
        assert_eq!(e.stats.mr_jobs, 1);
    }

    #[test]
    fn print_and_concat() {
        let mut e = exec();
        e.execute(&cp(
            OpCode::Concat,
            vec![
                Operand::Lit(ScalarValue::Str("iter=".into())),
                Operand::num(3.0),
            ],
            Some("msg"),
        ))
        .unwrap();
        e.execute(&cp(OpCode::Print, vec![Operand::var("msg")], None))
            .unwrap();
        assert_eq!(e.stats.printed, vec!["iter=3".to_string()]);
    }

    #[test]
    fn rmvar_cleans_up() {
        let mut e = exec();
        e.pool.put("a", Matrix::constant(1, 1, 1.0));
        e.scalars.insert("b".into(), ScalarValue::Num(2.0));
        e.execute(&cp(
            OpCode::RmVar,
            vec![Operand::var("a"), Operand::var("b")],
            None,
        ))
        .unwrap();
        assert!(!e.pool.contains("a"));
        assert!(!e.scalars.contains_key("b"));
    }
}

//! Flat bytecode program representation.
//!
//! A [`VmProgram`] is the lowered form of a
//! [`RuntimeProgram`](crate::program::RuntimeProgram): every variable
//! name, path string, and literal has been resolved once at load time
//! into a compact `u32` index, so the executor's hot loop never hashes a
//! string. Instruction side data that only matters off the hot path
//! (mnemonics, compile-time characteristics, memory bounds) lives in a
//! separate [`InstrMeta`] table referenced by index.

use std::collections::HashMap;

use reml_lang::BlockId;
use reml_matrix::{AggOp, BinaryOp, UnaryOp};

use crate::value::ScalarValue;

/// Interned variable names: a bijection between names and dense `u32`
/// symbol ids. Symbol ids index both the VM's scalar frame and its
/// preresolved buffer-pool slot table.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
    sealed: bool,
}

impl SymbolTable {
    /// Intern a name, returning its stable symbol id.
    ///
    /// Looking up an already-interned name is always allowed; appending a
    /// *new* name to a sealed table is a lowering bug (the executor must
    /// never grow a program's table behind its back) and panics in debug
    /// builds. Fragment lowering extends via [`SymbolTable::extend_clone`].
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        debug_assert!(
            !self.sealed,
            "intern of new name {name:?} on a sealed symbol table"
        );
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Freeze the table: interning any *new* name afterwards panics in
    /// debug builds. Called at the end of lowering.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Whether the table has been sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// An unsealed clone — the one sanctioned way to extend a sealed
    /// program table (fragment lowering keeps existing ids stable and
    /// appends fragment-local names to the copy).
    pub fn extend_clone(&self) -> SymbolTable {
        SymbolTable {
            names: self.names.clone(),
            index: self.index.clone(),
            sealed: false,
        }
    }

    /// Look up a name without interning.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    /// The name of a symbol id.
    pub fn name(&self, sym: u32) -> &str {
        &self.names[sym as usize]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A preresolved instruction operand: a variable slot or a literal from
/// the constant pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arg {
    /// Variable by symbol id (scalar frame index == pool-slot index).
    Slot(u32),
    /// Literal by constant-pool index.
    Const(u32),
}

/// VM operation. Mirrors [`OpCode`](crate::instructions::OpCode) with
/// strings replaced by string-table indices, plus the two VM-only forms:
/// fused elementwise chains and MR jobs by table index.
#[derive(Debug, Clone, PartialEq)]
pub enum VmOp {
    /// Read a persistent dataset (path by string-table index).
    PRead {
        /// String-table index of the HDFS path.
        path: u32,
    },
    /// Write a variable to HDFS (path by string-table index).
    PWrite {
        /// String-table index of the HDFS path.
        path: u32,
    },
    /// `matrix(value, rows, cols)`.
    DataGenConst,
    /// `seq(from, to[, by])`.
    DataGenSeq,
    /// `rand(rows, cols, sparsity, seed)`.
    DataGenRand,
    /// Matrix multiply.
    MatMult,
    /// `t(A) %*% B` fused physical operator.
    MatMultTransLeft,
    /// `t(X) %*% X`.
    Tsmm,
    /// `t(X) %*% (X %*% v)`.
    MmChain,
    /// Dense linear solve.
    Solve,
    /// Transpose.
    Transpose,
    /// Diagonal extract/expand.
    Diag,
    /// Elementwise matrix-matrix binary.
    BinaryMM(BinaryOp),
    /// Matrix op scalar.
    BinaryMS(BinaryOp),
    /// Scalar op matrix.
    BinarySM(BinaryOp),
    /// Scalar op scalar.
    BinarySS(BinaryOp),
    /// Elementwise unary on a matrix.
    UnaryM(UnaryOp),
    /// Unary on a scalar.
    UnaryS(UnaryOp),
    /// Aggregation.
    Agg(AggOp),
    /// `table(seq(1, nrow(y)), y)`.
    TableSeq,
    /// Right indexing.
    RightIndex,
    /// Left indexing.
    LeftIndex,
    /// cbind.
    Append,
    /// rbind.
    AppendR,
    /// `nrow(X)`.
    NRow,
    /// `ncol(X)`.
    NCol,
    /// Cast 1×1 matrix to scalar.
    CastScalar,
    /// Cast scalar to 1×1 matrix.
    CastMatrix,
    /// Copy/rename.
    Assign,
    /// String concatenation.
    Concat,
    /// Print.
    Print,
    /// Remove variables.
    RmVar,
    /// Fused elementwise chain ([`FusedSpec`] by table index).
    Fused {
        /// Index into the program's fused-spec table.
        spec: u32,
    },
    /// MR-job instruction ([`VmMrJob`] by table index).
    MrJob {
        /// Index into the program's MR-job table.
        job: u32,
    },
}

/// One flat VM instruction: operation, preresolved operands, output
/// symbol, and a side-table index for off-hot-path metadata.
#[derive(Debug, Clone)]
pub struct VmInstr {
    /// Operation.
    pub op: VmOp,
    /// Operands in positional order.
    pub args: Box<[Arg]>,
    /// Output symbol id (None for sinks).
    pub out: Option<u32>,
    /// Index into the metadata side table.
    pub meta: u32,
}

/// Off-hot-path instruction metadata: everything the executor only needs
/// for tracing and memory observation, precomputed at lowering so the hot
/// loop allocates no strings.
#[derive(Debug, Clone)]
pub struct InstrMeta {
    /// Opcode mnemonic; fused chains use the stable composite form
    /// `fused(m1,m2,...)` so audit rows never show an unknown opcode.
    pub mnemonic: String,
    /// Precomputed histogram name `vm.op.<mnemonic>`.
    pub metric: String,
    /// Constituent CP-instruction count (1, or chain length for fused) so
    /// `ExecStats::cp_instructions` matches the tree interpreter exactly.
    pub cp_count: u64,
    /// Compile-time operand+output size estimate (the tree executor's
    /// `record_observation` fold), `None` if any size was unknown. For
    /// fused chains: the sum over constituents, which stays a sound
    /// prediction because each constituent prediction covers its step.
    pub predicted_bytes: Option<u64>,
    /// Sound memory bound from the sizebound analysis; for fused chains
    /// the sum of constituent bounds (`None` if any is unbounded).
    pub bound_bytes: Option<u64>,
    /// Sorted distinct symbols whose pool entries count toward the
    /// observation's `actual_bytes` (operand vars + output; fused chains
    /// exclude elided intermediates, which never reach the pool).
    pub touched: Box<[u32]>,
    /// Predicted FLOPs from the analytic model
    /// ([`flops::instruction_flops`](crate::flops::instruction_flops)),
    /// `None` when operand sizes were unknown at compile time. Fused
    /// chains sum their constituents.
    pub predicted_flops: Option<f64>,
    /// Per-step calibration rows for fused chains: each constituent's
    /// underlying opcode mnemonic with its share of the prediction, so a
    /// composite `fused(...)` observation can be backfilled onto the
    /// constituent opcodes. Empty for non-fused instructions.
    pub constituents: Box<[ObservedConstituent]>,
}

/// One constituent of a fused chain as seen by memory/time observation:
/// the underlying opcode mnemonic plus its share of the compile-time
/// prediction. Lets the calibration harvester attribute a composite
/// `fused(...)` observation back to per-opcode rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedConstituent {
    /// Underlying opcode mnemonic (e.g. `map+`, `s*`, `u^`).
    pub mnemonic: String,
    /// Predicted FLOPs for this step, `None` if its sizes were unknown.
    pub predicted_flops: Option<f64>,
    /// Predicted operand+output bytes for this step.
    pub predicted_bytes: Option<u64>,
}

/// Operand of one step inside a fused chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedArg {
    /// The value flowing from the previous step of the chain.
    Flow,
    /// External variable by symbol id.
    Slot(u32),
    /// Literal by constant-pool index.
    Const(u32),
}

/// Operation kind of one fused step (the four fusible elementwise forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOpKind {
    /// Matrix ∘ matrix.
    MM(BinaryOp),
    /// Matrix ∘ scalar.
    MS(BinaryOp),
    /// Scalar ∘ matrix.
    SM(BinaryOp),
    /// Unary.
    Unary(UnaryOp),
}

/// One step of a fused chain; `args` keeps the original operand order
/// (MM: `[a, b]`, MS: `[m, s]`, SM: `[s, m]`, Unary: `[m]`).
#[derive(Debug, Clone)]
pub struct FusedStep {
    /// Operation kind.
    pub kind: FusedOpKind,
    /// Operands in original positional order.
    pub args: Box<[FusedArg]>,
}

/// A fused elementwise chain: ≥2 shape-preserving steps whose
/// intermediates were compiler temporaries with no other uses. All
/// matrices in the chain share one compile-time shape, so the kernel runs
/// over a single flat output buffer with one allocation.
#[derive(Debug, Clone)]
pub struct FusedSpec {
    /// Steps in execution order.
    pub steps: Vec<FusedStep>,
    /// Compile-time row count of every matrix in the chain.
    pub rows: usize,
    /// Compile-time column count.
    pub cols: usize,
}

/// An MR job lowered for the VM: operators as flat instructions plus the
/// preresolved output exports.
#[derive(Debug, Clone)]
pub struct VmMrJob {
    /// Map then reduce operators, lowered.
    pub ops: Vec<VmInstr>,
    /// Job outputs: (symbol id, string-table index of the `tmp/<name>`
    /// export path).
    pub outputs: Vec<(u32, u32)>,
}

/// A compiled predicate: straight-line code plus the result symbol.
#[derive(Debug, Clone)]
pub struct VmPredicate {
    /// Instructions evaluating the predicate.
    pub code: Vec<VmInstr>,
    /// Symbol holding the result.
    pub result: u32,
}

/// One VM program block, mirroring [`RtBlock`](crate::program::RtBlock).
#[derive(Debug, Clone)]
pub enum VmBlock {
    /// Straight-line code (recompilation granularity).
    Generic {
        /// Source statement block (recompile key).
        source: BlockId,
        /// Lowered instructions.
        code: Vec<VmInstr>,
        /// Whether the recompile hook runs before this block.
        requires_recompile: bool,
    },
    /// Conditional.
    If {
        /// Predicate.
        pred: VmPredicate,
        /// Then branch.
        then_blocks: Vec<VmBlock>,
        /// Else branch.
        else_blocks: Vec<VmBlock>,
    },
    /// While loop.
    While {
        /// Predicate, re-evaluated each iteration.
        pred: VmPredicate,
        /// Body.
        body: Vec<VmBlock>,
    },
    /// For loop.
    For {
        /// Loop-variable symbol.
        var: u32,
        /// Range start.
        from: VmPredicate,
        /// Range end.
        to: VmPredicate,
        /// Body.
        body: Vec<VmBlock>,
    },
}

/// Lowering statistics (also mirrored into the `vm.fusion.*` trace
/// counters when a recorder is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmLowerStats {
    /// Total VM instructions emitted (fused chains count once).
    pub instructions: usize,
    /// Fused chains formed.
    pub fused_groups: usize,
    /// CP instructions eliminated by fusion (chain length − 1 each).
    pub fused_ops_eliminated: usize,
}

/// A complete lowered VM program.
#[derive(Debug, Clone)]
pub struct VmProgram {
    /// Interned variable names.
    pub symbols: SymbolTable,
    /// Literal pool.
    pub consts: Vec<ScalarValue>,
    /// String pool (HDFS paths).
    pub strings: Vec<String>,
    /// Instruction metadata side table.
    pub metas: Vec<InstrMeta>,
    /// Fused-chain specs.
    pub fused: Vec<FusedSpec>,
    /// Lowered MR jobs.
    pub mr_jobs: Vec<VmMrJob>,
    /// Top-level blocks in execution order.
    pub blocks: Vec<VmBlock>,
    /// Whether peephole fusion ran (recompiled fragments follow suit).
    pub fused_enabled: bool,
    /// Lowering statistics.
    pub stats: VmLowerStats,
}

/// Borrowed view of the lookup tables an instruction executes against —
/// the program's own tables, or a recompiled fragment's.
#[derive(Clone, Copy)]
pub(crate) struct Tables<'a> {
    pub(crate) symbols: &'a SymbolTable,
    pub(crate) consts: &'a [ScalarValue],
    pub(crate) strings: &'a [String],
    pub(crate) metas: &'a [InstrMeta],
    pub(crate) fused: &'a [FusedSpec],
    pub(crate) mr_jobs: &'a [VmMrJob],
}

impl VmProgram {
    pub(crate) fn tables(&self) -> Tables<'_> {
        Tables {
            symbols: &self.symbols,
            consts: &self.consts,
            strings: &self.strings,
            metas: &self.metas,
            fused: &self.fused,
            mr_jobs: &self.mr_jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_table_interns_stably() {
        let mut t = SymbolTable::default();
        let a = t.intern("X");
        let b = t.intern("y");
        assert_eq!(t.intern("X"), a);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "X");
        assert_eq!(t.lookup("y"), Some(b));
        assert_eq!(t.lookup("z"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn sealed_table_allows_lookups_and_extend_clone() {
        let mut t = SymbolTable::default();
        let a = t.intern("X");
        t.seal();
        assert!(t.is_sealed());
        // Re-interning an existing name is a lookup, not an append.
        assert_eq!(t.intern("X"), a);
        let mut ext = t.extend_clone();
        assert!(!ext.is_sealed());
        let b = ext.intern("fresh");
        assert_eq!(ext.name(b), "fresh");
        assert_eq!(ext.intern("X"), a);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sealed symbol table")]
    fn sealed_table_rejects_new_names_in_debug() {
        let mut t = SymbolTable::default();
        t.intern("X");
        t.seal();
        t.intern("Y");
    }
}

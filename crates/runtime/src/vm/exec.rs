//! The register VM: executes [`VmProgram`]s over a slot-indexed frame.
//!
//! Value-equivalent to the tree interpreter in [`crate::executor`] (the
//! differential oracle), but with the per-instruction costs removed:
//!
//! * operand fetch is `touch_slot` + `peek_slot` — an array index and an
//!   LRU bump instead of a name hash plus a full matrix clone;
//! * scalars live in a dense frame indexed by symbol id;
//! * mnemonics, metric names, and observation metadata are precomputed at
//!   lowering, so the hot loop allocates no strings;
//! * fused elementwise chains run over one flat buffer with a single
//!   output allocation (see [`FusedSpec`]).
//!
//! Divergences from the tree interpreter are deliberate and limited to
//! pool *residency*: fused intermediates never enter the buffer pool, so
//! pool statistics and LRU order can differ under fusion. Printed output,
//! scalar values, matrix values (bit-for-bit, including the dense/sparse
//! representation choice), HDFS contents, and `ExecStats` all match.

use std::collections::HashMap;

use reml_matrix::{BinaryOp, DenseMatrix, Matrix, MatrixCharacteristics};

use crate::bufferpool::{BufferPool, SlotId};
use crate::executor::{ExecError, ExecStats, MemObservation, RecompileHook, MAX_WHILE_ITERATIONS};
use crate::hdfs::HdfsStore;
use crate::value::ScalarValue;
use crate::vm::lower::lower_fragment;
use crate::vm::program::{
    Arg, FusedArg, FusedOpKind, FusedSpec, InstrMeta, Tables, VmBlock, VmInstr, VmMrJob, VmOp,
    VmPredicate, VmProgram,
};

/// A matrix operand: borrowed from the pool or materialized (scalar used
/// in matrix position).
enum MatVal<'a> {
    Ref(&'a Matrix),
    Owned(Matrix),
}

impl MatVal<'_> {
    fn mat(&self) -> &Matrix {
        match self {
            MatVal::Ref(m) => m,
            MatVal::Owned(m) => m,
        }
    }
}

/// Resolved matrix input of one fused step.
#[derive(Clone, Copy)]
enum FusedMatIn {
    /// The chain's flowing intermediate.
    Flow,
    /// External variable by symbol id.
    Slot(u32),
    /// Literal in matrix position (1×1).
    Lit(f64),
}

/// One fused step with operands resolved for execution.
struct ResolvedStep {
    kind: FusedOpKind,
    /// Matrix inputs in positional order (1 for MS/SM/Unary, 2 for MM).
    mats: Vec<FusedMatIn>,
    /// The scalar operand of an MS/SM step.
    scalar: Option<f64>,
}

/// The bytecode VM executor. One executor runs one program (plus any
/// recompiled fragments); construct it like [`Executor`](crate::executor::Executor)
/// with a CP budget and staged HDFS inputs.
pub struct VmExecutor {
    /// Matrix variables (slot-addressed).
    pub pool: BufferPool,
    /// The HDFS stand-in.
    pub hdfs: HdfsStore,
    /// Accumulated statistics (same accounting as the tree interpreter).
    pub stats: ExecStats,
    /// Scalar frame indexed by symbol id.
    frame: Vec<Option<ScalarValue>>,
    /// Preresolved pool slot per symbol id.
    pool_slots: Vec<SlotId>,
    /// Name-keyed scalar overflow: values seeded before the frame is
    /// bound, or spilled when a recompiled fragment rebinds the frame
    /// extension.
    pending_scalars: HashMap<String, ScalarValue>,
    oom_limit_bytes: Option<u64>,
    observe_memory: bool,
    observations: Vec<MemObservation>,
    /// Whether recompiled fragments are lowered with fusion (copied from
    /// the program at `run`).
    fuse_fragments: bool,
}

impl VmExecutor {
    /// New VM executor with the given CP budget (bytes) and staged inputs.
    pub fn new(cp_budget_bytes: u64, hdfs: HdfsStore) -> Self {
        VmExecutor {
            pool: BufferPool::new(cp_budget_bytes),
            hdfs,
            stats: ExecStats::default(),
            frame: Vec::new(),
            pool_slots: Vec::new(),
            pending_scalars: HashMap::new(),
            oom_limit_bytes: None,
            observe_memory: false,
            observations: Vec::new(),
            fuse_fragments: true,
        }
    }

    /// Builder: abort with [`ExecError::OutOfMemory`] past this limit.
    pub fn with_oom_limit(mut self, limit_bytes: u64) -> Self {
        self.oom_limit_bytes = Some(limit_bytes);
        self
    }

    /// Start recording one [`MemObservation`] per executed instruction.
    /// Fused chains record once under their composite mnemonic with
    /// summed predictions and bounds.
    pub fn enable_memory_observation(&mut self) {
        self.observe_memory = true;
    }

    /// Drain the recorded memory observations.
    pub fn take_memory_observations(&mut self) -> Vec<MemObservation> {
        std::mem::take(&mut self.observations)
    }

    /// Seed a scalar variable before `run` (e.g. loop counters in tests).
    pub fn set_scalar(&mut self, name: &str, v: ScalarValue) {
        self.pending_scalars.insert(name.to_string(), v);
    }

    /// Current value of a scalar variable, if any.
    pub fn scalar(&self, name: &str) -> Option<ScalarValue> {
        self.pool_slots
            .iter()
            .position(|&s| self.pool.slot_name(s) == name)
            .and_then(|i| self.frame[i].clone())
            .or_else(|| self.pending_scalars.get(name).cloned())
    }

    /// Snapshot of all live scalar variables (differential testing).
    pub fn scalars(&self) -> HashMap<String, ScalarValue> {
        let mut out: HashMap<String, ScalarValue> = self.pending_scalars.clone();
        for (i, v) in self.frame.iter().enumerate() {
            if let Some(v) = v {
                out.insert(
                    self.pool.slot_name(self.pool_slots[i]).to_string(),
                    v.clone(),
                );
            }
        }
        out
    }

    /// Execute a lowered program with an optional recompilation hook.
    pub fn run(
        &mut self,
        program: &VmProgram,
        hook: &mut dyn RecompileHook,
    ) -> Result<(), ExecError> {
        self.fuse_fragments = program.fused_enabled;
        self.rebind(&program.symbols, 0);
        let t = program.tables();
        for block in &program.blocks {
            self.run_block(&t, block, hook)?;
        }
        Ok(())
    }

    /// (Re)bind the frame and pool-slot table for `symbols` from index
    /// `base` upward. Scalars currently held in the rebound region are
    /// spilled to the name-keyed overflow first, so values survive when a
    /// later fragment reuses the extension indices for different names.
    fn rebind(&mut self, symbols: &crate::vm::program::SymbolTable, base: usize) {
        for i in base..self.frame.len() {
            if let Some(v) = self.frame[i].take() {
                let name = self.pool.slot_name(self.pool_slots[i]).to_string();
                self.pending_scalars.insert(name, v);
            }
        }
        self.frame.truncate(base);
        self.pool_slots.truncate(base);
        for i in base..symbols.len() {
            let name = symbols.name(i as u32);
            let slot = self.pool.resolve_slot(name);
            self.pool_slots.push(slot);
            let seeded = self.pending_scalars.remove(self.pool.slot_name(slot));
            self.frame.push(seeded);
        }
    }

    /// Characteristics of all live matrix variables (recompilation input).
    pub fn live_matrix_characteristics(&self) -> HashMap<String, MatrixCharacteristics> {
        self.pool
            .variables()
            .into_iter()
            .filter_map(|name| {
                let mc = self.pool.peek(&name)?.characteristics();
                Some((name, mc))
            })
            .collect()
    }

    fn run_block(
        &mut self,
        t: &Tables<'_>,
        block: &VmBlock,
        hook: &mut dyn RecompileHook,
    ) -> Result<(), ExecError> {
        match block {
            VmBlock::Generic {
                source,
                code,
                requires_recompile,
            } => {
                if *requires_recompile {
                    if let Some(plan) = hook.recompile(*source, &self.live_matrix_characteristics())
                    {
                        self.stats.recompilations += 1;
                        let frag = lower_fragment(t.symbols, &plan, self.fuse_fragments);
                        self.rebind(&frag.symbols, t.symbols.len());
                        let ft = frag.tables();
                        for instr in &frag.code {
                            self.execute_instr(&ft, instr)?;
                        }
                        return Ok(());
                    }
                }
                for instr in code {
                    self.execute_instr(t, instr)?;
                }
                Ok(())
            }
            VmBlock::If {
                pred,
                then_blocks,
                else_blocks,
            } => {
                let branch = if self.eval_predicate(t, pred)? {
                    then_blocks
                } else {
                    else_blocks
                };
                for b in branch {
                    self.run_block(t, b, hook)?;
                }
                Ok(())
            }
            VmBlock::While { pred, body } => {
                let mut iters = 0usize;
                while self.eval_predicate(t, pred)? {
                    iters += 1;
                    if iters > MAX_WHILE_ITERATIONS {
                        return Err(ExecError::RunawayLoop(MAX_WHILE_ITERATIONS));
                    }
                    self.stats.loop_iterations += 1;
                    for b in body {
                        self.run_block(t, b, hook)?;
                    }
                }
                Ok(())
            }
            VmBlock::For {
                var,
                from,
                to,
                body,
            } => {
                let from_v = self.eval_predicate_num(t, from)?;
                let to_v = self.eval_predicate_num(t, to)?;
                let mut i = from_v;
                while i <= to_v {
                    self.put_scalar(Some(*var), ScalarValue::Num(i));
                    self.stats.loop_iterations += 1;
                    for b in body {
                        self.run_block(t, b, hook)?;
                    }
                    i += 1.0;
                }
                Ok(())
            }
        }
    }

    fn predicate_value(
        &mut self,
        t: &Tables<'_>,
        pred: &VmPredicate,
    ) -> Result<ScalarValue, ExecError> {
        for instr in &pred.code {
            self.execute_instr(t, instr)?;
        }
        self.frame[pred.result as usize]
            .clone()
            .ok_or_else(|| ExecError::UnknownVariable(t.symbols.name(pred.result).to_string()))
    }

    fn eval_predicate(&mut self, t: &Tables<'_>, pred: &VmPredicate) -> Result<bool, ExecError> {
        let v = self.predicate_value(t, pred)?;
        v.as_bool().ok_or_else(|| {
            ExecError::TypeError(format!(
                "predicate '{}' not boolean",
                t.symbols.name(pred.result)
            ))
        })
    }

    fn eval_predicate_num(&mut self, t: &Tables<'_>, pred: &VmPredicate) -> Result<f64, ExecError> {
        let v = self.predicate_value(t, pred)?;
        v.as_f64().ok_or_else(|| {
            ExecError::TypeError(format!("'{}' not numeric", t.symbols.name(pred.result)))
        })
    }

    /// Execute one instruction with stats, per-opcode timing
    /// (`vm.op.<mnemonic>` histograms), and opt-in memory observation.
    fn execute_instr(&mut self, t: &Tables<'_>, instr: &VmInstr) -> Result<(), ExecError> {
        let meta = &t.metas[instr.meta as usize];
        if let VmOp::MrJob { job } = instr.op {
            self.stats.mr_jobs += 1;
            reml_trace::count("exec.mr_jobs", 1);
            let timed = reml_trace::enabled() && !reml_trace::deterministic();
            let t0 = timed.then(std::time::Instant::now);
            let result = self.execute_mr_job(t, &t.mr_jobs[job as usize]);
            if let Some(t0) = t0 {
                reml_trace::metrics()
                    .histogram("vm.op.mr_job")
                    .observe(t0.elapsed().as_micros() as u64);
            }
            return result;
        }
        self.stats.cp_instructions += meta.cp_count;
        let trace_timed = reml_trace::enabled() && !reml_trace::deterministic();
        let timed = trace_timed || self.observe_memory;
        let t0 = timed.then(std::time::Instant::now);
        self.execute_core(t, instr)?;
        let wall_ns = t0.map(|t0| t0.elapsed().as_nanos() as u64).unwrap_or(0);
        if trace_timed {
            reml_trace::metrics()
                .histogram(&meta.metric)
                .observe(wall_ns / 1_000);
        }
        if self.observe_memory {
            self.record_observation(meta, wall_ns);
        }
        Ok(())
    }

    /// Record predicted vs. actual footprint. Prediction and the touched
    /// set were precomputed at lowering; actual sums the live pool sizes
    /// of the touched slots. Fused chains record one row under their
    /// composite mnemonic (e.g. `fused(map*,map+)`) so the audit never
    /// sees an unknown opcode.
    fn record_observation(&mut self, meta: &InstrMeta, wall_ns: u64) {
        let actual_bytes: u64 = meta
            .touched
            .iter()
            .filter_map(|&s| {
                self.pool
                    .peek_slot(self.pool_slots[s as usize])
                    .map(Matrix::size_bytes)
            })
            .sum();
        if reml_trace::enabled() {
            let mut fields: Vec<(&'static str, reml_trace::FieldValue)> = vec![
                ("opcode", reml_trace::FieldValue::Str(meta.mnemonic.clone())),
                ("actual_bytes", reml_trace::FieldValue::U64(actual_bytes)),
                (
                    "resident_bytes",
                    reml_trace::FieldValue::U64(self.pool.resident_bytes()),
                ),
            ];
            if let Some(p) = meta.predicted_bytes {
                fields.push(("predicted_bytes", reml_trace::FieldValue::U64(p)));
            }
            if let Some(b) = meta.bound_bytes {
                fields.push(("bound_bytes", reml_trace::FieldValue::U64(b)));
            }
            reml_trace::event("exec.mem_observation", &fields);
        }
        self.observations.push(MemObservation {
            opcode: meta.mnemonic.clone(),
            predicted_bytes: meta.predicted_bytes,
            actual_bytes,
            resident_bytes: self.pool.resident_bytes(),
            bound_bytes: meta.bound_bytes,
            wall_ns,
            predicted_flops: meta.predicted_flops,
            constituents: meta.constituents.to_vec(),
        });
    }

    fn execute_mr_job(&mut self, t: &Tables<'_>, job: &VmMrJob) -> Result<(), ExecError> {
        for op in &job.ops {
            self.execute_core(t, op)?;
        }
        for &(sym, path) in &job.outputs {
            if !self.pool.touch_slot(self.slot(sym)) {
                return Err(ExecError::UnknownVariable(t.symbols.name(sym).to_string()));
            }
            let m = self
                .pool
                .peek_slot(self.slot(sym))
                .expect("just touched")
                .clone();
            self.hdfs.write(t.strings[path as usize].clone(), m);
            self.pool.mark_clean_slot(self.slot(sym));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Operand access
    // ------------------------------------------------------------------

    fn slot(&self, sym: u32) -> SlotId {
        self.pool_slots[sym as usize]
    }

    /// Phase 1 of a matrix-operand fetch: bump LRU / restore the slot (the
    /// accounting side effects of the tree executor's `pool.get`), and
    /// verify the variable exists as a matrix or scalar.
    fn touch_arg(&mut self, t: &Tables<'_>, arg: Arg) -> Result<(), ExecError> {
        if let Arg::Slot(s) = arg {
            if self.pool.touch_slot(self.slot(s)) || self.frame[s as usize].is_some() {
                return Ok(());
            }
            return Err(ExecError::UnknownVariable(t.symbols.name(s).to_string()));
        }
        Ok(())
    }

    /// Phase 2: read the operand by reference (no clone), materializing a
    /// 1×1 for scalars in matrix position.
    fn peek_arg<'s>(&'s self, t: &Tables<'_>, arg: Arg) -> Result<MatVal<'s>, ExecError> {
        match arg {
            Arg::Slot(s) => {
                if let Some(m) = self.pool.peek_slot(self.slot(s)) {
                    return Ok(MatVal::Ref(m));
                }
                match &self.frame[s as usize] {
                    Some(v) => {
                        let f = v.as_f64().ok_or_else(|| {
                            ExecError::TypeError(format!("'{}' not numeric", t.symbols.name(s)))
                        })?;
                        Ok(MatVal::Owned(Matrix::constant(1, 1, f)))
                    }
                    None => Err(ExecError::UnknownVariable(t.symbols.name(s).to_string())),
                }
            }
            Arg::Const(c) => {
                let f = t.consts[c as usize]
                    .as_f64()
                    .ok_or_else(|| ExecError::TypeError("literal not numeric".into()))?;
                Ok(MatVal::Owned(Matrix::constant(1, 1, f)))
            }
        }
    }

    fn scalar_arg(&mut self, t: &Tables<'_>, arg: Arg) -> Result<ScalarValue, ExecError> {
        match arg {
            Arg::Slot(s) => {
                if let Some(v) = &self.frame[s as usize] {
                    return Ok(v.clone());
                }
                if self.pool.touch_slot(self.slot(s)) {
                    let m = self.pool.peek_slot(self.slot(s)).expect("just touched");
                    let v = m.as_scalar().map_err(ExecError::Matrix)?;
                    return Ok(ScalarValue::Num(v));
                }
                Err(ExecError::UnknownVariable(t.symbols.name(s).to_string()))
            }
            Arg::Const(c) => Ok(t.consts[c as usize].clone()),
        }
    }

    fn scalar_num(&mut self, t: &Tables<'_>, arg: Arg) -> Result<f64, ExecError> {
        self.scalar_arg(t, arg)?
            .as_f64()
            .ok_or_else(|| ExecError::TypeError("expected numeric scalar".into()))
    }

    fn put_matrix(&mut self, out: Option<u32>, m: Matrix) -> Result<(), ExecError> {
        if let Some(sym) = out {
            if let Some(limit) = self.oom_limit_bytes {
                let needed = self.pool.resident_bytes().saturating_add(m.size_bytes());
                if needed > limit {
                    reml_trace::event!("exec.oom", needed_bytes = needed, limit_bytes = limit);
                    return Err(ExecError::OutOfMemory {
                        needed_bytes: needed,
                        limit_bytes: limit,
                    });
                }
            }
            self.frame[sym as usize] = None;
            self.pool.put_slot(self.slot(sym), m);
        }
        Ok(())
    }

    fn put_scalar(&mut self, out: Option<u32>, v: ScalarValue) {
        if let Some(sym) = out {
            self.pool.remove_slot(self.slot(sym));
            self.frame[sym as usize] = Some(v);
        }
    }

    // ------------------------------------------------------------------
    // Opcode semantics (mirrors Executor::execute_op arm for arm)
    // ------------------------------------------------------------------

    fn execute_core(&mut self, t: &Tables<'_>, instr: &VmInstr) -> Result<(), ExecError> {
        let args = &instr.args;
        let out = instr.out;
        match &instr.op {
            VmOp::PRead { path } => {
                let path = &t.strings[*path as usize];
                let m = self
                    .hdfs
                    .read(path)
                    .ok_or_else(|| ExecError::MissingInput(path.clone()))?;
                if let Some(sym) = out {
                    self.frame[sym as usize] = None;
                    self.pool.put_slot_with_dirty(self.slot(sym), m, false);
                }
                Ok(())
            }
            VmOp::PWrite { path } => {
                self.touch_arg(t, args[0])?;
                let m = self.peek_arg(t, args[0])?.mat().clone();
                self.hdfs.write(t.strings[*path as usize].clone(), m);
                if let Arg::Slot(s) = args[0] {
                    self.pool.mark_clean_slot(self.slot(s));
                }
                Ok(())
            }
            VmOp::DataGenConst => {
                let v = self.scalar_num(t, args[0])?;
                let rows = self.scalar_num(t, args[1])? as usize;
                let cols = self.scalar_num(t, args[2])? as usize;
                self.put_matrix(out, Matrix::constant(rows, cols, v))
            }
            VmOp::DataGenSeq => {
                let from = self.scalar_num(t, args[0])?;
                let to = self.scalar_num(t, args[1])?;
                let by = if args.len() > 2 {
                    self.scalar_num(t, args[2])?
                } else if from <= to {
                    1.0
                } else {
                    -1.0
                };
                self.put_matrix(
                    out,
                    Matrix::Dense(reml_matrix::generate::seq_by(from, to, by)),
                )
            }
            VmOp::DataGenRand => {
                let rows = self.scalar_num(t, args[0])? as usize;
                let cols = self.scalar_num(t, args[1])? as usize;
                let sparsity = self.scalar_num(t, args[2])?;
                let seed = self.scalar_num(t, args[3])? as u64;
                let m = if sparsity >= 1.0 {
                    Matrix::Dense(reml_matrix::generate::rand_dense(
                        rows, cols, 0.0, 1.0, seed,
                    ))
                } else {
                    Matrix::from_sparse_auto(reml_matrix::generate::rand_sparse(
                        rows, cols, sparsity, 0.0, 1.0, seed,
                    ))
                };
                self.put_matrix(out, m)
            }
            VmOp::MatMult => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let a = self.peek_arg(t, args[0])?;
                    let b = self.peek_arg(t, args[1])?;
                    a.mat().matmult(b.mat())?
                };
                self.put_matrix(out, m)
            }
            VmOp::Tsmm => {
                self.touch_arg(t, args[0])?;
                let m = self.peek_arg(t, args[0])?.mat().tsmm();
                self.put_matrix(out, m)
            }
            VmOp::MatMultTransLeft => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let a = self.peek_arg(t, args[0])?;
                    let b = self.peek_arg(t, args[1])?;
                    a.mat().transpose().matmult(b.mat())?
                };
                self.put_matrix(out, m)
            }
            VmOp::MmChain => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let x = self.peek_arg(t, args[0])?;
                    let v = self.peek_arg(t, args[1])?;
                    let xv = x.mat().matmult(v.mat())?;
                    x.mat().transpose().matmult(&xv)?
                };
                self.put_matrix(out, m)
            }
            VmOp::Solve => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let a = self.peek_arg(t, args[0])?;
                    let b = self.peek_arg(t, args[1])?;
                    a.mat().solve(b.mat())?
                };
                self.put_matrix(out, m)
            }
            VmOp::Transpose => {
                self.touch_arg(t, args[0])?;
                let m = self.peek_arg(t, args[0])?.mat().transpose();
                self.put_matrix(out, m)
            }
            VmOp::Diag => {
                self.touch_arg(t, args[0])?;
                let m = self.peek_arg(t, args[0])?.mat().diag();
                self.put_matrix(out, m)
            }
            VmOp::BinaryMM(op) => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let av = self.peek_arg(t, args[0])?;
                    let bv = self.peek_arg(t, args[1])?;
                    let (a, b) = (av.mat(), bv.mat());
                    // 1x1 matrices degrade to scalar ops per DML semantics.
                    if a.rows() == 1 && a.cols() == 1 && (b.rows() > 1 || b.cols() > 1) {
                        b.scalar_binary(*op, a.get(0, 0))
                    } else if b.rows() == 1 && b.cols() == 1 && (a.rows() > 1 || a.cols() > 1) {
                        a.binary_scalar(*op, b.get(0, 0))
                    } else {
                        a.binary(*op, b)?
                    }
                };
                self.put_matrix(out, m)
            }
            VmOp::BinaryMS(op) => {
                self.touch_arg(t, args[0])?;
                let s = self.scalar_num(t, args[1])?;
                let m = self.peek_arg(t, args[0])?.mat().binary_scalar(*op, s);
                self.put_matrix(out, m)
            }
            VmOp::BinarySM(op) => {
                let s = self.scalar_num(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = self.peek_arg(t, args[1])?.mat().scalar_binary(*op, s);
                self.put_matrix(out, m)
            }
            VmOp::BinarySS(op) => {
                let a = self.scalar_arg(t, args[0])?;
                let b = self.scalar_arg(t, args[1])?;
                let result = match op {
                    BinaryOp::And | BinaryOp::Or => {
                        let (x, y) = (
                            a.as_bool().ok_or_else(|| {
                                ExecError::TypeError("non-boolean in logical op".into())
                            })?,
                            b.as_bool().ok_or_else(|| {
                                ExecError::TypeError("non-boolean in logical op".into())
                            })?,
                        );
                        ScalarValue::Bool(if *op == BinaryOp::And { x && y } else { x || y })
                    }
                    BinaryOp::Eq
                    | BinaryOp::NotEq
                    | BinaryOp::Less
                    | BinaryOp::LessEq
                    | BinaryOp::Greater
                    | BinaryOp::GreaterEq => {
                        let (x, y) = (
                            a.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                            b.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                        );
                        ScalarValue::Bool(op.apply(x, y) != 0.0)
                    }
                    _ => {
                        let (x, y) = (
                            a.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                            b.as_f64()
                                .ok_or_else(|| ExecError::TypeError("non-numeric".into()))?,
                        );
                        ScalarValue::Num(op.apply(x, y))
                    }
                };
                self.put_scalar(out, result);
                Ok(())
            }
            VmOp::UnaryM(op) => {
                self.touch_arg(t, args[0])?;
                let m = self.peek_arg(t, args[0])?.mat().unary(*op);
                self.put_matrix(out, m)
            }
            VmOp::UnaryS(op) => {
                let v = self.scalar_num(t, args[0])?;
                self.put_scalar(out, ScalarValue::Num(op.apply(v)));
                Ok(())
            }
            VmOp::Agg(op) => {
                self.touch_arg(t, args[0])?;
                let agg = self.peek_arg(t, args[0])?.mat().aggregate(*op);
                if op.is_full_reduction() {
                    let v = agg.as_scalar().map_err(ExecError::Matrix)?;
                    self.put_scalar(out, ScalarValue::Num(v));
                    Ok(())
                } else {
                    self.put_matrix(out, agg)
                }
            }
            VmOp::TableSeq => {
                self.touch_arg(t, args[0])?;
                let m = {
                    let y = self.peek_arg(t, args[0])?;
                    reml_matrix::generate::table_seq(&y.mat().to_dense())?
                };
                self.put_matrix(out, m)
            }
            VmOp::RightIndex => {
                self.touch_arg(t, args[0])?;
                let (rows, cols) = {
                    let a = self.peek_arg(t, args[0])?;
                    (a.mat().rows(), a.mat().cols())
                };
                let (rl, rh, cl, ch) = self.index_bounds(t, &args[1..5], rows, cols)?;
                let m = self.peek_arg(t, args[0])?.mat().slice(rl, rh, cl, ch)?;
                self.put_matrix(out, m)
            }
            VmOp::LeftIndex => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let (mut d, vd) = {
                    let target = self.peek_arg(t, args[0])?;
                    let value = self.peek_arg(t, args[1])?;
                    (target.mat().to_dense(), value.mat().to_dense())
                };
                let (rl, rh, cl, ch) = self.index_bounds(t, &args[2..6], d.rows(), d.cols())?;
                for (ri, r) in (rl..=rh).enumerate() {
                    for (ci, c) in (cl..=ch).enumerate() {
                        let v = if vd.rows() == 1 && vd.cols() == 1 {
                            vd.get(0, 0)
                        } else {
                            vd.get(ri, ci)
                        };
                        d.set(r, c, v);
                    }
                }
                self.put_matrix(out, Matrix::from_dense_auto(d))
            }
            VmOp::Append => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let a = self.peek_arg(t, args[0])?;
                    let b = self.peek_arg(t, args[1])?;
                    a.mat().cbind(b.mat())?
                };
                self.put_matrix(out, m)
            }
            VmOp::AppendR => {
                self.touch_arg(t, args[0])?;
                self.touch_arg(t, args[1])?;
                let m = {
                    let a = self.peek_arg(t, args[0])?;
                    let b = self.peek_arg(t, args[1])?;
                    a.mat().rbind(b.mat())?
                };
                self.put_matrix(out, m)
            }
            VmOp::NRow => {
                self.touch_arg(t, args[0])?;
                let rows = self.peek_arg(t, args[0])?.mat().rows();
                self.put_scalar(out, ScalarValue::Num(rows as f64));
                Ok(())
            }
            VmOp::NCol => {
                self.touch_arg(t, args[0])?;
                let cols = self.peek_arg(t, args[0])?.mat().cols();
                self.put_scalar(out, ScalarValue::Num(cols as f64));
                Ok(())
            }
            VmOp::CastScalar => {
                self.touch_arg(t, args[0])?;
                let v = self.peek_arg(t, args[0])?.mat().as_scalar();
                let v = v.map_err(ExecError::Matrix)?;
                self.put_scalar(out, ScalarValue::Num(v));
                Ok(())
            }
            VmOp::CastMatrix => {
                let v = self.scalar_num(t, args[0])?;
                self.put_matrix(out, Matrix::constant(1, 1, v))
            }
            VmOp::Assign => {
                match args[0] {
                    Arg::Slot(s) => {
                        if let Some(v) = self.frame[s as usize].clone() {
                            self.put_scalar(out, v);
                        } else if self.pool.touch_slot(self.slot(s)) {
                            let m = self
                                .pool
                                .peek_slot(self.slot(s))
                                .expect("just touched")
                                .clone();
                            self.put_matrix(out, m)?;
                        } else {
                            return Err(ExecError::UnknownVariable(t.symbols.name(s).to_string()));
                        }
                    }
                    Arg::Const(c) => self.put_scalar(out, t.consts[c as usize].clone()),
                }
                Ok(())
            }
            VmOp::Concat => {
                let a = self.scalar_arg(t, args[0])?;
                let b = self.scalar_arg(t, args[1])?;
                self.put_scalar(
                    out,
                    ScalarValue::Str(format!("{}{}", a.render(), b.render())),
                );
                Ok(())
            }
            VmOp::Print => {
                let v = self.scalar_arg(t, args[0])?;
                self.stats.printed.push(v.render());
                Ok(())
            }
            VmOp::RmVar => {
                for &arg in args.iter() {
                    if let Arg::Slot(s) = arg {
                        self.pool.remove_slot(self.slot(s));
                        self.frame[s as usize] = None;
                    }
                }
                Ok(())
            }
            VmOp::Fused { spec } => self.execute_fused(t, &t.fused[*spec as usize], out),
            VmOp::MrJob { .. } => unreachable!("MR jobs dispatch in execute_instr"),
        }
    }

    /// Resolve 1-based inclusive index bounds, 0 meaning "open".
    fn index_bounds(
        &mut self,
        t: &Tables<'_>,
        ops: &[Arg],
        rows: usize,
        cols: usize,
    ) -> Result<(usize, usize, usize, usize), ExecError> {
        let rl = self.scalar_num(t, ops[0])? as usize;
        let rh = self.scalar_num(t, ops[1])? as usize;
        let cl = self.scalar_num(t, ops[2])? as usize;
        let ch = self.scalar_num(t, ops[3])? as usize;
        let rl = if rl == 0 { 1 } else { rl };
        let rh = if rh == 0 { rows } else { rh };
        let cl = if cl == 0 { 1 } else { cl };
        let ch = if ch == 0 { cols } else { ch };
        Ok((rl - 1, rh - 1, cl - 1, ch - 1))
    }

    // ------------------------------------------------------------------
    // Fused chains
    // ------------------------------------------------------------------

    /// Execute a fused elementwise chain.
    ///
    /// The fast path runs all steps over one flat `f64` buffer when every
    /// external matrix input is pool-resident, dense, and exactly the
    /// chain's compile-time shape. To stay bit-identical with the unfused
    /// execution it tracks, after every step, whether the unfused result
    /// would have chosen the sparse representation — sparse intermediates
    /// normalize `-0.0` to `+0.0` (CSR compaction drops all zeros) and
    /// skip zero cells on zero-preserving ops, and the fast path
    /// replicates both effects in place.
    ///
    /// Anything else (sparse or missing inputs, runtime shapes diverging
    /// from compile-time, literals in matrix position) falls back to a
    /// stepwise path using the exact tree-interpreter operator semantics
    /// with chain intermediates kept as locals instead of pool entries.
    fn execute_fused(
        &mut self,
        t: &Tables<'_>,
        spec: &FusedSpec,
        out: Option<u32>,
    ) -> Result<(), ExecError> {
        // Phase 1 (mutable): resolve operands in the same order the
        // unfused instructions would, touching pool slots and resolving
        // scalars, so restore accounting and resolution errors match.
        let mut fast = true;
        let mut steps = Vec::with_capacity(spec.steps.len());
        for step in &spec.steps {
            let matrix_positions: &[usize] = match step.kind {
                FusedOpKind::MM(_) => &[0, 1],
                FusedOpKind::MS(_) => &[0],
                FusedOpKind::SM(_) => &[1],
                FusedOpKind::Unary(_) => &[0],
            };
            let mut mats = Vec::with_capacity(matrix_positions.len());
            let mut scalar = None;
            for (p, arg) in step.args.iter().enumerate() {
                if matrix_positions.contains(&p) {
                    match *arg {
                        FusedArg::Flow => mats.push(FusedMatIn::Flow),
                        FusedArg::Slot(s) => {
                            self.touch_arg(t, Arg::Slot(s))?;
                            mats.push(FusedMatIn::Slot(s));
                        }
                        FusedArg::Const(c) => {
                            let f = t.consts[c as usize].as_f64().ok_or_else(|| {
                                ExecError::TypeError("literal not numeric".into())
                            })?;
                            mats.push(FusedMatIn::Lit(f));
                            fast = false;
                        }
                    }
                } else {
                    let arg = match *arg {
                        FusedArg::Slot(s) => Arg::Slot(s),
                        FusedArg::Const(c) => Arg::Const(c),
                        FusedArg::Flow => unreachable!("flow in scalar position"),
                    };
                    scalar = Some(self.scalar_num(t, arg)?);
                }
            }
            steps.push(ResolvedStep {
                kind: step.kind,
                mats,
                scalar,
            });
        }
        // Phase 2: gate the fast path on every external input being a
        // pool-resident dense matrix of the chain's shape.
        if fast {
            for step in &steps {
                for m in &step.mats {
                    if let FusedMatIn::Slot(s) = m {
                        match self.pool.peek_slot(self.slot(*s)) {
                            Some(Matrix::Dense(d))
                                if d.rows() == spec.rows && d.cols() == spec.cols => {}
                            _ => {
                                fast = false;
                                break;
                            }
                        }
                    }
                }
                if !fast {
                    break;
                }
            }
        }
        let result = if fast {
            self.fused_fast(spec, &steps)?
        } else {
            self.fused_stepwise(t, &steps)?
        };
        self.put_matrix(out, result)
    }

    /// Fast path: one flat buffer, all steps in place.
    fn fused_fast(&self, spec: &FusedSpec, steps: &[ResolvedStep]) -> Result<Matrix, ExecError> {
        let (rows, cols) = (spec.rows, spec.cols);
        let n = rows * cols;
        let ext = |s: u32| -> &[f64] {
            match self.pool.peek_slot(self.slot(s)) {
                Some(Matrix::Dense(d)) => d.data(),
                _ => unreachable!("gated dense"),
            }
        };
        let mut buf: Vec<f64> = vec![0.0; n];
        // Whether the unfused chain would currently hold the intermediate
        // in CSR form. Invariant: when true, every zero in `buf` is +0.0
        // (CSR compaction drops -0.0).
        let mut repr_sparse = false;
        for step in steps {
            match step.kind {
                FusedOpKind::MM(op) => {
                    // Both-dense elementwise; the sparse×sparse multiply
                    // fast path cannot trigger because externals are gated
                    // dense, and `to_dense` of a sparse intermediate is
                    // exactly `buf` under the +0.0 invariant.
                    match (step.mats[0], step.mats[1]) {
                        (FusedMatIn::Slot(a), FusedMatIn::Slot(b)) => {
                            let (a, b) = (ext(a), ext(b));
                            for (i, v) in buf.iter_mut().enumerate() {
                                *v = op.apply(a[i], b[i]);
                            }
                        }
                        (FusedMatIn::Flow, FusedMatIn::Slot(b)) => {
                            let b = ext(b);
                            for (i, v) in buf.iter_mut().enumerate() {
                                *v = op.apply(*v, b[i]);
                            }
                        }
                        (FusedMatIn::Slot(a), FusedMatIn::Flow) => {
                            let a = ext(a);
                            for (i, v) in buf.iter_mut().enumerate() {
                                *v = op.apply(a[i], *v);
                            }
                        }
                        (FusedMatIn::Flow, FusedMatIn::Flow) => {
                            for v in buf.iter_mut() {
                                *v = op.apply(*v, *v);
                            }
                        }
                        _ => unreachable!("literals force the stepwise path"),
                    }
                    repr_sparse = post_dense(&mut buf, rows, cols);
                }
                FusedOpKind::MS(op) => {
                    let s = step.scalar.expect("MS has a scalar");
                    let flow = matches!(step.mats[0], FusedMatIn::Flow);
                    if let FusedMatIn::Slot(a) = step.mats[0] {
                        let a = ext(a);
                        buf.copy_from_slice(a);
                    }
                    if flow && repr_sparse && op.apply(0.0, s) == 0.0 {
                        // Sparse binary_scalar: applies to stored values
                        // only; implicit zeros stay +0.0 and computed
                        // zeros are compacted away.
                        for v in buf.iter_mut() {
                            *v = if *v == 0.0 { 0.0 } else { op.apply(*v, s) };
                        }
                        repr_sparse = post_sparse(&mut buf, rows, cols);
                    } else {
                        for v in buf.iter_mut() {
                            *v = op.apply(*v, s);
                        }
                        repr_sparse = post_dense(&mut buf, rows, cols);
                    }
                }
                FusedOpKind::SM(op) => {
                    // scalar_binary always densifies first; under the
                    // +0.0 invariant `buf` already equals that dense view.
                    let s = step.scalar.expect("SM has a scalar");
                    if let FusedMatIn::Slot(a) = step.mats[0] {
                        let a = ext(a);
                        buf.copy_from_slice(a);
                    }
                    for v in buf.iter_mut() {
                        *v = op.apply(s, *v);
                    }
                    repr_sparse = post_dense(&mut buf, rows, cols);
                }
                FusedOpKind::Unary(op) => {
                    let flow = matches!(step.mats[0], FusedMatIn::Flow);
                    if let FusedMatIn::Slot(a) = step.mats[0] {
                        let a = ext(a);
                        buf.copy_from_slice(a);
                    }
                    if flow && repr_sparse && op.is_zero_preserving() {
                        for v in buf.iter_mut() {
                            *v = if *v == 0.0 { 0.0 } else { op.apply(*v) };
                        }
                        repr_sparse = post_sparse(&mut buf, rows, cols);
                    } else {
                        for v in buf.iter_mut() {
                            *v = op.apply(*v);
                        }
                        repr_sparse = post_dense(&mut buf, rows, cols);
                    }
                }
            }
        }
        let d = DenseMatrix::from_vec(rows, cols, buf)?;
        Ok(Matrix::from_dense_auto(d))
    }

    /// Fallback: execute the chain step by step with the exact unfused
    /// operator semantics, holding intermediates as locals.
    fn fused_stepwise(
        &mut self,
        t: &Tables<'_>,
        steps: &[ResolvedStep],
    ) -> Result<Matrix, ExecError> {
        let mut flow: Option<Matrix> = None;
        for step in steps {
            let resolve = |m: &FusedMatIn, flow: &Option<Matrix>| -> Result<Matrix, ExecError> {
                match *m {
                    FusedMatIn::Flow => Ok(flow.clone().expect("flow set after step 0")),
                    FusedMatIn::Lit(f) => Ok(Matrix::constant(1, 1, f)),
                    FusedMatIn::Slot(s) => {
                        if let Some(m) = self.pool.peek_slot(self.slot(s)) {
                            return Ok(m.clone());
                        }
                        match &self.frame[s as usize] {
                            Some(v) => {
                                let f = v.as_f64().ok_or_else(|| {
                                    ExecError::TypeError(format!(
                                        "'{}' not numeric",
                                        t.symbols.name(s)
                                    ))
                                })?;
                                Ok(Matrix::constant(1, 1, f))
                            }
                            None => Err(ExecError::UnknownVariable(t.symbols.name(s).to_string())),
                        }
                    }
                }
            };
            let result = match step.kind {
                FusedOpKind::MM(op) => {
                    let a = resolve(&step.mats[0], &flow)?;
                    let b = resolve(&step.mats[1], &flow)?;
                    if a.rows() == 1 && a.cols() == 1 && (b.rows() > 1 || b.cols() > 1) {
                        b.scalar_binary(op, a.get(0, 0))
                    } else if b.rows() == 1 && b.cols() == 1 && (a.rows() > 1 || a.cols() > 1) {
                        a.binary_scalar(op, b.get(0, 0))
                    } else {
                        a.binary(op, &b)?
                    }
                }
                FusedOpKind::MS(op) => {
                    let a = resolve(&step.mats[0], &flow)?;
                    a.binary_scalar(op, step.scalar.expect("MS has a scalar"))
                }
                FusedOpKind::SM(op) => {
                    let a = resolve(&step.mats[0], &flow)?;
                    a.scalar_binary(op, step.scalar.expect("SM has a scalar"))
                }
                FusedOpKind::Unary(op) => {
                    let a = resolve(&step.mats[0], &flow)?;
                    a.unary(op)
                }
            };
            flow = Some(result);
        }
        Ok(flow.expect("chains have >= 2 steps"))
    }
}

/// Post-step bookkeeping for a dense-semantics step (`from_dense_auto`):
/// if the result prefers CSR, all zeros become implicit +0.0; otherwise
/// the buffer is kept verbatim (including any -0.0). Returns whether the
/// unfused intermediate would now be sparse.
fn post_dense(buf: &mut [f64], rows: usize, cols: usize) -> bool {
    let nnz = buf.iter().filter(|v| **v != 0.0).count() as u64;
    if Matrix::prefers_sparse(rows, cols, nnz) {
        flush_zeros(buf);
        true
    } else {
        false
    }
}

/// Post-step bookkeeping for a sparse-path step (`from_sparse_auto` after
/// CSR compaction): *every* zero — implicit or computed — reads back as
/// +0.0 regardless of which representation wins.
fn post_sparse(buf: &mut [f64], rows: usize, cols: usize) -> bool {
    flush_zeros(buf);
    let nnz = buf.iter().filter(|v| **v != 0.0).count() as u64;
    Matrix::prefers_sparse(rows, cols, nnz)
}

fn flush_zeros(buf: &mut [f64]) {
    for v in buf.iter_mut() {
        if *v == 0.0 {
            *v = 0.0;
        }
    }
}

//! # Bytecode VM: flat programs, preresolved operands, fused kernels
//!
//! The tree interpreter in [`crate::executor`] resolves every operand by
//! name on every execution — a hash lookup plus a defensive full-matrix
//! clone per operand, and a freshly formatted metric name per instruction.
//! Inside the iterative loops that dominate the paper's workloads (linear
//! regression, L2-SVM, GLM...) that overhead is paid thousands of times
//! for identical resolutions.
//!
//! This module lowers [`RuntimeProgram`](crate::program::RuntimeProgram)
//! trees once into a flat [`VmProgram`]:
//!
//! * every variable name is interned into a symbol table at lowering;
//!   execution indexes a scalar frame and a preresolved
//!   [`BufferPool`](crate::bufferpool::BufferPool) slot table — no
//!   per-instruction hashing;
//! * matrix operands are read by reference (`touch_slot` + `peek_slot`)
//!   instead of cloned;
//! * per-instruction metadata (mnemonic, `vm.op.*` metric name, memory
//!   prediction, touched-variable set) is precomputed into a side table,
//!   so the hot loop allocates no strings;
//! * a peephole pass ([`fuse`]) collapses chains of elementwise
//!   operations over single-use temporaries into one fused instruction
//!   executed over a single flat buffer with one output allocation.
//!
//! The tree interpreter remains the *differential oracle*: the VM is
//! bit-identical on values (printed output, scalars, matrices including
//! their dense/sparse representation, HDFS contents) and `ExecStats`,
//! which `tests/vm_differential.rs` and the fusion property test enforce
//! on the paper's scripts and on randomly generated DML.

pub mod exec;
mod fuse;
pub mod lower;
pub mod program;
pub mod verify;

pub use exec::VmExecutor;
pub use lower::{lower_fragment, lower_program, VmFragment, VmLowerOptions};
pub use program::{
    Arg, FusedArg, FusedOpKind, FusedSpec, FusedStep, InstrMeta, ObservedConstituent, SymbolTable,
    VmBlock, VmInstr, VmLowerStats, VmMrJob, VmOp, VmPredicate, VmProgram,
};
pub use verify::{install_verifier, verifier_installed};

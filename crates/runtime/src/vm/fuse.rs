//! Peephole fusion planning.
//!
//! Scans straight-line instruction lists for linear chains of fusible
//! elementwise operations (`X*Y+Z`, `exp(X-M)`, ...) whose intermediates
//! are single-use compiler temporaries, and groups them so the lowering
//! emits one fused instruction with a single output allocation.
//!
//! A chain extends from instruction `k` to `k+1` only when *every* use of
//! `k`'s output occurs in `k+1`'s matrix positions — so eliding the
//! intermediate is unobservable. Uses are counted per straight-line
//! instruction list, not per program: the compiler numbers temporaries
//! fresh for each lowered DAG (so the same `_mVar` name recurs across
//! blocks naming unrelated values), and a temporary never escapes its
//! block — any value that outlives the DAG is copied to a named variable
//! by an `assignvar` in the same list. `rmvar` references are excluded
//! from the use count: removing a variable that was never materialized is
//! a no-op.

use std::collections::HashMap;

use crate::instructions::{CpInstruction, Instruction, OpCode, TEMP_PREFIX};
use crate::value::Operand;

/// One lowering unit: a lone instruction or a fusible chain of indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Group {
    /// Lower instruction `i` as-is.
    Single(usize),
    /// Lower this run of consecutive indices as one fused instruction.
    Chain(Vec<usize>),
}

/// Operand positions holding matrices, per fusible opcode.
fn matrix_positions(op: &OpCode) -> &'static [usize] {
    match op {
        OpCode::BinaryMM(_) => &[0, 1],
        OpCode::BinaryMS(_) => &[0],
        OpCode::BinarySM(_) => &[1],
        OpCode::UnaryM(_) => &[0],
        _ => &[],
    }
}

/// If `cp` is fusible, its compile-time shape `(rows, cols)`: opcode
/// elementwise, output present, output dims known with at least one cell,
/// and every matrix operand's compile-time dims equal to the output dims
/// (which rules out vector broadcast and the runtime 1×1-degrade path).
fn fusible_shape(cp: &CpInstruction) -> Option<(usize, usize)> {
    if !cp.opcode.is_fusible_elementwise() || cp.output.is_none() {
        return None;
    }
    let rows = cp.output_mc.rows?;
    let cols = cp.output_mc.cols?;
    if rows == 0 || cols == 0 {
        return None;
    }
    for &p in matrix_positions(&cp.opcode) {
        let mc = cp.operand_mcs.get(p)?;
        if mc.rows != Some(rows) || mc.cols != Some(cols) {
            return None;
        }
    }
    Some((rows as usize, cols as usize))
}

fn as_cp(instr: &Instruction) -> Option<&CpInstruction> {
    match instr {
        Instruction::Cp(cp) => Some(cp),
        Instruction::MrJob(_) => None,
    }
}

/// Whether the chain may extend from `prev` into `next`: `prev`'s output
/// is a single-shape temporary consumed *only* by `next`'s matrix
/// positions (a scalar-position or later reference in the same list shows
/// up as an extra use and vetoes the link).
fn links(prev: &CpInstruction, next: &CpInstruction, use_counts: &HashMap<String, usize>) -> bool {
    let Some(out) = prev.output.as_deref() else {
        return false;
    };
    if !out.starts_with(TEMP_PREFIX) {
        return false;
    }
    let matrix_uses = matrix_positions(&next.opcode)
        .iter()
        .filter(|&&p| next.operands.get(p).and_then(Operand::as_var) == Some(out))
        .count();
    matrix_uses >= 1 && use_counts.get(out) == Some(&matrix_uses)
}

/// Plan fusion over one straight-line instruction list.
pub(crate) fn plan_fusion(
    instrs: &[Instruction],
    use_counts: &HashMap<String, usize>,
) -> Vec<Group> {
    let mut groups = Vec::new();
    let mut i = 0;
    while i < instrs.len() {
        let mut chain = vec![i];
        if let Some(cp) = as_cp(&instrs[i]) {
            if let Some(shape) = fusible_shape(cp) {
                let mut prev = cp;
                while let Some(next) = instrs.get(i + chain.len()).and_then(as_cp) {
                    if fusible_shape(next) != Some(shape) || !links(prev, next, use_counts) {
                        break;
                    }
                    chain.push(i + chain.len());
                    prev = next;
                }
            }
        }
        if chain.len() >= 2 {
            i += chain.len();
            groups.push(Group::Chain(chain));
        } else {
            groups.push(Group::Single(i));
            i += 1;
        }
    }
    groups
}

/// Count every read of each variable within one straight-line
/// instruction list: CP operands (excluding `rmvar`, which is a no-op on
/// absent variables) and MR-job inputs/outputs. Writes do not count.
pub(crate) fn use_counts_for(instrs: &[Instruction]) -> HashMap<String, usize> {
    let mut counts = HashMap::new();
    for instr in instrs {
        count_instruction(instr, &mut counts);
    }
    counts
}

fn count_instruction(instr: &Instruction, counts: &mut HashMap<String, usize>) {
    match instr {
        Instruction::Cp(cp) => {
            if cp.opcode == OpCode::RmVar {
                return;
            }
            for op in &cp.operands {
                if let Operand::Var(name) = op {
                    bump(counts, name);
                }
            }
        }
        Instruction::MrJob(job) => {
            for (name, _) in job.hdfs_inputs.iter().chain(&job.broadcast_inputs) {
                bump(counts, name);
            }
            for mr in job.mappers.iter().chain(&job.reducers) {
                for op in &mr.operands {
                    if let Operand::Var(name) = op {
                        bump(counts, name);
                    }
                }
            }
            for (name, _) in &job.outputs {
                bump(counts, name);
            }
        }
    }
}

fn bump(counts: &mut HashMap<String, usize>, name: &str) {
    *counts.entry(name.to_string()).or_insert(0) += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_matrix::{BinaryOp, MatrixCharacteristics, UnaryOp};

    fn mm(a: &str, b: &str, out: &str, r: u64, c: u64) -> Instruction {
        Instruction::Cp(CpInstruction {
            opcode: OpCode::BinaryMM(BinaryOp::Mul),
            operands: vec![Operand::var(a), Operand::var(b)],
            output: Some(out.into()),
            operand_mcs: vec![
                MatrixCharacteristics::dense(r, c),
                MatrixCharacteristics::dense(r, c),
            ],
            output_mc: MatrixCharacteristics::dense(r, c),
            bound_bytes: None,
        })
    }

    fn un(a: &str, out: &str, r: u64, c: u64) -> Instruction {
        Instruction::Cp(CpInstruction {
            opcode: OpCode::UnaryM(UnaryOp::Exp),
            operands: vec![Operand::var(a)],
            output: Some(out.into()),
            operand_mcs: vec![MatrixCharacteristics::dense(r, c)],
            output_mc: MatrixCharacteristics::dense(r, c),
            bound_bytes: None,
        })
    }

    #[test]
    fn single_use_temp_chains() {
        let instrs = vec![mm("X", "Y", "_mVar1", 4, 4), un("_mVar1", "Z", 4, 4)];
        let counts = use_counts_for(&instrs);
        assert_eq!(
            plan_fusion(&instrs, &counts),
            vec![Group::Chain(vec![0, 1])]
        );
    }

    #[test]
    fn multi_use_temp_does_not_chain() {
        let instrs = vec![
            mm("X", "Y", "_mVar1", 4, 4),
            un("_mVar1", "Z", 4, 4),
            un("_mVar1", "W", 4, 4),
        ];
        let counts = use_counts_for(&instrs);
        assert_eq!(
            plan_fusion(&instrs, &counts),
            vec![Group::Single(0), Group::Single(1), Group::Single(2)]
        );
    }

    #[test]
    fn named_intermediate_does_not_chain() {
        let instrs = vec![mm("X", "Y", "P", 4, 4), un("P", "Z", 4, 4)];
        let counts = use_counts_for(&instrs);
        assert_eq!(
            plan_fusion(&instrs, &counts),
            vec![Group::Single(0), Group::Single(1)]
        );
    }

    #[test]
    fn shape_mismatch_breaks_chain() {
        let instrs = vec![mm("X", "Y", "_mVar1", 4, 4), un("_mVar1", "Z", 4, 5)];
        let counts = use_counts_for(&instrs);
        assert_eq!(
            plan_fusion(&instrs, &counts),
            vec![Group::Single(0), Group::Single(1)]
        );
    }

    #[test]
    fn three_step_chain() {
        let instrs = vec![
            mm("X", "Y", "_mVar1", 8, 2),
            mm("_mVar1", "Z", "_mVar2", 8, 2),
            un("_mVar2", "out", 8, 2),
        ];
        let counts = use_counts_for(&instrs);
        assert_eq!(
            plan_fusion(&instrs, &counts),
            vec![Group::Chain(vec![0, 1, 2])]
        );
    }
}

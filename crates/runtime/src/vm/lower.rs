//! One-time lowering of a [`RuntimeProgram`] into a [`VmProgram`].
//!
//! This is the symbol-resolution pass: every variable name is interned to
//! a `u32` symbol id, every literal moves into the constant pool, every
//! HDFS path into the string pool, and per-instruction observation
//! metadata (mnemonic, predicted bytes, touched set) is precomputed into
//! the [`InstrMeta`] side table. When fusion is enabled, straight-line
//! blocks additionally run the peephole planner from [`super::fuse`] and
//! lower each chain to a single [`VmOp::Fused`] instruction.

use crate::instructions::{CpInstruction, Instruction, MrOperator, OpCode};
use crate::program::{Predicate, RtBlock, RuntimeProgram};
use crate::value::Operand;
use crate::vm::fuse::{self, Group};
use crate::vm::program::{
    Arg, FusedArg, FusedOpKind, FusedSpec, FusedStep, InstrMeta, ObservedConstituent, SymbolTable,
    Tables, VmBlock, VmInstr, VmLowerStats, VmMrJob, VmOp, VmPredicate, VmProgram,
};

/// Lowering options.
#[derive(Debug, Clone, Copy)]
pub struct VmLowerOptions {
    /// Run the peephole elementwise-fusion pass (on by default; the
    /// differential proptest compares fused against unfused lowering).
    pub fuse: bool,
}

impl Default for VmLowerOptions {
    fn default() -> Self {
        VmLowerOptions { fuse: true }
    }
}

/// Lower a runtime program into flat bytecode.
pub fn lower_program(program: &RuntimeProgram, options: VmLowerOptions) -> VmProgram {
    let mut lw = Lowerer {
        symbols: SymbolTable::default(),
        consts: Vec::new(),
        strings: Vec::new(),
        metas: Vec::new(),
        fused: Vec::new(),
        mr_jobs: Vec::new(),
        fuse: options.fuse,
        stats: VmLowerStats::default(),
    };
    let blocks = lw.lower_blocks(&program.blocks);
    reml_trace::count("vm.fusion.groups", lw.stats.fused_groups as u64);
    reml_trace::count(
        "vm.fusion.ops_eliminated",
        lw.stats.fused_ops_eliminated as u64,
    );
    // Lowering is the only pass allowed to grow the table; from here on
    // the executor treats symbol ids as a closed universe.
    lw.symbols.seal();
    let lowered = VmProgram {
        symbols: lw.symbols,
        consts: lw.consts,
        strings: lw.strings,
        metas: lw.metas,
        fused: lw.fused,
        mr_jobs: lw.mr_jobs,
        blocks,
        fused_enabled: options.fuse,
        stats: lw.stats,
    };
    super::verify::verify_program(&lowered);
    lowered
}

/// A recompiled block fragment lowered on the fly: carries its own tables
/// (symbols cloned from the host program and possibly extended, so
/// existing symbol ids keep their meaning in the executor's frame).
pub struct VmFragment {
    /// Extended symbol table (superset of the host program's).
    pub symbols: SymbolTable,
    /// Fragment-local constant pool.
    pub consts: Vec<crate::value::ScalarValue>,
    /// Fragment-local string pool.
    pub strings: Vec<String>,
    /// Fragment-local metadata table.
    pub metas: Vec<InstrMeta>,
    /// Fragment-local fused specs.
    pub fused: Vec<FusedSpec>,
    /// Fragment-local MR jobs.
    pub mr_jobs: Vec<VmMrJob>,
    /// Lowered instructions.
    pub code: Vec<VmInstr>,
}

impl VmFragment {
    pub(crate) fn tables(&self) -> Tables<'_> {
        Tables {
            symbols: &self.symbols,
            consts: &self.consts,
            strings: &self.strings,
            metas: &self.metas,
            fused: &self.fused,
            mr_jobs: &self.mr_jobs,
        }
    }
}

/// Lower a recompiled plan (the §4 dynamic-recompilation path) against an
/// existing symbol table. Fusion uses fragment-local use counts, which is
/// sound because recompilation replaces exactly one straight-line block
/// and compiler temporaries never escape their block.
pub fn lower_fragment(
    base_symbols: &SymbolTable,
    plan: &[Instruction],
    fuse_enabled: bool,
) -> VmFragment {
    let mut lw = Lowerer {
        symbols: base_symbols.extend_clone(),
        consts: Vec::new(),
        strings: Vec::new(),
        metas: Vec::new(),
        fused: Vec::new(),
        mr_jobs: Vec::new(),
        fuse: fuse_enabled,
        stats: VmLowerStats::default(),
    };
    let code = lw.lower_code(plan, fuse_enabled);
    lw.symbols.seal();
    let fragment = VmFragment {
        symbols: lw.symbols,
        consts: lw.consts,
        strings: lw.strings,
        metas: lw.metas,
        fused: lw.fused,
        mr_jobs: lw.mr_jobs,
        code,
    };
    super::verify::verify_fragment(&fragment, plan);
    fragment
}

struct Lowerer {
    symbols: SymbolTable,
    consts: Vec<crate::value::ScalarValue>,
    strings: Vec<String>,
    metas: Vec<InstrMeta>,
    fused: Vec<FusedSpec>,
    mr_jobs: Vec<VmMrJob>,
    fuse: bool,
    stats: VmLowerStats,
}

impl Lowerer {
    fn lower_blocks(&mut self, blocks: &[RtBlock]) -> Vec<VmBlock> {
        blocks.iter().map(|b| self.lower_block(b)).collect()
    }

    fn lower_block(&mut self, block: &RtBlock) -> VmBlock {
        match block {
            RtBlock::Generic {
                source,
                instructions,
                requires_recompile,
            } => VmBlock::Generic {
                source: *source,
                code: self.lower_code(instructions, true),
                requires_recompile: *requires_recompile,
            },
            RtBlock::If {
                pred,
                then_blocks,
                else_blocks,
                ..
            } => VmBlock::If {
                pred: self.lower_predicate(pred),
                then_blocks: self.lower_blocks(then_blocks),
                else_blocks: self.lower_blocks(else_blocks),
            },
            RtBlock::While { pred, body, .. } => VmBlock::While {
                pred: self.lower_predicate(pred),
                body: self.lower_blocks(body),
            },
            RtBlock::For {
                var,
                from,
                to,
                body,
                ..
            } => VmBlock::For {
                var: self.symbols.intern(var),
                from: self.lower_predicate(from),
                to: self.lower_predicate(to),
                body: self.lower_blocks(body),
            },
        }
    }

    fn lower_predicate(&mut self, pred: &Predicate) -> VmPredicate {
        // Predicates are tiny straight-line snippets; fusing them would
        // save nothing, so they lower instruction by instruction.
        VmPredicate {
            code: self.lower_code(&pred.instructions, false),
            result: self.symbols.intern(&pred.result_var),
        }
    }

    fn lower_code(&mut self, instrs: &[Instruction], allow_fuse: bool) -> Vec<VmInstr> {
        let groups = if self.fuse && allow_fuse {
            // Use counts are per-list: temp names are recycled across
            // blocks and never escape their own list (see `super::fuse`).
            let counts = fuse::use_counts_for(instrs);
            fuse::plan_fusion(instrs, &counts)
        } else {
            (0..instrs.len()).map(Group::Single).collect()
        };
        let mut code = Vec::with_capacity(groups.len());
        for group in groups {
            match group {
                Group::Single(i) => code.push(self.lower_instruction(&instrs[i])),
                Group::Chain(idxs) => {
                    let cps: Vec<&CpInstruction> = idxs
                        .iter()
                        .map(|&i| match &instrs[i] {
                            Instruction::Cp(cp) => cp,
                            Instruction::MrJob(_) => unreachable!("chains are CP-only"),
                        })
                        .collect();
                    code.push(self.lower_chain(&cps));
                }
            }
        }
        self.stats.instructions += code.len();
        code
    }

    fn lower_arg(&mut self, op: &Operand) -> Arg {
        match op {
            Operand::Var(name) => Arg::Slot(self.symbols.intern(name)),
            Operand::Lit(v) => {
                self.consts.push(v.clone());
                Arg::Const((self.consts.len() - 1) as u32)
            }
        }
    }

    fn intern_string(&mut self, s: &str) -> u32 {
        self.strings.push(s.to_string());
        (self.strings.len() - 1) as u32
    }

    fn push_meta(&mut self, meta: InstrMeta) -> u32 {
        self.metas.push(meta);
        (self.metas.len() - 1) as u32
    }

    fn lower_instruction(&mut self, instr: &Instruction) -> VmInstr {
        match instr {
            Instruction::Cp(cp) => self.lower_cp(cp),
            Instruction::MrJob(job) => {
                let ops = job
                    .mappers
                    .iter()
                    .chain(&job.reducers)
                    .map(|op| self.lower_mr_op(op))
                    .collect();
                let outputs = job
                    .outputs
                    .iter()
                    .map(|(name, _)| {
                        let sym = self.symbols.intern(name);
                        let path = self.intern_string(&format!("tmp/{name}"));
                        (sym, path)
                    })
                    .collect();
                self.mr_jobs.push(VmMrJob { ops, outputs });
                let job_idx = (self.mr_jobs.len() - 1) as u32;
                let meta = self.push_meta(InstrMeta {
                    mnemonic: "mr_job".into(),
                    metric: "vm.op.mr_job".into(),
                    cp_count: 0,
                    predicted_bytes: None,
                    bound_bytes: None,
                    touched: Box::new([]),
                    predicted_flops: None,
                    constituents: Box::new([]),
                });
                VmInstr {
                    op: VmOp::MrJob { job: job_idx },
                    args: Box::new([]),
                    out: None,
                    meta,
                }
            }
        }
    }

    fn lower_cp(&mut self, cp: &CpInstruction) -> VmInstr {
        let op = self.lower_opcode(&cp.opcode);
        let args: Box<[Arg]> = cp.operands.iter().map(|o| self.lower_arg(o)).collect();
        let out = cp.output.as_deref().map(|n| self.symbols.intern(n));
        let meta = self.push_meta(self.cp_meta(cp));
        VmInstr {
            op,
            args,
            out,
            meta,
        }
    }

    /// Lower an MR operator like a CP instruction (same opcode
    /// vocabulary). Its meta is never read on the hot path — MR operators
    /// are neither individually timed nor observed, matching the tree
    /// executor.
    fn lower_mr_op(&mut self, op: &MrOperator) -> VmInstr {
        let vop = self.lower_opcode(&op.opcode);
        let args: Box<[Arg]> = op.operands.iter().map(|o| self.lower_arg(o)).collect();
        let out = op.output.as_deref().map(|n| self.symbols.intern(n));
        let meta = self.push_meta(InstrMeta {
            mnemonic: op.opcode.mnemonic(),
            metric: format!("vm.op.{}", op.opcode.mnemonic()),
            cp_count: 0,
            predicted_bytes: None,
            bound_bytes: None,
            touched: Box::new([]),
            predicted_flops: None,
            constituents: Box::new([]),
        });
        VmInstr {
            op: vop,
            args,
            out,
            meta,
        }
    }

    fn lower_opcode(&mut self, opcode: &OpCode) -> VmOp {
        match opcode {
            OpCode::PersistentRead { path } => VmOp::PRead {
                path: self.intern_string(path),
            },
            OpCode::PersistentWrite { path } => VmOp::PWrite {
                path: self.intern_string(path),
            },
            OpCode::DataGenConst => VmOp::DataGenConst,
            OpCode::DataGenSeq => VmOp::DataGenSeq,
            OpCode::DataGenRand => VmOp::DataGenRand,
            OpCode::MatMult => VmOp::MatMult,
            OpCode::MatMultTransLeft => VmOp::MatMultTransLeft,
            OpCode::Tsmm => VmOp::Tsmm,
            OpCode::MmChain => VmOp::MmChain,
            OpCode::Solve => VmOp::Solve,
            OpCode::Transpose => VmOp::Transpose,
            OpCode::Diag => VmOp::Diag,
            OpCode::BinaryMM(op) => VmOp::BinaryMM(*op),
            OpCode::BinaryMS(op) => VmOp::BinaryMS(*op),
            OpCode::BinarySM(op) => VmOp::BinarySM(*op),
            OpCode::BinarySS(op) => VmOp::BinarySS(*op),
            OpCode::UnaryM(op) => VmOp::UnaryM(*op),
            OpCode::UnaryS(op) => VmOp::UnaryS(*op),
            OpCode::Agg(op) => VmOp::Agg(*op),
            OpCode::TableSeq => VmOp::TableSeq,
            OpCode::RightIndex => VmOp::RightIndex,
            OpCode::LeftIndex => VmOp::LeftIndex,
            OpCode::Append => VmOp::Append,
            OpCode::AppendR => VmOp::AppendR,
            OpCode::NRow => VmOp::NRow,
            OpCode::NCol => VmOp::NCol,
            OpCode::CastScalar => VmOp::CastScalar,
            OpCode::CastMatrix => VmOp::CastMatrix,
            OpCode::Assign => VmOp::Assign,
            OpCode::Concat => VmOp::Concat,
            OpCode::Print => VmOp::Print,
            OpCode::RmVar => VmOp::RmVar,
        }
    }

    /// The tree executor's `record_observation` fold, precomputed: sum of
    /// operand and output size estimates (None-propagating) plus the
    /// sorted distinct touched-variable set.
    fn cp_meta(&self, cp: &CpInstruction) -> InstrMeta {
        let mnemonic = cp.opcode.mnemonic();
        InstrMeta {
            metric: format!("vm.op.{mnemonic}"),
            mnemonic,
            cp_count: 1,
            predicted_bytes: predicted_sum(cp),
            bound_bytes: cp.bound_bytes,
            touched: self.touched_symbols(cp, &[]),
            predicted_flops: cp_flops(cp),
            constituents: Box::new([]),
        }
    }

    /// Distinct sorted symbol ids of operand variables and the output,
    /// minus `exclude` (fused-chain intermediates). Requires all names
    /// already interned.
    fn touched_symbols(&self, cp: &CpInstruction, exclude: &[&str]) -> Box<[u32]> {
        let mut touched: Vec<u32> = cp
            .operands
            .iter()
            .filter_map(Operand::as_var)
            .chain(cp.output.as_deref())
            .filter(|name| !exclude.contains(name))
            .filter_map(|name| self.symbols.lookup(name))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched.into_boxed_slice()
    }

    fn lower_chain(&mut self, cps: &[&CpInstruction]) -> VmInstr {
        let (rows, cols) = (
            cps[0].output_mc.rows.expect("fusible shape known") as usize,
            cps[0].output_mc.cols.expect("fusible shape known") as usize,
        );
        let intermediates: Vec<&str> = cps[..cps.len() - 1]
            .iter()
            .filter_map(|cp| cp.output.as_deref())
            .collect();
        let mut steps = Vec::with_capacity(cps.len());
        for (k, cp) in cps.iter().enumerate() {
            let prev_out = if k > 0 {
                cps[k - 1].output.as_deref()
            } else {
                None
            };
            let (kind, matrix_positions): (FusedOpKind, &[usize]) = match &cp.opcode {
                OpCode::BinaryMM(op) => (FusedOpKind::MM(*op), &[0, 1]),
                OpCode::BinaryMS(op) => (FusedOpKind::MS(*op), &[0]),
                OpCode::BinarySM(op) => (FusedOpKind::SM(*op), &[1]),
                OpCode::UnaryM(op) => (FusedOpKind::Unary(*op), &[0]),
                other => unreachable!("non-fusible opcode {other:?} in chain"),
            };
            let args: Box<[FusedArg]> = cp
                .operands
                .iter()
                .enumerate()
                .map(|(p, operand)| {
                    let is_flow = matrix_positions.contains(&p)
                        && operand.as_var().is_some()
                        && operand.as_var() == prev_out;
                    if is_flow {
                        FusedArg::Flow
                    } else {
                        match self.lower_arg(operand) {
                            Arg::Slot(s) => FusedArg::Slot(s),
                            Arg::Const(c) => FusedArg::Const(c),
                        }
                    }
                })
                .collect();
            steps.push(FusedStep { kind, args });
        }
        // Intern the final output (intermediates are elided entirely).
        let out_name = cps.last().unwrap().output.as_deref().expect("fusible");
        let out = self.symbols.intern(out_name);

        let mnemonics: Vec<String> = cps.iter().map(|cp| cp.opcode.mnemonic()).collect();
        let mnemonic = format!("fused({})", mnemonics.join(","));
        let constituents: Box<[ObservedConstituent]> = cps
            .iter()
            .map(|cp| ObservedConstituent {
                mnemonic: cp.opcode.mnemonic(),
                predicted_flops: cp_flops(cp),
                predicted_bytes: predicted_sum(cp),
            })
            .collect();
        let flops = constituents
            .iter()
            .try_fold(0.0f64, |acc, c| c.predicted_flops.map(|f| acc + f));
        let predicted = cps
            .iter()
            .try_fold(0u64, |acc, cp| predicted_sum(cp).map(|b| acc + b));
        let bound = cps
            .iter()
            .try_fold(0u64, |acc, cp| cp.bound_bytes.map(|b| acc + b));
        let mut touched: Vec<u32> = cps
            .iter()
            .flat_map(|cp| self.touched_symbols(cp, &intermediates).into_vec())
            .collect();
        touched.sort_unstable();
        touched.dedup();

        self.fused.push(FusedSpec { steps, rows, cols });
        let spec = (self.fused.len() - 1) as u32;
        self.stats.fused_groups += 1;
        self.stats.fused_ops_eliminated += cps.len() - 1;
        let meta = self.push_meta(InstrMeta {
            metric: format!("vm.op.{mnemonic}"),
            mnemonic,
            cp_count: cps.len() as u64,
            predicted_bytes: predicted,
            bound_bytes: bound,
            touched: touched.into_boxed_slice(),
            predicted_flops: flops,
            constituents,
        });
        VmInstr {
            op: VmOp::Fused { spec },
            args: Box::new([]),
            out: Some(out),
            meta,
        }
    }
}

fn cp_flops(cp: &CpInstruction) -> Option<f64> {
    crate::flops::predicted_flops(&cp.opcode, &cp.operand_mcs, &cp.output_mc)
}

fn predicted_sum(cp: &CpInstruction) -> Option<u64> {
    let mut predicted = Some(0u64);
    for mc in cp.operand_mcs.iter().chain(std::iter::once(&cp.output_mc)) {
        predicted = match (predicted, mc.estimated_size_bytes()) {
            (Some(acc), Some(b)) => Some(acc + b),
            _ => None,
        };
    }
    predicted
}

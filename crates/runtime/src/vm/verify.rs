//! Dependency-inverted bytecode-verification hooks.
//!
//! The PL040 bytecode verifier lives in `reml_planlint`, which depends on
//! this crate — so the lowering pass cannot call it directly. Instead the
//! lowerer invokes whatever verifiers were installed here; planlint's
//! `install_vm_verifier()` registers its rule set, and any process that
//! wants every lowered program (including §4 recompiled fragments, which
//! are produced *inside* the executor where no external caller can see
//! them) statically checked installs it once at startup.
//!
//! When nothing is installed — the default, and the release hot path —
//! the cost is a single atomic load per lowering.

use std::sync::OnceLock;

use crate::instructions::Instruction;

use super::lower::VmFragment;
use super::program::VmProgram;

/// Verifier for a complete lowered program. Expected to panic (or log)
/// on a violated invariant.
pub type ProgramVerifier = fn(&VmProgram);

/// Verifier for a recompiled block fragment, given the source plan it was
/// lowered from (so lowering fidelity can be checked, not just internal
/// consistency).
pub type FragmentVerifier = fn(&VmFragment, &[Instruction]);

static VERIFIER: OnceLock<(ProgramVerifier, FragmentVerifier)> = OnceLock::new();

/// Install verifiers to run after every [`lower_program`] and
/// [`lower_fragment`](super::lower::lower_fragment) in this process.
/// Idempotent: the first installation wins, later calls are no-ops.
///
/// [`lower_program`]: super::lower::lower_program
pub fn install_verifier(program: ProgramVerifier, fragment: FragmentVerifier) {
    let _ = VERIFIER.set((program, fragment));
}

/// Whether a verifier pair has been installed.
pub fn verifier_installed() -> bool {
    VERIFIER.get().is_some()
}

pub(crate) fn verify_program(program: &VmProgram) {
    if let Some((f, _)) = VERIFIER.get() {
        f(program);
    }
}

pub(crate) fn verify_fragment(fragment: &VmFragment, plan: &[Instruction]) {
    if let Some((_, f)) = VERIFIER.get() {
        f(fragment, plan);
    }
}

//! SystemML-style buffer pool for matrix variables.
//!
//! The CP runtime "pins inputs and outputs into memory in order to prevent
//! repeated deserialization" (§2.1). The pool holds matrix variables up to
//! a byte capacity (the CP memory budget); when a new entry does not fit,
//! least-recently-used unpinned entries are *evicted* to simulated local
//! disk. Eviction/restore byte counters are the ground truth the
//! discrete-event simulator charges extra IO time for — reproducing the
//! paper's observation that buffer-pool evictions are a source of
//! cost-model suboptimality (§5, "Sources of suboptimality").
//!
//! Entries also track a *dirty* flag (in-memory state differs from HDFS),
//! which drives both `write()` elision and the migration cost model
//! (§4.1: "we write all dirty variables").
//!
//! ## Slots
//!
//! Internally the pool is a *slot arena*: each name resolves once (via
//! [`BufferPool::resolve_slot`]) to a stable [`SlotId`] — an index into a
//! `Vec` — and every subsequent access is an array index instead of a
//! string-keyed map lookup. The bytecode VM resolves all program
//! variables to slots at load time and then runs name-free; the legacy
//! name API (`get`/`put`/...) is a thin wrapper that does the hash lookup
//! per call, preserving the tree interpreter's behaviour unchanged.
//! Slots are never reused: removing a variable clears the slot's entry
//! but keeps the `SlotId` valid for later re-`put`s.

use std::collections::HashMap;

use reml_matrix::Matrix;

/// Eviction and restore accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Number of evictions performed.
    pub evictions: u64,
    /// Bytes written to local disk by evictions.
    pub bytes_evicted: u64,
    /// Number of restores of previously evicted entries.
    pub restores: u64,
    /// Bytes read back from local disk by restores.
    pub bytes_restored: u64,
}

/// Stable handle of a pool variable: an index into the slot arena,
/// assigned by [`BufferPool::resolve_slot`] and valid for the lifetime of
/// the pool (slots are not reused after `remove`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotId(u32);

impl SlotId {
    /// The arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Entry {
    data: Matrix,
    /// In memory (true) or evicted to local disk (false).
    in_memory: bool,
    /// Differs from its HDFS representation.
    dirty: bool,
    /// Pinned entries cannot be evicted (inputs/outputs of the currently
    /// executing instruction).
    pinned: bool,
    /// LRU clock.
    last_use: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    entry: Option<Entry>,
}

/// A capacity-bounded pool of named matrix variables.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity_bytes: u64,
    slots: Vec<Slot>,
    index: HashMap<String, u32>,
    /// Bytes of in-memory entries, maintained incrementally so hot paths
    /// (every put) need no full arena scan.
    resident_bytes: u64,
    clock: u64,
    stats: BufferPoolStats,
}

impl BufferPool {
    /// Pool with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        BufferPool {
            capacity_bytes,
            slots: Vec::new(),
            index: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// The capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Resize the pool (AM migration to a container with more memory).
    pub fn set_capacity_bytes(&mut self, capacity_bytes: u64) {
        self.capacity_bytes = capacity_bytes;
    }

    /// Bytes of in-memory (non-evicted) entries.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    // ------------------------------------------------------------------
    // Slot API — the VM's name-free fast path.
    // ------------------------------------------------------------------

    /// Resolve a name to its stable slot, allocating one on first use.
    /// One hash-map pass (entry API); every later access by [`SlotId`]
    /// is a plain array index.
    pub fn resolve_slot(&mut self, name: impl Into<String>) -> SlotId {
        let name = name.into();
        let next = self.slots.len() as u32;
        let slots = &mut self.slots;
        let id = *self.index.entry(name).or_insert_with_key(|key| {
            slots.push(Slot {
                name: key.clone(),
                entry: None,
            });
            next
        });
        SlotId(id)
    }

    /// The slot of a name, if already resolved.
    pub fn slot_of(&self, name: &str) -> Option<SlotId> {
        self.index.get(name).copied().map(SlotId)
    }

    /// The name a slot was resolved from.
    pub fn slot_name(&self, slot: SlotId) -> &str {
        &self.slots[slot.index()].name
    }

    /// Insert or replace a variable by slot (dirty: it was just produced
    /// in memory).
    pub fn put_slot(&mut self, slot: SlotId, data: Matrix) {
        self.put_slot_with_dirty(slot, data, true);
    }

    /// Insert by slot with an explicit dirty flag.
    pub fn put_slot_with_dirty(&mut self, slot: SlotId, data: Matrix, dirty: bool) {
        self.clock += 1;
        let s = &mut self.slots[slot.index()];
        if let Some(old) = &s.entry {
            if old.in_memory {
                self.resident_bytes -= old.data.size_bytes();
            }
        }
        self.resident_bytes += data.size_bytes();
        s.entry = Some(Entry {
            data,
            in_memory: true,
            dirty,
            pinned: false,
            last_use: self.clock,
        });
        self.make_room(Some(slot));
    }

    /// Touch a slot: bump its LRU clock and restore it from local disk if
    /// evicted (with byte accounting), without cloning the data. Returns
    /// false when the slot holds no value. Pair with [`peek_slot`] to
    /// read the matrix by reference — the VM's clone-free operand fetch.
    ///
    /// [`peek_slot`]: BufferPool::peek_slot
    pub fn touch_slot(&mut self, slot: SlotId) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let restored = {
            let Some(e) = self.slots[slot.index()].entry.as_mut() else {
                return false;
            };
            e.last_use = clock;
            if !e.in_memory {
                e.in_memory = true;
                Some(e.data.size_bytes())
            } else {
                None
            }
        };
        if let Some(bytes) = restored {
            self.resident_bytes += bytes;
            self.stats.restores += 1;
            self.stats.bytes_restored += bytes;
            reml_trace::count("pool.restores", 1);
            reml_trace::count("pool.bytes_restored", bytes);
            self.make_room(Some(slot));
        }
        true
    }

    /// Read a slot's value by reference without touching LRU state.
    pub fn peek_slot(&self, slot: SlotId) -> Option<&Matrix> {
        self.slots[slot.index()].entry.as_ref().map(|e| &e.data)
    }

    /// Fetch by slot, restoring if evicted; clones the matrix (legacy
    /// value semantics). Prefer `touch_slot` + `peek_slot` where a
    /// reference suffices.
    pub fn get_slot(&mut self, slot: SlotId) -> Option<Matrix> {
        if !self.touch_slot(slot) {
            return None;
        }
        self.peek_slot(slot).cloned()
    }

    /// Whether a slot currently holds a value.
    pub fn contains_slot(&self, slot: SlotId) -> bool {
        self.slots[slot.index()].entry.is_some()
    }

    /// Whether a slot's value is dirty.
    pub fn is_dirty_slot(&self, slot: SlotId) -> Option<bool> {
        self.slots[slot.index()].entry.as_ref().map(|e| e.dirty)
    }

    /// Mark a slot clean (it was just exported to HDFS).
    pub fn mark_clean_slot(&mut self, slot: SlotId) {
        if let Some(e) = self.slots[slot.index()].entry.as_mut() {
            e.dirty = false;
        }
    }

    /// Remove a slot's value (the slot id stays valid).
    pub fn remove_slot(&mut self, slot: SlotId) -> Option<Matrix> {
        let e = self.slots[slot.index()].entry.take()?;
        if e.in_memory {
            self.resident_bytes -= e.data.size_bytes();
        }
        Some(e.data)
    }

    /// Occupied slots in arena order (resolution order).
    pub fn occupied_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.entry.is_some())
            .map(|(i, _)| SlotId(i as u32))
    }

    // ------------------------------------------------------------------
    // Legacy name API — one hash lookup per call, then the slot path.
    // ------------------------------------------------------------------

    /// Insert or replace a variable. New entries are dirty by default
    /// (they were just produced in memory).
    pub fn put(&mut self, name: impl Into<String>, data: Matrix) {
        self.put_with_dirty(name, data, true);
    }

    /// Insert with an explicit dirty flag (false for data just read from
    /// HDFS — its on-disk representation matches). Single entry-API pass:
    /// one name allocation, one hash lookup, no re-hash in eviction.
    pub fn put_with_dirty(&mut self, name: impl Into<String>, data: Matrix, dirty: bool) {
        let slot = self.resolve_slot(name);
        self.put_slot_with_dirty(slot, data, dirty);
    }

    /// Fetch a variable, restoring it from local disk if evicted. Returns
    /// a clone of the matrix (callers treat matrices as immutable values).
    pub fn get(&mut self, name: &str) -> Option<Matrix> {
        let slot = self.slot_of(name)?;
        self.get_slot(slot)
    }

    /// Variable characteristics without touching LRU state.
    pub fn peek(&self, name: &str) -> Option<&Matrix> {
        let slot = self.slot_of(name)?;
        self.peek_slot(slot)
    }

    /// Whether a variable exists in the pool (memory or evicted).
    pub fn contains(&self, name: &str) -> bool {
        self.slot_of(name).is_some_and(|s| self.contains_slot(s))
    }

    /// Whether a variable is dirty (needs export before migration).
    pub fn is_dirty(&self, name: &str) -> Option<bool> {
        self.is_dirty_slot(self.slot_of(name)?)
    }

    /// Mark a variable clean (it was just exported to HDFS).
    pub fn mark_clean(&mut self, name: &str) {
        if let Some(slot) = self.slot_of(name) {
            self.mark_clean_slot(slot);
        }
    }

    /// Pin variables for the duration of an instruction.
    pub fn pin(&mut self, names: &[&str]) {
        for n in names {
            if let Some(slot) = self.slot_of(n) {
                if let Some(e) = self.slots[slot.index()].entry.as_mut() {
                    e.pinned = true;
                }
            }
        }
    }

    /// Unpin all variables.
    pub fn unpin_all(&mut self) {
        for s in &mut self.slots {
            if let Some(e) = s.entry.as_mut() {
                e.pinned = false;
            }
        }
    }

    /// Remove a variable entirely.
    pub fn remove(&mut self, name: &str) -> Option<Matrix> {
        let slot = self.slot_of(name)?;
        self.remove_slot(slot)
    }

    /// Names of all dirty variables (the migration export set), sorted.
    pub fn dirty_variables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .slots
            .iter()
            .filter(|s| s.entry.as_ref().is_some_and(|e| e.dirty))
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names
    }

    /// All variable names, sorted.
    pub fn variables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .slots
            .iter()
            .filter(|s| s.entry.is_some())
            .map(|s| s.name.clone())
            .collect();
        names.sort();
        names
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Evict LRU unpinned entries until resident bytes fit the capacity.
    /// `protect` shields the entry just inserted or restored: it is the
    /// hottest value and evicting it immediately would thrash.
    fn make_room(&mut self, protect: Option<SlotId>) {
        while self.resident_bytes > self.capacity_bytes {
            // Find LRU unpinned in-memory entry.
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.entry.as_ref().map(|e| (i, e)))
                .filter(|(i, e)| e.in_memory && !e.pinned && protect.map(SlotId::index) != Some(*i))
                .min_by_key(|(_, e)| e.last_use)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let e = self.slots[i].entry.as_mut().expect("victim exists");
                    e.in_memory = false;
                    let bytes = e.data.size_bytes();
                    self.resident_bytes -= bytes;
                    self.stats.evictions += 1;
                    self.stats.bytes_evicted += bytes;
                    // Registry metrics: eviction counts/bytes alongside
                    // the local `BufferPoolStats`.
                    reml_trace::count("pool.evictions", 1);
                    reml_trace::count("pool.bytes_evicted", bytes);
                }
                // Everything resident is pinned: allow temporary overshoot
                // (SystemML likewise cannot evict pinned operands).
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m_kb(kb: usize) -> Matrix {
        // kb kilobytes dense: kb * 128 cells.
        Matrix::constant(kb * 128, 1, 1.0)
    }

    #[test]
    fn within_capacity_no_evictions() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        assert_eq!(pool.stats().evictions, 0);
        assert!(pool.get("a").is_some());
    }

    #[test]
    fn overflow_evicts_lru() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        let _ = pool.get("a"); // a is now more recent than b
        pool.put("c", m_kb(4)); // overflow: b is LRU victim
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().bytes_evicted, 4 * 1024);
        // b still accessible, restored on demand.
        assert!(pool.get("b").is_some());
        assert_eq!(pool.stats().restores, 1);
        assert_eq!(pool.stats().bytes_restored, 4 * 1024);
    }

    #[test]
    fn pinned_entries_survive() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        pool.pin(&["a", "b"]);
        pool.put("c", m_kb(4));
        pool.pin(&["c"]);
        // All pinned: overshoot allowed, no eviction of pinned entries.
        assert!(pool.resident_bytes() > pool.capacity_bytes());
        pool.unpin_all();
        pool.put("d", m_kb(1));
        assert!(pool.resident_bytes() <= pool.capacity_bytes());
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn dirty_tracking() {
        let mut pool = BufferPool::new(1024 * 1024);
        pool.put_with_dirty("X", m_kb(1), false); // read from HDFS
        pool.put("g", m_kb(1)); // computed
        assert_eq!(pool.is_dirty("X"), Some(false));
        assert_eq!(pool.is_dirty("g"), Some(true));
        assert_eq!(pool.dirty_variables(), vec!["g".to_string()]);
        pool.mark_clean("g");
        assert!(pool.dirty_variables().is_empty());
    }

    #[test]
    fn remove_and_contains() {
        let mut pool = BufferPool::new(1024);
        pool.put("a", m_kb(1));
        assert!(pool.contains("a"));
        assert!(pool.remove("a").is_some());
        assert!(!pool.contains("a"));
        assert!(pool.get("a").is_none());
    }

    #[test]
    fn grow_capacity_stops_thrashing() {
        let mut pool = BufferPool::new(4 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        let evictions_before = pool.stats().evictions;
        assert!(evictions_before > 0);
        pool.set_capacity_bytes(64 * 1024);
        let _ = pool.get("a");
        let _ = pool.get("b");
        pool.put("c", m_kb(4));
        // No further evictions after the resize.
        assert_eq!(pool.stats().evictions, evictions_before);
    }

    #[test]
    fn slot_api_roundtrip() {
        let mut pool = BufferPool::new(1024 * 1024);
        let a = pool.resolve_slot("a");
        assert_eq!(pool.resolve_slot("a"), a, "resolution is stable");
        assert!(!pool.contains_slot(a));
        pool.put_slot(a, m_kb(1));
        assert!(pool.contains_slot(a));
        assert_eq!(pool.slot_name(a), "a");
        // Name and slot APIs see the same entry.
        assert!(pool.contains("a"));
        assert_eq!(pool.peek("a").unwrap(), pool.peek_slot(a).unwrap());
        // Removal clears the value but keeps the slot valid.
        assert!(pool.remove_slot(a).is_some());
        assert!(!pool.contains("a"));
        pool.put_slot(a, m_kb(2));
        assert_eq!(pool.get("a").unwrap().size_bytes(), 2 * 1024);
    }

    #[test]
    fn touch_restores_without_cloning() {
        let mut pool = BufferPool::new(10 * 1024);
        let a = pool.resolve_slot("a");
        let b = pool.resolve_slot("b");
        pool.put_slot(a, m_kb(6));
        pool.put_slot(b, m_kb(6)); // evicts a
        assert_eq!(pool.stats().evictions, 1);
        assert!(pool.touch_slot(a)); // restore
        assert_eq!(pool.stats().restores, 1);
        assert_eq!(pool.stats().bytes_restored, 6 * 1024);
        assert!(pool.peek_slot(a).is_some());
        let missing = pool.resolve_slot("missing");
        assert!(!pool.touch_slot(missing));
    }

    #[test]
    fn resident_bytes_tracks_incrementally() {
        let mut pool = BufferPool::new(100 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(2));
        assert_eq!(pool.resident_bytes(), 6 * 1024);
        pool.put("a", m_kb(1)); // replace shrinks
        assert_eq!(pool.resident_bytes(), 3 * 1024);
        pool.remove("b");
        assert_eq!(pool.resident_bytes(), 1024);
    }

    #[test]
    fn eviction_metric_reaches_registry() {
        let rec = reml_trace::Recorder::new(64);
        reml_trace::install(std::sync::Arc::clone(&rec));
        let before = reml_trace::metrics().counter("pool.evictions").get();
        let mut pool = BufferPool::new(4 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4)); // evicts a
        let after = reml_trace::metrics().counter("pool.evictions").get();
        reml_trace::uninstall();
        assert!(pool.stats().evictions >= 1);
        assert!(after >= before + pool.stats().evictions);
    }
}

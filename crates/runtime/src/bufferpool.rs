//! SystemML-style buffer pool for matrix variables.
//!
//! The CP runtime "pins inputs and outputs into memory in order to prevent
//! repeated deserialization" (§2.1). The pool holds matrix variables up to
//! a byte capacity (the CP memory budget); when a new entry does not fit,
//! least-recently-used unpinned entries are *evicted* to simulated local
//! disk. Eviction/restore byte counters are the ground truth the
//! discrete-event simulator charges extra IO time for — reproducing the
//! paper's observation that buffer-pool evictions are a source of
//! cost-model suboptimality (§5, "Sources of suboptimality").
//!
//! Entries also track a *dirty* flag (in-memory state differs from HDFS),
//! which drives both `write()` elision and the migration cost model
//! (§4.1: "we write all dirty variables").

use std::collections::BTreeMap;

use reml_matrix::Matrix;

/// Eviction and restore accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Number of evictions performed.
    pub evictions: u64,
    /// Bytes written to local disk by evictions.
    pub bytes_evicted: u64,
    /// Number of restores of previously evicted entries.
    pub restores: u64,
    /// Bytes read back from local disk by restores.
    pub bytes_restored: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    data: Matrix,
    /// In memory (true) or evicted to local disk (false).
    in_memory: bool,
    /// Differs from its HDFS representation.
    dirty: bool,
    /// Pinned entries cannot be evicted (inputs/outputs of the currently
    /// executing instruction).
    pinned: bool,
    /// LRU clock.
    last_use: u64,
}

/// A capacity-bounded pool of named matrix variables.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity_bytes: u64,
    entries: BTreeMap<String, Entry>,
    clock: u64,
    stats: BufferPoolStats,
}

impl BufferPool {
    /// Pool with the given capacity in bytes.
    pub fn new(capacity_bytes: u64) -> Self {
        BufferPool {
            capacity_bytes,
            entries: BTreeMap::new(),
            clock: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// The capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Resize the pool (AM migration to a container with more memory).
    pub fn set_capacity_bytes(&mut self, capacity_bytes: u64) {
        self.capacity_bytes = capacity_bytes;
    }

    /// Bytes of in-memory (non-evicted) entries.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.in_memory)
            .map(|e| e.data.size_bytes())
            .sum()
    }

    /// Insert or replace a variable. New entries are dirty by default
    /// (they were just produced in memory).
    pub fn put(&mut self, name: impl Into<String>, data: Matrix) {
        self.put_with_dirty(name, data, true);
    }

    /// Insert with an explicit dirty flag (false for data just read from
    /// HDFS — its on-disk representation matches).
    pub fn put_with_dirty(&mut self, name: impl Into<String>, data: Matrix, dirty: bool) {
        let name = name.into();
        self.clock += 1;
        self.entries.insert(
            name.clone(),
            Entry {
                data,
                in_memory: true,
                dirty,
                pinned: false,
                last_use: self.clock,
            },
        );
        self.make_room(Some(&name));
    }

    /// Fetch a variable, restoring it from local disk if evicted. Returns
    /// a clone of the matrix (callers treat matrices as immutable values).
    pub fn get(&mut self, name: &str) -> Option<Matrix> {
        self.clock += 1;
        let clock = self.clock;
        let (restored_bytes, data) = {
            let e = self.entries.get_mut(name)?;
            e.last_use = clock;
            let restored = if !e.in_memory {
                e.in_memory = true;
                Some(e.data.size_bytes())
            } else {
                None
            };
            (restored, e.data.clone())
        };
        if let Some(bytes) = restored_bytes {
            self.stats.restores += 1;
            self.stats.bytes_restored += bytes;
            reml_trace::count("pool.restores", 1);
            reml_trace::count("pool.bytes_restored", bytes);
            self.make_room(Some(name));
        }
        Some(data)
    }

    /// Variable characteristics without touching LRU state.
    pub fn peek(&self, name: &str) -> Option<&Matrix> {
        self.entries.get(name).map(|e| &e.data)
    }

    /// Whether a variable exists in the pool (memory or evicted).
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Whether a variable is dirty (needs export before migration).
    pub fn is_dirty(&self, name: &str) -> Option<bool> {
        self.entries.get(name).map(|e| e.dirty)
    }

    /// Mark a variable clean (it was just exported to HDFS).
    pub fn mark_clean(&mut self, name: &str) {
        if let Some(e) = self.entries.get_mut(name) {
            e.dirty = false;
        }
    }

    /// Pin variables for the duration of an instruction.
    pub fn pin(&mut self, names: &[&str]) {
        for n in names {
            if let Some(e) = self.entries.get_mut(*n) {
                e.pinned = true;
            }
        }
    }

    /// Unpin all variables.
    pub fn unpin_all(&mut self) {
        for e in self.entries.values_mut() {
            e.pinned = false;
        }
    }

    /// Remove a variable entirely.
    pub fn remove(&mut self, name: &str) -> Option<Matrix> {
        self.entries.remove(name).map(|e| e.data)
    }

    /// Names of all dirty variables (the migration export set).
    pub fn dirty_variables(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, e)| e.dirty)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// All variable names.
    pub fn variables(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// Evict LRU unpinned entries until resident bytes fit the capacity.
    /// `protect` shields the entry just inserted or restored: it is the
    /// hottest value and evicting it immediately would thrash.
    fn make_room(&mut self, protect: Option<&str>) {
        while self.resident_bytes() > self.capacity_bytes {
            // Find LRU unpinned in-memory entry.
            let victim = self
                .entries
                .iter()
                .filter(|(n, e)| e.in_memory && !e.pinned && Some(n.as_str()) != protect)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(n, _)| n.clone());
            match victim {
                Some(name) => {
                    let e = self.entries.get_mut(&name).expect("victim exists");
                    e.in_memory = false;
                    self.stats.evictions += 1;
                    self.stats.bytes_evicted += e.data.size_bytes();
                    reml_trace::count("pool.evictions", 1);
                    reml_trace::count("pool.bytes_evicted", e.data.size_bytes());
                }
                // Everything resident is pinned: allow temporary overshoot
                // (SystemML likewise cannot evict pinned operands).
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m_kb(kb: usize) -> Matrix {
        // kb kilobytes dense: kb * 128 cells.
        Matrix::constant(kb * 128, 1, 1.0)
    }

    #[test]
    fn within_capacity_no_evictions() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        assert_eq!(pool.stats().evictions, 0);
        assert!(pool.get("a").is_some());
    }

    #[test]
    fn overflow_evicts_lru() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        let _ = pool.get("a"); // a is now more recent than b
        pool.put("c", m_kb(4)); // overflow: b is LRU victim
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.stats().bytes_evicted, 4 * 1024);
        // b still accessible, restored on demand.
        assert!(pool.get("b").is_some());
        assert_eq!(pool.stats().restores, 1);
        assert_eq!(pool.stats().bytes_restored, 4 * 1024);
    }

    #[test]
    fn pinned_entries_survive() {
        let mut pool = BufferPool::new(10 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        pool.pin(&["a", "b"]);
        pool.put("c", m_kb(4));
        pool.pin(&["c"]);
        // All pinned: overshoot allowed, no eviction of pinned entries.
        assert!(pool.resident_bytes() > pool.capacity_bytes());
        pool.unpin_all();
        pool.put("d", m_kb(1));
        assert!(pool.resident_bytes() <= pool.capacity_bytes());
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn dirty_tracking() {
        let mut pool = BufferPool::new(1024 * 1024);
        pool.put_with_dirty("X", m_kb(1), false); // read from HDFS
        pool.put("g", m_kb(1)); // computed
        assert_eq!(pool.is_dirty("X"), Some(false));
        assert_eq!(pool.is_dirty("g"), Some(true));
        assert_eq!(pool.dirty_variables(), vec!["g".to_string()]);
        pool.mark_clean("g");
        assert!(pool.dirty_variables().is_empty());
    }

    #[test]
    fn remove_and_contains() {
        let mut pool = BufferPool::new(1024);
        pool.put("a", m_kb(1));
        assert!(pool.contains("a"));
        assert!(pool.remove("a").is_some());
        assert!(!pool.contains("a"));
        assert!(pool.get("a").is_none());
    }

    #[test]
    fn grow_capacity_stops_thrashing() {
        let mut pool = BufferPool::new(4 * 1024);
        pool.put("a", m_kb(4));
        pool.put("b", m_kb(4));
        let evictions_before = pool.stats().evictions;
        assert!(evictions_before > 0);
        pool.set_capacity_bytes(64 * 1024);
        let _ = pool.get("a");
        let _ = pool.get("b");
        pool.put("c", m_kb(4));
        // No further evictions after the resize.
        assert_eq!(pool.stats().evictions, evictions_before);
    }
}

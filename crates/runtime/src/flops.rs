//! Operation-specific floating-point-operation counts.
//!
//! Sparse-aware where the kernels are: matrix multiplies count `2·nnz·n`
//! for the left operand's non-zeros, elementwise zero-preserving ops count
//! non-zeros, densifying ops count cells. Unknown characteristics fall
//! back to a large default so that unknown-size plans never look cheap.

use crate::instructions::OpCode;
use reml_matrix::{AggOp, MatrixCharacteristics};

/// FLOPs charged when an operand's size is unknown — large enough that
/// unknown plans are never preferred, small enough not to overflow.
pub const UNKNOWN_FLOPS: f64 = 1e13;

fn cells(mc: &MatrixCharacteristics) -> Option<f64> {
    mc.cells().map(|c| c as f64)
}

fn nnz_or_cells(mc: &MatrixCharacteristics) -> Option<f64> {
    mc.nnz.map(|n| n as f64).or_else(|| cells(mc))
}

/// Predicted FLOPs as an `Option`: `None` when the analytic count fell
/// back to [`UNKNOWN_FLOPS`] because sizes were unknown at compile time.
/// Calibration fits must not regress against the sentinel value.
pub fn predicted_flops(
    opcode: &OpCode,
    operands: &[MatrixCharacteristics],
    output: &MatrixCharacteristics,
) -> Option<f64> {
    let f = instruction_flops(opcode, operands, output);
    (f < UNKNOWN_FLOPS).then_some(f)
}

/// FLOP count of one operator application given operand and output
/// characteristics.
pub fn instruction_flops(
    opcode: &OpCode,
    operands: &[MatrixCharacteristics],
    output: &MatrixCharacteristics,
) -> f64 {
    let unknown = UNKNOWN_FLOPS;
    match opcode {
        // Pure data movement: no FLOPs (IO is charged separately).
        OpCode::PersistentRead { .. }
        | OpCode::PersistentWrite { .. }
        | OpCode::Assign
        | OpCode::Print
        | OpCode::Concat
        | OpCode::RmVar
        | OpCode::NRow
        | OpCode::NCol
        | OpCode::CastScalar
        | OpCode::CastMatrix => 0.0,
        // Scalar arithmetic: one op.
        OpCode::BinarySS(_) | OpCode::UnaryS(_) => 1.0,
        OpCode::MatMult => {
            // 2 * nnz(A) * ncol(B).
            let (Some(a), Some(b)) = (operands.first(), operands.get(1)) else {
                return unknown;
            };
            match (nnz_or_cells(a), b.cols) {
                (Some(nnz_a), Some(n)) => 2.0 * nnz_a * n as f64,
                _ => unknown,
            }
        }
        OpCode::MatMultTransLeft => {
            let (Some(a), Some(b)) = (operands.first(), operands.get(1)) else {
                return unknown;
            };
            match (nnz_or_cells(a), b.cols) {
                (Some(nnz_a), Some(n)) => 2.0 * nnz_a * n as f64,
                _ => unknown,
            }
        }
        OpCode::Tsmm => {
            // Symmetric product: nnz(X) * ncol(X) (half of 2·nnz·n).
            let Some(x) = operands.first() else {
                return unknown;
            };
            match (nnz_or_cells(x), x.cols) {
                (Some(nnz), Some(n)) => nnz * n as f64,
                _ => unknown,
            }
        }
        OpCode::MmChain => {
            // Two passes over X: 4 * nnz(X).
            let Some(x) = operands.first() else {
                return unknown;
            };
            nnz_or_cells(x).map(|n| 4.0 * n).unwrap_or(unknown)
        }
        OpCode::Solve => {
            // LU factorization (2/3)n^3 + substitution 2 n^2 m.
            let Some(a) = operands.first() else {
                return unknown;
            };
            match (a.rows, output.cols) {
                (Some(n), Some(m)) => {
                    let n = n as f64;
                    (2.0 / 3.0) * n * n * n + 2.0 * n * n * m as f64
                }
                _ => unknown,
            }
        }
        OpCode::Transpose
        | OpCode::Diag
        | OpCode::RightIndex
        | OpCode::LeftIndex
        | OpCode::Append
        | OpCode::AppendR => {
            // Movement-dominated: one op per output cell (or nnz).
            nnz_or_cells(output).unwrap_or(unknown)
        }
        OpCode::BinaryMM(op) => {
            let touched = if op.is_zero_preserving() {
                nnz_or_cells(output)
            } else {
                cells(output)
            };
            touched.unwrap_or(unknown)
        }
        OpCode::BinaryMS(_) | OpCode::BinarySM(_) | OpCode::UnaryM(_) => nnz_or_cells(output)
            .or_else(|| operands.first().and_then(nnz_or_cells))
            .unwrap_or(unknown),
        OpCode::Agg(a) => {
            let Some(input) = operands.first() else {
                return unknown;
            };
            match a {
                AggOp::Trace => input.rows.map(|r| r as f64).unwrap_or(unknown),
                _ => nnz_or_cells(input).unwrap_or(unknown),
            }
        }
        OpCode::TableSeq => operands
            .first()
            .and_then(|m| m.rows)
            .map(|r| r as f64)
            .unwrap_or(unknown),
        OpCode::DataGenConst | OpCode::DataGenSeq | OpCode::DataGenRand => {
            nnz_or_cells(output).unwrap_or(unknown)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(r: u64, c: u64) -> MatrixCharacteristics {
        MatrixCharacteristics::dense(r, c)
    }

    #[test]
    fn matmult_flops_dense() {
        // (1000 x 100) %*% (100 x 1): 2 * 1e5 * 1.
        let f = instruction_flops(
            &OpCode::MatMult,
            &[dense(1000, 100), dense(100, 1)],
            &dense(1000, 1),
        );
        assert_eq!(f, 200_000.0);
    }

    #[test]
    fn matmult_flops_sparse_aware() {
        let sparse = MatrixCharacteristics::known(1000, 100, 500);
        let f = instruction_flops(
            &OpCode::MatMult,
            &[sparse, dense(100, 10)],
            &dense(1000, 10),
        );
        assert_eq!(f, 2.0 * 500.0 * 10.0);
    }

    #[test]
    fn tsmm_half_of_full_product() {
        let x = dense(1000, 100);
        let full = instruction_flops(&OpCode::MatMult, &[x.transpose(), x], &dense(100, 100));
        let tsmm = instruction_flops(&OpCode::Tsmm, &[x], &dense(100, 100));
        assert_eq!(tsmm * 2.0, full);
    }

    #[test]
    fn solve_cubic() {
        let f = instruction_flops(
            &OpCode::Solve,
            &[dense(100, 100), dense(100, 1)],
            &dense(100, 1),
        );
        assert!((f - ((2.0 / 3.0) * 1e6 + 2.0 * 1e4)).abs() < 1.0);
    }

    #[test]
    fn unknown_sizes_are_expensive() {
        let f = instruction_flops(
            &OpCode::MatMult,
            &[MatrixCharacteristics::unknown(), dense(10, 10)],
            &MatrixCharacteristics::unknown(),
        );
        assert_eq!(f, UNKNOWN_FLOPS);
    }

    #[test]
    fn elementwise_zero_preserving_counts_nnz() {
        let sp = MatrixCharacteristics::known(1000, 1000, 100);
        let f = instruction_flops(
            &OpCode::BinaryMM(reml_matrix::BinaryOp::Mul),
            &[sp, sp],
            &sp,
        );
        assert_eq!(f, 100.0);
    }

    #[test]
    fn data_movement_is_free_flopwise() {
        assert_eq!(
            instruction_flops(
                &OpCode::PersistentRead { path: "x".into() },
                &[],
                &dense(1000, 1000)
            ),
            0.0
        );
        assert_eq!(instruction_flops(&OpCode::Assign, &[], &dense(1, 1)), 0.0);
    }

    #[test]
    fn scalar_ops_cost_one() {
        assert_eq!(
            instruction_flops(
                &OpCode::BinarySS(reml_matrix::BinaryOp::Add),
                &[
                    MatrixCharacteristics::scalar(),
                    MatrixCharacteristics::scalar()
                ],
                &MatrixCharacteristics::scalar()
            ),
            1.0
        );
    }
}

//! Scalar values and instruction operands.

use std::fmt;

/// A scalar runtime value (DML scalars are doubles, booleans, or strings).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    /// Numeric scalar.
    Num(f64),
    /// Boolean scalar.
    Bool(bool),
    /// String scalar.
    Str(String),
}

impl ScalarValue {
    /// Numeric view (booleans coerce to 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::Num(v) => Some(*v),
            ScalarValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            ScalarValue::Str(_) => None,
        }
    }

    /// Boolean view (numbers: non-zero is true).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ScalarValue::Bool(b) => Some(*b),
            ScalarValue::Num(v) => Some(*v != 0.0),
            ScalarValue::Str(_) => None,
        }
    }

    /// String rendering (used by `print` and string concatenation).
    pub fn render(&self) -> String {
        match self {
            ScalarValue::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{}", *v as i64)
                } else {
                    format!("{v}")
                }
            }
            ScalarValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            ScalarValue::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// An instruction operand: a variable reference or an inline literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Reference to a live variable by name.
    Var(String),
    /// Inline scalar literal.
    Lit(ScalarValue),
}

impl Operand {
    /// Convenience constructor for a variable operand.
    pub fn var(name: impl Into<String>) -> Self {
        Operand::Var(name.into())
    }

    /// Convenience constructor for a numeric literal operand.
    pub fn num(v: f64) -> Self {
        Operand::Lit(ScalarValue::Num(v))
    }

    /// The variable name, if this is a variable operand.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Operand::Var(name) => Some(name),
            Operand::Lit(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercions() {
        assert_eq!(ScalarValue::Num(2.5).as_f64(), Some(2.5));
        assert_eq!(ScalarValue::Bool(true).as_f64(), Some(1.0));
        assert_eq!(ScalarValue::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn bool_coercions() {
        assert_eq!(ScalarValue::Num(0.0).as_bool(), Some(false));
        assert_eq!(ScalarValue::Num(-3.0).as_bool(), Some(true));
        assert_eq!(ScalarValue::Bool(false).as_bool(), Some(false));
        assert_eq!(ScalarValue::Str("t".into()).as_bool(), None);
    }

    #[test]
    fn rendering_matches_dml_print() {
        assert_eq!(ScalarValue::Num(3.0).render(), "3");
        assert_eq!(ScalarValue::Num(3.5).render(), "3.5");
        assert_eq!(ScalarValue::Bool(true).render(), "TRUE");
        assert_eq!(ScalarValue::Str("hi".into()).render(), "hi");
    }

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::var("x").as_var(), Some("x"));
        assert_eq!(Operand::num(1.0).as_var(), None);
    }
}

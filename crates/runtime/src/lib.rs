//! # reml-runtime — runtime programs, buffer pool, and the CP executor
//!
//! The compiler (reml-compiler) lowers DML into a *runtime program*: a tree
//! of program blocks mirroring the statement-block hierarchy, where each
//! generic block holds a list of executable instructions — in-memory CP
//! instructions and MR-job instructions (§2.1). This crate defines that
//! representation and provides:
//!
//! * [`bufferpool`] — SystemML-style buffer pool: live variables are pinned
//!   in memory up to the CP memory budget; overflow evicts to (simulated)
//!   local disk, and the eviction/restore accounting is what makes small
//!   CP heaps measurably slower than the analytic cost model predicts —
//!   the paper's named source of suboptimality.
//! * [`hdfs`] — an in-process stand-in for HDFS: named persistent datasets
//!   plus exported intermediates, with byte accounting.
//! * [`executor`] — semantically executes runtime programs on real
//!   matrices (CP instructions directly; MR jobs by running their map and
//!   reduce operators in-process). Wall-clock behaviour of distributed
//!   execution is modeled separately by `reml-sim`; this executor provides
//!   *correct values* so examples compute real regression models.
//!
//! Dynamic recompilation hooks: generic blocks carry `requires_recompile`;
//! the executor calls a [`executor::RecompileHook`] before running such a
//! block, enabling the §4 runtime adaptation loop.

#![forbid(unsafe_code)]

pub mod bufferpool;
pub mod executor;
pub mod flops;
pub mod hdfs;
pub mod instructions;
pub mod program;
pub mod value;
pub mod vm;

pub use bufferpool::{BufferPool, BufferPoolStats};
pub use executor::{ExecStats, Executor, MemObservation, MigrationReport, RecompileHook};
pub use hdfs::HdfsStore;
pub use instructions::{
    CpInstruction, Instruction, MrJobInstruction, MrLocation, MrOperator, OpCode,
};
pub use program::{Predicate, RtBlock, RuntimeProgram};
pub use value::{Operand, ScalarValue};
pub use vm::{lower_program, VmExecutor, VmLowerOptions, VmProgram};

//! In-process HDFS stand-in with byte accounting.
//!
//! Persistent inputs live here before a program starts; `write()` outputs
//! and exported intermediates (buffer-pool evictions to HDFS, migration
//! state) land here. Byte counters feed both verification and the
//! simulator's IO-time modeling.

use std::collections::BTreeMap;

use reml_matrix::Matrix;

/// Byte-level IO statistics of the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HdfsStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Read operations.
    pub reads: u64,
    /// Write operations.
    pub writes: u64,
}

/// A named in-process dataset store simulating HDFS.
#[derive(Debug, Clone, Default)]
pub struct HdfsStore {
    files: BTreeMap<String, Matrix>,
    stats: HdfsStats,
}

impl HdfsStore {
    /// Empty store.
    pub fn new() -> Self {
        HdfsStore::default()
    }

    /// Stage a dataset (no IO accounted — models pre-existing input).
    pub fn stage(&mut self, path: impl Into<String>, data: Matrix) {
        self.files.insert(path.into(), data);
    }

    /// Read a dataset, accounting for the bytes moved.
    pub fn read(&mut self, path: &str) -> Option<Matrix> {
        let m = self.files.get(path)?.clone();
        self.stats.bytes_read += m.size_bytes();
        self.stats.reads += 1;
        Some(m)
    }

    /// Write a dataset, accounting for the bytes moved.
    pub fn write(&mut self, path: impl Into<String>, data: Matrix) {
        self.stats.bytes_written += data.size_bytes();
        self.stats.writes += 1;
        self.files.insert(path.into(), data);
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Peek at a dataset without IO accounting (verification helper).
    pub fn peek(&self, path: &str) -> Option<&Matrix> {
        self.files.get(path)
    }

    /// Remove a dataset.
    pub fn remove(&mut self, path: &str) -> Option<Matrix> {
        self.files.remove(path)
    }

    /// Current statistics.
    pub fn stats(&self) -> HdfsStats {
        self.stats
    }

    /// Paths currently stored (sorted).
    pub fn paths(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_read_write_accounting() {
        let mut h = HdfsStore::new();
        let m = Matrix::constant(10, 10, 1.0); // 800 bytes dense
        h.stage("X", m.clone());
        assert_eq!(h.stats().bytes_read, 0);

        let r = h.read("X").unwrap();
        assert_eq!(r, m);
        assert_eq!(h.stats().bytes_read, 800);
        assert_eq!(h.stats().reads, 1);

        h.write("out", m);
        assert_eq!(h.stats().bytes_written, 800);
        assert!(h.exists("out"));
    }

    #[test]
    fn missing_path() {
        let mut h = HdfsStore::new();
        assert!(h.read("nope").is_none());
        assert!(!h.exists("nope"));
    }

    #[test]
    fn remove_and_paths() {
        let mut h = HdfsStore::new();
        h.stage("b", Matrix::constant(1, 1, 1.0));
        h.stage("a", Matrix::constant(1, 1, 2.0));
        assert_eq!(h.paths(), vec!["a", "b"]);
        assert!(h.remove("a").is_some());
        assert_eq!(h.paths(), vec!["b"]);
    }
}

//! Data scenarios of §5.1: XS (10⁷ cells) through XL (10¹¹ cells), with
//! 1,000 or 100 columns and dense (1.0) or sparse (0.01) variants.

use reml_matrix::MatrixCharacteristics;

/// Scenario scale by total cell count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// 10⁷ cells (80 MB dense).
    XS,
    /// 10⁸ cells (800 MB dense).
    S,
    /// 10⁹ cells (8 GB dense).
    M,
    /// 10¹⁰ cells (80 GB dense).
    L,
    /// 10¹¹ cells (800 GB dense).
    XL,
}

impl Scenario {
    /// All scenarios in ascending order.
    pub const ALL: [Scenario; 5] = [
        Scenario::XS,
        Scenario::S,
        Scenario::M,
        Scenario::L,
        Scenario::XL,
    ];

    /// Total number of cells of the feature matrix.
    pub fn cells(self) -> u64 {
        match self {
            Scenario::XS => 10_u64.pow(7),
            Scenario::S => 10_u64.pow(8),
            Scenario::M => 10_u64.pow(9),
            Scenario::L => 10_u64.pow(10),
            Scenario::XL => 10_u64.pow(11),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::XS => "XS",
            Scenario::S => "S",
            Scenario::M => "M",
            Scenario::L => "L",
            Scenario::XL => "XL",
        }
    }
}

/// One data configuration: a scenario scale, a column count, and a
/// sparsity (the paper's dense1000 / sparse1000 / dense100 / sparse100).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataShape {
    /// Scale.
    pub scenario: Scenario,
    /// Number of feature columns (1,000 or 100 in the paper).
    pub cols: u64,
    /// Fraction of non-zero cells (1.0 or 0.01 in the paper).
    pub sparsity: f64,
}

impl DataShape {
    /// The four standard configurations of the evaluation at a scale.
    pub fn paper_variants(scenario: Scenario) -> [DataShape; 4] {
        [
            DataShape {
                scenario,
                cols: 1000,
                sparsity: 1.0,
            },
            DataShape {
                scenario,
                cols: 1000,
                sparsity: 0.01,
            },
            DataShape {
                scenario,
                cols: 100,
                sparsity: 1.0,
            },
            DataShape {
                scenario,
                cols: 100,
                sparsity: 0.01,
            },
        ]
    }

    /// Short label, e.g. `dense1000`.
    pub fn label(&self) -> String {
        let density = if self.sparsity >= 1.0 {
            "dense"
        } else {
            "sparse"
        };
        format!("{density}{}", self.cols)
    }

    /// Number of rows (`cells / cols`).
    pub fn rows(&self) -> u64 {
        self.scenario.cells() / self.cols
    }

    /// Characteristics of the feature matrix `X`.
    pub fn x_characteristics(&self) -> MatrixCharacteristics {
        let rows = self.rows();
        let nnz = ((self.scenario.cells() as f64) * self.sparsity).round() as u64;
        MatrixCharacteristics {
            rows: Some(rows),
            cols: Some(self.cols),
            nnz: Some(nnz),
        }
    }

    /// Characteristics of the label/response vector `y` (dense n×1).
    pub fn y_characteristics(&self) -> MatrixCharacteristics {
        MatrixCharacteristics::dense(self.rows(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_cells_scale_by_10x() {
        for w in Scenario::ALL.windows(2) {
            assert_eq!(w[1].cells(), w[0].cells() * 10);
        }
    }

    #[test]
    fn dense_m_is_8gb() {
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        };
        let bytes = shape.x_characteristics().estimated_size_bytes().unwrap();
        assert_eq!(bytes, 8 * 10_u64.pow(9));
        assert_eq!(shape.rows(), 1_000_000);
    }

    #[test]
    fn sparse_scenario_much_smaller() {
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 0.01,
        };
        let mc = shape.x_characteristics();
        assert_eq!(mc.nnz, Some(10_000_000));
        let bytes = mc.estimated_size_bytes().unwrap();
        assert!(bytes < 8 * 10_u64.pow(9) / 10);
    }

    #[test]
    fn labels() {
        let d = DataShape {
            scenario: Scenario::S,
            cols: 100,
            sparsity: 0.01,
        };
        assert_eq!(d.label(), "sparse100");
        assert_eq!(Scenario::S.name(), "S");
    }

    #[test]
    fn variants_cover_four_shapes() {
        let v = DataShape::paper_variants(Scenario::L);
        assert_eq!(v.len(), 4);
        let labels: Vec<String> = v.iter().map(DataShape::label).collect();
        assert!(labels.contains(&"dense1000".to_string()));
        assert!(labels.contains(&"sparse100".to_string()));
    }
}

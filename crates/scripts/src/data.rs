//! Real (small) dataset generation for executor-backed examples and
//! integration tests. The big scenarios (§5.1) exist only as metadata —
//! the simulator never materializes 800 GB — but examples run the actual
//! programs end-to-end on data generated here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reml_matrix::generate::{rand_dense, rand_sparse};
use reml_matrix::{DenseMatrix, Matrix};

/// A generated dataset: features, labels, and the ground-truth weights
/// used to synthesize the labels (when applicable).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, n×m.
    pub x: Matrix,
    /// Label/response vector, n×1.
    pub y: Matrix,
    /// Ground-truth weights (regression tasks), m×1.
    pub truth: Option<DenseMatrix>,
}

/// Which label-generation scheme to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelKind {
    /// Continuous response `y = X w + noise` (linear regression).
    Regression,
    /// Binary labels in {-1, +1} from a linear separator (L2SVM).
    BinaryPm1,
    /// Integer classes `1..=k` (multinomial logistic regression).
    Classes(usize),
    /// Non-negative counts (Poisson GLM).
    Counts,
}

/// Generate a dataset with `rows`×`cols` features at the given sparsity.
pub fn generate_dataset(
    rows: usize,
    cols: usize,
    sparsity: f64,
    labels: LabelKind,
    seed: u64,
) -> Dataset {
    let x = if sparsity >= 1.0 {
        Matrix::Dense(rand_dense(rows, cols, -1.0, 1.0, seed))
    } else {
        Matrix::from_sparse_auto(rand_sparse(rows, cols, sparsity, -1.0, 1.0, seed))
    };
    let truth = rand_dense(cols, 1, -1.0, 1.0, seed.wrapping_add(1));
    let signal = x
        .matmult(&Matrix::Dense(truth.clone()))
        .expect("shapes conform");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    let n = rows;
    let mut y = Vec::with_capacity(n);
    match labels {
        LabelKind::Regression => {
            for r in 0..n {
                y.push(signal.get(r, 0) + 0.01 * rng.gen_range(-1.0..1.0));
            }
        }
        LabelKind::BinaryPm1 => {
            for r in 0..n {
                y.push(if signal.get(r, 0) >= 0.0 { 1.0 } else { -1.0 });
            }
        }
        LabelKind::Classes(k) => {
            for r in 0..n {
                // Deterministic class from the signal, keeping all classes
                // populated.
                let s = signal.get(r, 0);
                let cls = ((s.abs() * 7.919).fract() * k as f64).floor() as usize % k;
                y.push((cls + 1) as f64);
            }
        }
        LabelKind::Counts => {
            for r in 0..n {
                let rate = signal.get(r, 0).exp().min(20.0);
                // Cheap Poisson-ish: rounded rate with jitter.
                let v = (rate + rng.gen_range(0.0..1.0)).floor().max(0.0);
                y.push(v);
            }
        }
    }
    let y = Matrix::Dense(DenseMatrix::from_vec(n, 1, y).expect("label shape"));
    Dataset {
        x,
        y,
        truth: matches!(labels, LabelKind::Regression).then_some(truth),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_labels_near_signal() {
        let d = generate_dataset(200, 10, 1.0, LabelKind::Regression, 42);
        let truth = d.truth.as_ref().unwrap();
        let signal = d.x.matmult(&Matrix::Dense(truth.clone())).unwrap();
        for r in 0..200 {
            assert!((signal.get(r, 0) - d.y.get(r, 0)).abs() <= 0.011);
        }
    }

    #[test]
    fn binary_labels_pm1() {
        let d = generate_dataset(100, 5, 1.0, LabelKind::BinaryPm1, 1);
        for r in 0..100 {
            let v = d.y.get(r, 0);
            assert!(v == 1.0 || v == -1.0);
        }
        assert!(d.truth.is_none());
    }

    #[test]
    fn class_labels_cover_all_classes() {
        let d = generate_dataset(500, 5, 1.0, LabelKind::Classes(4), 7);
        let mut seen = [false; 4];
        for r in 0..500 {
            let v = d.y.get(r, 0) as usize;
            assert!((1..=4).contains(&v));
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn counts_non_negative_integers() {
        let d = generate_dataset(200, 5, 1.0, LabelKind::Counts, 3);
        for r in 0..200 {
            let v = d.y.get(r, 0);
            assert!(v >= 0.0 && v.fract() == 0.0);
        }
    }

    #[test]
    fn sparse_features() {
        let d = generate_dataset(100, 50, 0.05, LabelKind::Regression, 9);
        assert!(d.x.is_sparse());
        let sp = d.x.nnz() as f64 / 5000.0;
        assert!(sp < 0.15);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate_dataset(50, 5, 1.0, LabelKind::Regression, 11);
        let b = generate_dataset(50, 5, 1.0, LabelKind::Regression, 11);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
    }
}

//! # reml-scripts — the evaluation workloads (§5.1, Table 1)
//!
//! The five ML programs of the paper's evaluation as DML sources, plus the
//! data scenarios (XS–XL × dense/sparse × 1000/100 columns) and generators
//! for real (small) datasets used by the executor-backed examples.
//!
//! The scripts are faithful reductions of the originals: L2SVM follows
//! Appendix A nearly verbatim; LinregDS/LinregCG implement the two linear
//! regression algorithms of Figure 1; MLogreg and GLM keep the structural
//! properties the experiments depend on — nested loops, the
//! `table()`-induced unknown intermediate sizes (§4), and the relative
//! program-size ordering GLM ≫ MLogreg > LinregCG > LinregDS ≈ L2SVM.

#![forbid(unsafe_code)]

pub mod data;
pub mod scenario;
pub mod sources;

pub use data::{generate_dataset, Dataset};
pub use scenario::{DataShape, Scenario};
pub use sources::{all_scripts, glm, l2svm, linreg_cg, linreg_ds, mlogreg, ScriptSpec};

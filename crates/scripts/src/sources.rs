//! DML sources of the five evaluation programs and their default
//! configurations.

use reml_cluster::ClusterConfig;
use reml_compiler::{CompileConfig, MrHeapAssignment};
use reml_runtime::ScalarValue;

use crate::scenario::DataShape;

/// One evaluation workload: a DML source plus its default `$` parameters.
#[derive(Debug, Clone)]
pub struct ScriptSpec {
    /// Program name as in Table 1.
    pub name: &'static str,
    /// DML source.
    pub source: String,
    /// Default script parameters (including the `$X`/`$Y`/`$model` paths).
    pub params: Vec<(&'static str, ScalarValue)>,
    /// Whether the program has unknown intermediate dimensions during
    /// initial compilation (Table 1's `?` column).
    pub has_unknowns: bool,
    /// Whether the program is iterative.
    pub iterative: bool,
}

impl ScriptSpec {
    /// Source line count (Table 1's `#Lines`).
    pub fn num_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }

    /// A compile configuration for this script over a data shape.
    pub fn compile_config(
        &self,
        shape: DataShape,
        cluster: ClusterConfig,
        cp_heap_mb: u64,
        mr_heap: MrHeapAssignment,
    ) -> CompileConfig {
        reml_trace::count("scripts.configs_built", 1);
        let mut cfg = CompileConfig {
            cluster,
            cp_heap_mb,
            mr_heap,
            params: Default::default(),
            inputs: Default::default(),
            table_cols_hint: None,
            enable_rewrites: true,
        };
        for (name, value) in &self.params {
            cfg.params.insert((*name).to_string(), value.clone());
        }
        cfg.inputs
            .insert("X".to_string(), shape.x_characteristics());
        cfg.inputs
            .insert("y".to_string(), shape.y_characteristics());
        cfg
    }
}

fn common_params() -> Vec<(&'static str, ScalarValue)> {
    vec![
        ("X", ScalarValue::Str("X".into())),
        ("Y", ScalarValue::Str("y".into())),
        ("model", ScalarValue::Str("model".into())),
        ("icpt", ScalarValue::Num(0.0)),
        ("reg", ScalarValue::Num(0.01)),
        ("tol", ScalarValue::Num(1e-9)),
        ("maxiter", ScalarValue::Num(5.0)),
    ]
}

/// Linear regression, closed-form direct solve (Figure 1 left): solves
/// the normal equations `(t(X) X + lambda I) beta = t(X) y`. Non-iterative
/// and compute-intensive — it prefers massively parallel MR plans.
pub fn linreg_ds() -> ScriptSpec {
    let source = r#"
        # Linear regression, direct solve over the normal equations.
        X = read($X)
        y = read($Y)
        intercept = $icpt
        lambda = $reg
        n = nrow(X)
        m = ncol(X)
        if (intercept == 1) {
            ones = matrix(1, rows=n, cols=1)
            X = append(X, ones)
            m = m + 1
        }
        # Normal equations.
        A = t(X) %*% X
        b = t(X) %*% y
        regI = diag(matrix(lambda, rows=m, cols=1))
        A = A + regI
        beta = solve(A, b)
        # Model statistics (residual bias, R^2, dispersion).
        yhat = X %*% beta
        resid = y - yhat
        ss_res = sum(resid * resid)
        sum_y = sum(y)
        avg_y = sum_y / n
        avg_res = sum(resid) / n
        ss_tot = sum(y * y) - n * avg_y * avg_y
        r2 = 1 - ss_res / (ss_tot + 0.000000001)
        dispersion = ss_res / (n - m)
        adj_r2 = 1 - (ss_res / (n - m)) / ((ss_tot + 0.000000001) / (n - 1))
        if (avg_res > 0.001) {
            print("WARNING: residual bias " + avg_res)
        }
        print("R2=" + r2)
        print("ADJUSTED_R2=" + adj_r2)
        print("DISPERSION=" + dispersion)
        print("AVG_RES=" + avg_res)
        write(beta, $model)
    "#
    .to_string();
    ScriptSpec {
        name: "LinregDS",
        source,
        params: common_params(),
        has_unknowns: false,
        iterative: false,
    }
}

/// Linear regression, conjugate gradient (Figure 1 right): iterative and
/// IO-bound — it prefers reading X once into a large CP memory.
pub fn linreg_cg() -> ScriptSpec {
    let source = r#"
        # Linear regression via conjugate gradient on the normal equations.
        X = read($X)
        y = read($Y)
        intercept = $icpt
        lambda = $reg
        eps = $tol
        maxi = $maxiter
        n = nrow(X)
        m = ncol(X)
        if (intercept == 1) {
            ones = matrix(1, rows=n, cols=1)
            X = append(X, ones)
            m = m + 1
        }
        beta = matrix(0, rows=m, cols=1)
        g = -(t(X) %*% y)
        r = g
        p = -r
        norm_r2 = sum(r * r)
        norm_r2_init = norm_r2
        norm_r2_target = eps * eps * norm_r2_init
        i = 0
        while (i < maxi & norm_r2 > norm_r2_target) {
            q = t(X) %*% (X %*% p)
            q = q + lambda * p
            alpha = norm_r2 / sum(p * q)
            beta = beta + alpha * p
            r = r + alpha * q
            old_norm_r2 = norm_r2
            norm_r2 = sum(r * r)
            p = -r + (norm_r2 / old_norm_r2) * p
            i = i + 1
            print("CG iter " + i + ": norm_r2=" + norm_r2)
        }
        # Model statistics.
        yhat = X %*% beta
        resid = y - yhat
        ss_res = sum(resid * resid)
        avg_y = sum(y) / n
        ss_tot = sum(y * y) - n * avg_y * avg_y
        r2 = 1 - ss_res / (ss_tot + 0.000000001)
        print("ITERS=" + i)
        print("R2=" + r2)
        write(beta, $model)
    "#
    .to_string();
    ScriptSpec {
        name: "LinregCG",
        source,
        params: common_params(),
        has_unknowns: false,
        iterative: true,
    }
}

/// L2-regularized support vector machine (Appendix A, nearly verbatim):
/// nested loops — outer nonlinear CG, inner line search.
pub fn l2svm() -> ScriptSpec {
    let source = r#"
        # L2-regularized linear SVM, primal, nonlinear CG with line search.
        X = read($X)
        Y = read($Y)
        intercept = $icpt
        epsilon = $tol
        lambda = $reg
        maxiterations = $maxiter
        num_samples = nrow(X)
        dimensions = ncol(X)
        num_rows_in_w = dimensions
        if (intercept == 1) {
            ones = matrix(1, rows=num_samples, cols=1)
            X = append(X, ones)
            num_rows_in_w = num_rows_in_w + 1
        }
        w = matrix(0, rows=num_rows_in_w, cols=1)
        g_old = t(X) %*% Y
        s = g_old
        iter = 0
        Xw = matrix(0, rows=nrow(X), cols=1)
        continue = TRUE
        while (continue & iter < maxiterations) {
            # minimizing primal objective along direction s
            step_sz = 0
            Xd = X %*% s
            wd = lambda * sum(w * s)
            dd = lambda * sum(s * s)
            continue1 = TRUE
            while (continue1) {
                tmp_Xw = Xw + step_sz * Xd
                out = 1 - Y * tmp_Xw
                sv = ppred(out, 0, ">")
                out = out * sv
                g = wd + step_sz * dd - sum(out * Y * Xd)
                h = dd + sum(Xd * sv * Xd)
                step_sz = step_sz - g / h
                if (g * g / h < 0.0000000001) {
                    continue1 = FALSE
                }
            }
            w = w + step_sz * s
            Xw = Xw + step_sz * Xd
            out = 1 - Y * Xw
            sv = ppred(out, 0, ">")
            out = sv * out
            obj = 0.5 * sum(out * out) + lambda / 2 * sum(w * w)
            print("ITER " + iter + ": OBJ=" + obj)
            g_new = t(X) %*% (out * Y) - lambda * w
            tmp = sum(s * g_old)
            if (step_sz * tmp < epsilon * obj) {
                continue = FALSE
            }
            # nonlinear CG step
            be = sum(g_new * g_new) / sum(g_old * g_old)
            s = be * s + g_new
            g_old = g_new
            iter = iter + 1
        }
        write(w, $model)
    "#
    .to_string();
    ScriptSpec {
        name: "L2SVM",
        source,
        params: common_params(),
        has_unknowns: false,
        iterative: true,
    }
}

/// Multinomial logistic regression: the `table()` contingency pattern of
/// §4 makes the class count — and hence every core intermediate — unknown
/// at initial compilation.
pub fn mlogreg() -> ScriptSpec {
    let source = r#"
        # Multinomial logistic regression (trust-region-flavoured descent).
        X = read($X)
        y = read($Y)
        lambda = $reg
        eps = $tol
        maxi = $maxiter
        intercept = $icpt
        n = nrow(X)
        m = ncol(X)
        if (intercept == 1) {
            ones = matrix(1, rows=n, cols=1)
            X = append(X, ones)
            m = m + 1
        }
        # Trust-region initialization on the response vector (cheap known
        # operation; all heavy operations live behind the unknowns, which
        # is what keeps the initial resource optimization at the minimum
        # CP size — the paper's MLogreg behaviour).
        delta_init = sqrt(sum(y * y) / n + 1)
        # Indicator matrix: #classes is data dependent (unknown cols).
        Y = table(seq(1, n), y)
        k = ncol(Y)
        B = matrix(0, rows=m, cols=k)
        iter = 0
        converge = FALSE
        while (!converge & iter < maxi) {
            P = exp(X %*% B)
            rowsum_P = rowSums(P) + 1
            P = P / rowsum_P
            grad = t(X) %*% (P - Y) + lambda * B
            # inner step-size search
            step = 1
            inner = 0
            accept = FALSE
            while (!accept & inner < 3) {
                Bnew = B - step * grad
                gnorm = sum(grad * grad)
                if (gnorm * step < delta_init) {
                    accept = TRUE
                }
                step = step / 2
                inner = inner + 1
            }
            B = Bnew
            norm_grad = sqrt(sum(grad * grad))
            print("MLOGREG iter " + iter + ": norm_grad=" + norm_grad)
            if (norm_grad < eps) {
                converge = TRUE
            }
            if (iter > maxi * 2) {
                converge = TRUE
            }
            iter = iter + 1
        }
        # Training diagnostics.
        Pf = exp(X %*% B)
        rsf = rowSums(Pf) + 1
        Pf = Pf / rsf
        maxp = sum(rowMaxs(Pf)) / n
        if (maxp < 0.5) {
            print("WARNING: weak model confidence " + maxp)
        }
        print("AVG_MAX_PROB=" + maxp)
        write(B, $model)
    "#
    .to_string();
    ScriptSpec {
        name: "MLogreg",
        source,
        params: common_params(),
        has_unknowns: true,
        iterative: true,
    }
}

/// Generalized linear model (Poisson / log link), the largest program:
/// user-defined link functions (inlined), nested outer/inner loops, a
/// data-dependent diagnostic `table()`, and extensive statistics blocks.
pub fn glm() -> ScriptSpec {
    let source = r#"
        # Generalized linear model: exponential-family regression with
        # IRLS-style outer iterations and an inner step-halving loop.
        # The family/link dispatch chains mirror the breadth of the
        # original 1,149-line script.
        glm_link = function(eta) return (mu) {
            mu = exp(eta)
        }
        glm_variance = function(mu) return (var) {
            var = mu + 0.0000000001
        }
        glm_deviance = function(y, mu) return (dev) {
            ratio = (y + 0.0000000001) / (mu + 0.0000000001)
            dev = 2 * sum(y * log(ratio) - (y - mu))
        }
        X = read($X)
        y = read($Y)
        intercept = $icpt
        lambda = $reg
        eps = $tol
        mi_outer = $maxiter
        n = nrow(X)
        m = ncol(X)
        # --- distribution / link dispatch (constant-folded per config) ---
        dist_type = 1
        link_type = 1
        var_power = 0
        link_power = 1
        if (dist_type == 1) {
            # Poisson
            var_power = 1
            if (link_type == 1) {
                link_power = 0
            } else if (link_type == 2) {
                link_power = 1
            } else {
                link_power = 0.5
            }
        } else if (dist_type == 2) {
            # Gaussian
            var_power = 0
            if (link_type == 1) {
                link_power = 1
            } else {
                link_power = 0
            }
        } else if (dist_type == 3) {
            # Gamma
            var_power = 2
            if (link_type == 1) {
                link_power = -1
            } else {
                link_power = 0
            }
        } else if (dist_type == 4) {
            # Inverse Gaussian
            var_power = 3
            link_power = -2
        } else {
            # Binomial (canonical logit handled separately)
            var_power = 1
            link_power = 1
        }
        # Sanity guards on the dispatch result.
        if (var_power < 0) {
            print("ERROR: negative variance power")
        }
        if (link_power > 2) {
            print("ERROR: unsupported link power")
        }
        # --- optional intercept / scaling ---
        if (intercept == 1) {
            ones = matrix(1, rows=n, cols=1)
            X = append(X, ones)
            m = m + 1
        }
        # Known heavy operations before the unknowns appear.
        col_scale = colSums(X ^ 2)
        avg_y = sum(y) / n
        if (avg_y < 0) {
            print("WARNING: negative mean response for Poisson family")
        }
        # Response binning for saturated-model diagnostics: the number of
        # distinct bins is data dependent -> unknown dimensions.
        ybin = round(abs(y)) + 1
        D = table(seq(1, n), ybin)
        num_bins = ncol(D)
        bin_counts = colSums(D)
        # --- IRLS initialization ---
        beta = matrix(0, rows=m, cols=1)
        eta = X %*% beta
        mu = glm_link(eta)
        dev_old = glm_deviance(y, mu)
        dev_new = dev_old
        outer = 0
        term = FALSE
        while (!term & outer < mi_outer) {
            var_mu = glm_variance(mu)
            wt = var_mu
            z = eta + (y - mu) / var_mu
            # Weighted normal equations.
            Xw = X * wt
            A = t(Xw) %*% X
            regI = diag(matrix(lambda, rows=m, cols=1))
            A = A + regI
            b = t(Xw) %*% z
            beta_new = solve(A, b)
            # Inner step-halving loop.
            step = 1
            inner = 0
            ok = FALSE
            while (!ok & inner < 3) {
                beta_try = beta + step * (beta_new - beta)
                eta_try = X %*% beta_try
                mu_try = glm_link(eta_try)
                dev_try = glm_deviance(y, mu_try)
                if (dev_try < dev_old + 0.0000000001) {
                    ok = TRUE
                    beta = beta_try
                    eta = eta_try
                    mu = mu_try
                    dev_new = dev_try
                }
                step = step / 2
                inner = inner + 1
            }
            if (!ok) {
                term = TRUE
            }
            rel = abs(dev_new - dev_old) / (abs(dev_old) + 0.0000000001)
            if (rel < eps) {
                term = TRUE
            }
            dev_old = dev_new
            outer = outer + 1
            print("GLM outer " + outer + ": deviance=" + dev_new)
        }
        # --- final statistics ---
        var_final = glm_variance(mu)
        sd_final = sqrt(var_final)
        pearson_res = (y - mu) / sd_final
        pearson_x2 = sum(pearson_res * pearson_res)
        df = n - m
        dispersion = pearson_x2 / df
        aic = dev_new + 2 * m
        if (dispersion > 2) {
            print("WARNING: overdispersion detected")
        } else if (dispersion < 0.5) {
            print("WARNING: underdispersion detected")
        }
        # Per-coefficient diagnostics loop.
        zsum = 0
        for (j in 1:5) {
            bj = beta[j, 1]
            zj = castAsScalar(bj) * sqrt(df)
            if (zj < 0) {
                zsum = zsum - zj
            } else {
                zsum = zsum + zj
            }
        }
        print("DEVIANCE=" + dev_new)
        print("PEARSON_X2=" + pearson_x2)
        print("DISPERSION=" + dispersion)
        print("AIC=" + aic)
        print("NUM_BINS=" + num_bins)
        print("BIN_MASS=" + sum(bin_counts))
        print("ZSUM=" + zsum)
        write(beta, $model)
    "#
    .to_string();
    ScriptSpec {
        name: "GLM",
        source,
        params: common_params(),
        has_unknowns: true,
        iterative: true,
    }
}

/// All five programs in Table 1 order.
pub fn all_scripts() -> Vec<ScriptSpec> {
    vec![linreg_ds(), linreg_cg(), l2svm(), mlogreg(), glm()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DataShape, Scenario};
    use reml_compiler::pipeline::analyze_program;

    fn shape() -> DataShape {
        DataShape {
            scenario: Scenario::XS,
            cols: 100,
            sparsity: 1.0,
        }
    }

    #[test]
    fn all_scripts_analyze() {
        for script in all_scripts() {
            let analyzed =
                analyze_program(&script.source).unwrap_or_else(|e| panic!("{}: {e}", script.name));
            assert!(analyzed.num_blocks() > 0, "{}", script.name);
        }
    }

    #[test]
    fn all_scripts_compile_small_and_large_memory() {
        let cluster = ClusterConfig::paper_cluster();
        for script in all_scripts() {
            for (cp, mr) in [(512, 512), (48 * 1024, 4 * 1024)] {
                let cfg = script.compile_config(
                    shape(),
                    cluster.clone(),
                    cp,
                    MrHeapAssignment::uniform(mr),
                );
                let compiled = reml_compiler::pipeline::compile_source(&script.source, &cfg)
                    .unwrap_or_else(|e| panic!("{} cp={cp}: {e}", script.name));
                assert!(compiled.num_blocks() > 0);
            }
        }
    }

    #[test]
    fn unknown_flags_match_table1() {
        for script in all_scripts() {
            let cfg = script.compile_config(
                shape(),
                ClusterConfig::paper_cluster(),
                4096,
                MrHeapAssignment::uniform(1024),
            );
            let compiled = reml_compiler::pipeline::compile_source(&script.source, &cfg).unwrap();
            let any_recompile = compiled.summaries.iter().any(|s| s.requires_recompile);
            assert_eq!(
                any_recompile, script.has_unknowns,
                "{}: recompile flags vs Table 1",
                script.name
            );
        }
    }

    #[test]
    fn program_size_ordering_matches_table1() {
        let sizes: Vec<(String, usize)> = all_scripts()
            .iter()
            .map(|s| {
                let analyzed = analyze_program(&s.source).unwrap();
                (s.name.to_string(), analyzed.num_blocks())
            })
            .collect();
        let get = |n: &str| sizes.iter().find(|(name, _)| name == n).unwrap().1;
        // GLM is by far the largest; MLogreg larger than LinregCG.
        assert!(get("GLM") > 2 * get("MLogreg"), "{sizes:?}");
        assert!(get("MLogreg") >= get("LinregCG"), "{sizes:?}");
        assert!(get("LinregCG") >= get("LinregDS"), "{sizes:?}");
    }

    #[test]
    fn iterative_scripts_have_while_blocks() {
        for script in all_scripts() {
            let analyzed = analyze_program(&script.source).unwrap();
            let has_while =
                analyzed.num_blocks() > analyzed.blocks.iter().filter(|b| b.is_generic()).count();
            assert!(
                has_while || !script.iterative,
                "{} iterative flag",
                script.name
            );
        }
    }

    #[test]
    fn mlogreg_large_memory_removes_recompile_need_with_known_k() {
        // With actual class count known (post-table runtime info) the
        // compiler can produce known-size plans — checked indirectly via
        // env_from_runtime_state in the sim; here we only check the
        // initial compile flags the core loop.
        let script = mlogreg();
        let cfg = script.compile_config(
            shape(),
            ClusterConfig::paper_cluster(),
            48 * 1024,
            MrHeapAssignment::uniform(4 * 1024),
        );
        let compiled = reml_compiler::pipeline::compile_source(&script.source, &cfg).unwrap();
        assert!(compiled.summaries.iter().any(|s| s.requires_recompile));
    }
}

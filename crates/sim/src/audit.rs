//! Differential memory-soundness audit: execute a script for real
//! through the bytecode VM with memory observation enabled and compare
//! the compiler's `memest`-style size predictions against the actual
//! operator footprints, per opcode.
//!
//! Execution runs on the register VM with peephole fusion enabled, so
//! fused elementwise chains appear under their stable composite mnemonic
//! (e.g. `fused(map*,map+)`) with the chain's summed prediction and
//! bound — never as an unknown opcode row. A fused chain's actual
//! footprint counts its external operands and final output only (the
//! intermediates it elides never enter the buffer pool), so per-step
//! soundness of the summed bound implies soundness of the fused row.
//!
//! The resource optimizer trusts the compile-time estimates to decide
//! CP-vs-MR placement (the PL010 lint rule checks the *static* side of
//! that contract); this audit checks the *dynamic* side — whether the
//! predictions ever under-estimate what execution really allocates. An
//! operator whose actual footprint exceeds its prediction could be
//! placed in CP with a budget it will blow at runtime.
//!
//! The plan is additionally annotated with the `reml-sizebound` interval
//! bounds before execution, so every observation also carries the
//! statically-*proven* upper bound. Unlike the point predictions (best
//! effort, can legitimately be `None`), a finite bound is a theorem:
//! `actual > bound` anywhere is a soundness bug in the analysis, and the
//! audit reports it separately (`bound_unsound*`) so CI can gate on it.

use reml_cluster::ClusterConfig;
use reml_compiler::pipeline::{analyze_program, compile};
use reml_compiler::CompileConfig;
use reml_runtime::executor::NoRecompile;
use reml_runtime::{HdfsStore, MemObservation, ScalarValue, VmExecutor, VmLowerOptions};
use reml_scripts::data::{generate_dataset, LabelKind};
use reml_scripts::ScriptSpec;

/// Aggregated prediction error for one opcode.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OpcodeAudit {
    /// Opcode mnemonic.
    pub opcode: String,
    /// Instructions observed.
    pub samples: u64,
    /// Observations where all compile-time sizes were known.
    pub known_samples: u64,
    /// Mean signed relative error `(predicted - actual) / actual` over
    /// known samples with a non-zero actual footprint (positive =
    /// over-estimate, the safe direction).
    pub mean_rel_error: f64,
    /// Worst `actual / predicted` over known samples (> 1 means the
    /// estimate was unsound).
    pub max_actual_over_predicted: f64,
    /// Known samples where actual exceeded predicted.
    pub unsound: u64,
    /// Observations carrying a finite interval bound.
    pub bounded_samples: u64,
    /// Worst `actual / bound` over bounded samples (> 1 means the
    /// interval analysis is broken).
    pub max_actual_over_bound: f64,
    /// Bounded samples where actual exceeded the proven bound (must be 0).
    pub bound_unsound: u64,
}

/// Result of one script's memory-soundness audit.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MemoryAuditReport {
    /// Script name.
    pub script: String,
    /// Dataset rows.
    pub rows: u64,
    /// Dataset cols.
    pub cols: u64,
    /// CP instructions executed.
    pub cp_instructions: u64,
    /// Observations recorded.
    pub observations: u64,
    /// Known-size observations where actual exceeded predicted.
    pub unsound_total: u64,
    /// Observations carrying a finite interval bound.
    pub bounded_observations: u64,
    /// Observations where actual exceeded the proven interval bound
    /// (any non-zero value is a soundness bug; CI gates on this).
    pub bound_unsound_total: u64,
    /// Per-opcode aggregation, sorted by opcode.
    pub per_opcode: Vec<OpcodeAudit>,
}

/// Raw per-instruction observations from one observed script execution —
/// the audit's input, also consumed directly by the `reml-calibrate`
/// crate to fit cost-model calibration profiles (each row now carries
/// measured wall time and predicted FLOPs alongside the byte columns).
#[derive(Debug, Clone)]
pub struct ScriptObservations {
    /// Script name.
    pub script: String,
    /// Dataset rows.
    pub rows: u64,
    /// Dataset cols.
    pub cols: u64,
    /// CP instructions executed.
    pub cp_instructions: u64,
    /// One row per observed instruction, in execution order.
    pub observations: Vec<MemObservation>,
}

/// Run `script` on a generated dataset with memory observation enabled
/// and aggregate the per-opcode estimate error. `param_overrides` patches
/// script `$` parameters (e.g. a larger `maxiter` for convergence).
pub fn memory_soundness_audit(
    script: &ScriptSpec,
    rows: u64,
    cols: u64,
    label: LabelKind,
    param_overrides: &[(&str, f64)],
) -> MemoryAuditReport {
    let collected = collect_observations(script, rows, cols, label, param_overrides);
    aggregate(
        script.name,
        rows,
        cols,
        collected.cp_instructions,
        &collected.observations,
    )
}

/// Execute `script` through the bytecode VM (fusion enabled, sizebound
/// annotations stamped) with observation recording on, returning the raw
/// per-instruction rows instead of the aggregated audit.
pub fn collect_observations(
    script: &ScriptSpec,
    rows: u64,
    cols: u64,
    label: LabelKind,
    param_overrides: &[(&str, f64)],
) -> ScriptObservations {
    let data = generate_dataset(rows as usize, cols as usize, 1.0, label, 7);
    let mut cfg = CompileConfig::new(ClusterConfig::paper_cluster(), 4 * 1024, 1024);
    for (name, value) in &script.params {
        cfg.params.insert((*name).to_string(), value.clone());
    }
    for (name, value) in param_overrides {
        cfg.params
            .insert((*name).to_string(), ScalarValue::Num(*value));
    }
    cfg.inputs.insert("X".to_string(), data.x.characteristics());
    cfg.inputs.insert("y".to_string(), data.y.characteristics());
    let analyzed =
        analyze_program(&script.source).unwrap_or_else(|e| panic!("{} analyze: {e}", script.name));
    let mut compiled =
        compile(&analyzed, &cfg).unwrap_or_else(|e| panic!("{} compile: {e}", script.name));
    // Stamp every CP instruction with its sound interval byte bound.
    reml_sizebound::annotate(&analyzed, &mut compiled, &cfg)
        .unwrap_or_else(|e| panic!("{} sizebound: {e}", script.name));

    let program = compiled.runtime.lower_vm(VmLowerOptions::default());

    let mut hdfs = HdfsStore::new();
    hdfs.stage("X", data.x.clone());
    hdfs.stage("y", data.y.clone());
    let mut exec = VmExecutor::new(4 << 30, hdfs);
    exec.enable_memory_observation();
    exec.run(&program, &mut NoRecompile)
        .unwrap_or_else(|e| panic!("{} execute: {e}", script.name));

    let observations = exec.take_memory_observations();
    ScriptObservations {
        script: script.name.to_string(),
        rows,
        cols,
        cp_instructions: exec.stats.cp_instructions,
        observations,
    }
}

fn aggregate(
    script: &str,
    rows: u64,
    cols: u64,
    cp_instructions: u64,
    observations: &[MemObservation],
) -> MemoryAuditReport {
    use std::collections::BTreeMap;
    struct Acc {
        samples: u64,
        known: u64,
        rel_err_sum: f64,
        rel_err_n: u64,
        max_ratio: f64,
        unsound: u64,
        bounded: u64,
        max_bound_ratio: f64,
        bound_unsound: u64,
    }
    let mut by_op: BTreeMap<&str, Acc> = BTreeMap::new();
    for obs in observations {
        let acc = by_op.entry(obs.opcode.as_str()).or_insert(Acc {
            samples: 0,
            known: 0,
            rel_err_sum: 0.0,
            rel_err_n: 0,
            max_ratio: 0.0,
            unsound: 0,
            bounded: 0,
            max_bound_ratio: 0.0,
            bound_unsound: 0,
        });
        acc.samples += 1;
        if let Some(bound) = obs.bound_bytes {
            acc.bounded += 1;
            if bound > 0 {
                let ratio = obs.actual_bytes as f64 / bound as f64;
                if ratio > acc.max_bound_ratio {
                    acc.max_bound_ratio = ratio;
                }
            }
            if obs.actual_bytes > bound {
                acc.bound_unsound += 1;
            }
        }
        let Some(predicted) = obs.predicted_bytes else {
            continue;
        };
        acc.known += 1;
        if obs.actual_bytes > 0 {
            let rel = (predicted as f64 - obs.actual_bytes as f64) / obs.actual_bytes as f64;
            acc.rel_err_sum += rel;
            acc.rel_err_n += 1;
        }
        if predicted > 0 {
            let ratio = obs.actual_bytes as f64 / predicted as f64;
            if ratio > acc.max_ratio {
                acc.max_ratio = ratio;
            }
        }
        if obs.actual_bytes > predicted {
            acc.unsound += 1;
        }
    }
    let per_opcode: Vec<OpcodeAudit> = by_op
        .into_iter()
        .map(|(opcode, acc)| OpcodeAudit {
            opcode: opcode.to_string(),
            samples: acc.samples,
            known_samples: acc.known,
            mean_rel_error: if acc.rel_err_n > 0 {
                acc.rel_err_sum / acc.rel_err_n as f64
            } else {
                0.0
            },
            max_actual_over_predicted: acc.max_ratio,
            unsound: acc.unsound,
            bounded_samples: acc.bounded,
            max_actual_over_bound: acc.max_bound_ratio,
            bound_unsound: acc.bound_unsound,
        })
        .collect();
    MemoryAuditReport {
        script: script.to_string(),
        rows,
        cols,
        cp_instructions,
        observations: observations.len() as u64,
        unsound_total: per_opcode.iter().map(|o| o.unsound).sum(),
        bounded_observations: per_opcode.iter().map(|o| o.bounded_samples).sum(),
        bound_unsound_total: per_opcode.iter().map(|o| o.bound_unsound).sum(),
        per_opcode,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_linreg_ds_records_observations() {
        let report = memory_soundness_audit(
            &reml_scripts::linreg_ds(),
            300,
            8,
            LabelKind::Regression,
            &[],
        );
        assert!(report.observations > 0);
        assert!(!report.per_opcode.is_empty());
        // Every known-size estimate must bound the actual footprint: the
        // executor computes exactly what the compiler predicted sizes for.
        assert_eq!(report.unsound_total, 0, "{report:?}");
        // The interval analysis must produce finite bounds for a
        // fully-known direct solve, and none may be violated.
        assert!(report.bounded_observations > 0, "{report:?}");
        assert_eq!(report.bound_unsound_total, 0, "{report:?}");
    }
}

//! Size-only shadow of the CP buffer pool.
//!
//! Tracks variable footprints against the CP memory budget and accounts
//! eviction/restore bytes — the real matrices never exist for the big
//! scenarios; only their sizes do.

use std::collections::HashMap;

/// Shadow buffer pool over `(name, bytes)` entries with LRU eviction.
#[derive(Debug, Clone)]
pub struct ShadowPool {
    capacity_bytes: u64,
    entries: HashMap<String, ShadowEntry>,
    clock: u64,
    /// Bytes written to local disk by evictions.
    pub bytes_evicted: u64,
    /// Bytes read back by restores.
    pub bytes_restored: u64,
    /// Eviction events.
    pub evictions: u64,
    /// Restore events (each eviction is restored at most once before the
    /// entry becomes evictable again).
    pub restores: u64,
}

#[derive(Debug, Clone)]
struct ShadowEntry {
    bytes: u64,
    resident: bool,
    dirty: bool,
    last_use: u64,
}

impl ShadowPool {
    /// Pool with a byte capacity (the CP budget).
    pub fn new(capacity_bytes: u64) -> Self {
        ShadowPool {
            capacity_bytes,
            entries: HashMap::new(),
            clock: 0,
            bytes_evicted: 0,
            bytes_restored: 0,
            evictions: 0,
            restores: 0,
        }
    }

    /// Resize (AM migration / recovery restart). Shrinking below the
    /// current occupancy spills immediately — the eviction storm a
    /// smaller restarted AM pays.
    pub fn set_capacity(&mut self, capacity_bytes: u64) {
        self.capacity_bytes = capacity_bytes;
        self.evict_to_fit(None);
    }

    /// Current byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of resident entries.
    pub fn num_resident(&self) -> usize {
        self.entries.values().filter(|e| e.resident).count()
    }

    /// Total bytes of clean (HDFS-backed) resident entries — the state a
    /// restarted AM re-reads after a kill.
    pub fn clean_resident_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.resident && !e.dirty)
            .map(|e| e.bytes)
            .sum()
    }

    /// Record a variable produced in memory.
    pub fn put(&mut self, name: &str, bytes: u64, dirty: bool) {
        self.clock += 1;
        self.entries.insert(
            name.to_string(),
            ShadowEntry {
                bytes,
                resident: true,
                dirty,
                last_use: self.clock,
            },
        );
        self.evict_to_fit(Some(name));
    }

    /// Record a use; returns restored bytes if the entry had been evicted.
    pub fn touch(&mut self, name: &str) -> u64 {
        self.clock += 1;
        let clock = self.clock;
        let restored = match self.entries.get_mut(name) {
            Some(e) => {
                e.last_use = clock;
                if !e.resident {
                    e.resident = true;
                    e.bytes
                } else {
                    0
                }
            }
            None => 0,
        };
        if restored > 0 {
            self.bytes_restored += restored;
            self.restores += 1;
            self.evict_to_fit(Some(name));
        }
        restored
    }

    /// Drop a variable.
    pub fn remove(&mut self, name: &str) {
        self.entries.remove(name);
    }

    /// Whether a variable is currently dirty.
    pub fn is_dirty(&self, name: &str) -> Option<bool> {
        self.entries.get(name).map(|e| e.dirty)
    }

    /// Mark a variable clean (exported to HDFS).
    pub fn mark_clean(&mut self, name: &str) {
        if let Some(e) = self.entries.get_mut(name) {
            e.dirty = false;
        }
    }

    /// Mark every entry clean (post-migration: all dirty variables were
    /// exported to HDFS).
    pub fn mark_all_clean(&mut self) {
        for e in self.entries.values_mut() {
            e.dirty = false;
        }
    }

    /// Total bytes of dirty entries (the migration export set).
    pub fn dirty_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.dirty)
            .map(|e| e.bytes)
            .sum()
    }

    /// Resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.resident)
            .map(|e| e.bytes)
            .sum()
    }

    fn evict_to_fit(&mut self, protect: Option<&str>) {
        while self.resident_bytes() > self.capacity_bytes {
            let victim = self
                .entries
                .iter()
                .filter(|(n, e)| e.resident && protect != Some(n.as_str()))
                .min_by_key(|(_, e)| e.last_use)
                .map(|(n, _)| n.clone());
            match victim {
                Some(name) => {
                    let e = self.entries.get_mut(&name).expect("victim exists");
                    e.resident = false;
                    self.bytes_evicted += e.bytes;
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_no_evictions() {
        let mut p = ShadowPool::new(100);
        p.put("a", 40, true);
        p.put("b", 40, false);
        assert_eq!(p.evictions, 0);
        assert_eq!(p.resident_bytes(), 80);
    }

    #[test]
    fn lru_eviction_and_restore() {
        let mut p = ShadowPool::new(100);
        p.put("a", 60, true);
        p.put("b", 60, true); // evicts a
        assert_eq!(p.evictions, 1);
        assert_eq!(p.bytes_evicted, 60);
        let restored = p.touch("a"); // brings a back, evicts b
        assert_eq!(restored, 60);
        assert_eq!(p.bytes_restored, 60);
        assert_eq!(p.evictions, 2);
    }

    #[test]
    fn dirty_accounting() {
        let mut p = ShadowPool::new(1000);
        p.put("x", 100, false);
        p.put("g", 50, true);
        p.put("w", 25, true);
        assert_eq!(p.dirty_bytes(), 75);
        p.mark_clean("g");
        assert_eq!(p.dirty_bytes(), 25);
        p.remove("w");
        assert_eq!(p.dirty_bytes(), 0);
    }

    #[test]
    fn grow_capacity_stops_evicting() {
        let mut p = ShadowPool::new(50);
        p.put("a", 40, true);
        p.put("b", 40, true);
        let before = p.evictions;
        p.set_capacity(1000);
        p.touch("a");
        p.touch("b");
        p.put("c", 40, true);
        assert_eq!(p.evictions, before);
    }

    #[test]
    fn touch_unknown_is_noop() {
        let mut p = ShadowPool::new(10);
        assert_eq!(p.touch("ghost"), 0);
    }
}

//! Fault-injection layer for the cluster simulator.
//!
//! The paper's testbed was a real 1+6-node YARN cluster, where containers
//! get preempted, NodeManagers crash, AMs are killed by the RM, and CP
//! instructions OOM when actual sizes exceed the optimistic estimates.
//! This module makes the substituted testbed adversarial: a seeded,
//! deterministic [`FaultPlan`] — a schedule of faults keyed to simulation
//! progress counters — is threaded through `SimConfig` into
//! `Simulator::run_app`. Every injected fault and every recovery decision
//! is appended to a structured event trace ([`TracedEvent`]) that is
//! serde-serialized for the failure-replay harness: replaying the same
//! `(seed, FaultPlan)` must reproduce the identical trace byte for byte.
//!
//! Fault semantics (YARN accounting, charged through [`super::app`]):
//!
//! * **container preemption** — a fraction of an MR job's task containers
//!   is reclaimed by the RM; the tasks are re-queued (scheduling delay +
//!   one backoff) and re-execute their share of the job's work;
//! * **node loss** — a NodeManager dies: its containers are lost, their
//!   share of the running job re-executes, and cluster capacity (the §6
//!   slot availability) shrinks for the rest of the run;
//! * **AM kill** — the control-program container dies at a statement-block
//!   boundary: dirty buffer-pool state is lost and must be regenerated,
//!   clean state re-reads from HDFS, and the restarted AM runs the
//!   §4-style recovery decision (`reml_optimizer::decide_recovery`) —
//!   possibly coming back at the globally optimal size;
//! * **task OOM** — a CP instruction whose actual-size footprint exceeds
//!   a watermark fraction of the memory budget OOMs; the block is
//!   recompiled to an MR plan at the actual sizes and re-executed;
//! * **straggler** — an MR job's latency is stretched by a slowdown
//!   factor (the measured long tail the cost model cannot see).

use reml_cluster::{ClusterConfig, ContainerId, ContainerRequest, YarnState};
use serde::{Serialize, Value};

use crate::app::AdaptationEvent;

/// When a fault fires. Triggers are keyed to deterministic simulation
/// progress counters, not wall-clock time, so a plan replays identically
/// regardless of cost-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTrigger {
    /// When the n-th MR job (0-indexed, application lifetime) launches.
    MrJob(u64),
    /// When the n-th dynamic recompilation (0-indexed) begins, i.e. at
    /// the entry of the generic block about to be recompiled.
    Recompilation(u64),
}

/// What kind of fault fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The RM preempts this fraction of the job's task containers.
    ContainerPreemption {
        /// Fraction of task containers preempted, clamped to `[0, 1]`.
        fraction: f64,
    },
    /// A NodeManager is lost (node index modulo the cluster size).
    NodeLoss {
        /// Node to fail.
        node: u32,
    },
    /// The AM container is killed (RM preemption or node crash). Fires
    /// at the next statement-block boundary.
    AmKill,
    /// A CP instruction OOMs when its actual-size footprint exceeds
    /// `watermark_frac` of the CP memory budget.
    TaskOom {
        /// OOM watermark as a fraction of the CP budget, in `(0, 1]`.
        watermark_frac: f64,
    },
    /// The triggered MR job runs `factor`× its modeled latency.
    Straggler {
        /// Latency stretch factor (≥ 1 to slow down).
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable label for reports and sweep tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ContainerPreemption { .. } => "container_preemption",
            FaultKind::NodeLoss { .. } => "node_loss",
            FaultKind::AmKill => "am_kill",
            FaultKind::TaskOom { .. } => "task_oom",
            FaultKind::Straggler { .. } => "straggler",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// When it fires (each spec fires at most once).
    pub trigger: FaultTrigger,
    /// What happens.
    pub kind: FaultKind,
}

/// Retry/backoff semantics per YARN's task re-execution accounting:
/// re-queued work pays `backoff_s` of scheduling delay on top of the
/// container-allocation latency before it re-executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before the whole job is considered failed and restarted
    /// from scratch (YARN's `mapreduce.map.maxattempts` analogue).
    pub max_attempts: u32,
    /// Scheduling backoff per re-queue, seconds.
    pub backoff_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_s: 1.0,
        }
    }
}

/// A deterministic schedule of faults plus the retry policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Scheduled faults (order irrelevant; triggers decide).
    pub faults: Vec<FaultSpec>,
    /// Retry/backoff semantics.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// The benign plan: no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether any fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The canonical adversarial schedule used by the golden-trace suite
    /// and the fault-sweep experiment: one of every fault kind, placed
    /// early so even small workloads hit several of them.
    pub fn canonical() -> Self {
        FaultPlan {
            faults: vec![
                FaultSpec {
                    trigger: FaultTrigger::MrJob(0),
                    kind: FaultKind::Straggler { factor: 2.0 },
                },
                FaultSpec {
                    trigger: FaultTrigger::MrJob(1),
                    kind: FaultKind::ContainerPreemption { fraction: 0.25 },
                },
                FaultSpec {
                    trigger: FaultTrigger::MrJob(2),
                    kind: FaultKind::NodeLoss { node: 0 },
                },
                FaultSpec {
                    trigger: FaultTrigger::Recompilation(2),
                    kind: FaultKind::AmKill,
                },
                FaultSpec {
                    trigger: FaultTrigger::Recompilation(4),
                    kind: FaultKind::TaskOom {
                        watermark_frac: 0.5,
                    },
                },
            ],
            retry: RetryPolicy::default(),
        }
    }

    /// A light preemption-only schedule (the "lossy but not hostile"
    /// cluster of the fault-sweep experiment).
    pub fn light() -> Self {
        FaultPlan {
            faults: vec![
                FaultSpec {
                    trigger: FaultTrigger::MrJob(0),
                    kind: FaultKind::ContainerPreemption { fraction: 0.1 },
                },
                FaultSpec {
                    trigger: FaultTrigger::MrJob(3),
                    kind: FaultKind::Straggler { factor: 1.5 },
                },
            ],
            retry: RetryPolicy::default(),
        }
    }
}

/// One trace record: what happened and at which simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedEvent {
    /// Simulated elapsed time at emission, seconds.
    pub t_s: f64,
    /// The event.
    pub event: TraceEvent,
}

/// Structured fault / recovery / adaptation events. The trace is the
/// contract of the failure-replay harness: identical `(seed, FaultPlan)`
/// must reproduce an identical trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Application start (AM container allocated).
    AppStart {
        /// Initial CP heap, MB.
        cp_heap_mb: u64,
    },
    /// A straggler stretched an MR job.
    Straggler {
        /// Job index.
        job: u64,
        /// Stretch factor.
        factor: f64,
        /// Extra latency charged, seconds.
        slowdown_s: f64,
    },
    /// Task containers of an MR job were preempted and re-queued.
    Preemption {
        /// Job index.
        job: u64,
        /// Containers the job held when the preemption hit.
        containers: u64,
        /// Containers preempted and re-queued.
        requeued: u64,
        /// Re-executed work, seconds.
        rework_s: f64,
        /// Scheduling delay (backoff + re-allocation), seconds.
        backoff_s: f64,
    },
    /// A NodeManager died during an MR job.
    NodeLoss {
        /// Job index.
        job: u64,
        /// Failed node.
        node: u32,
        /// Containers lost with the node.
        containers_lost: u64,
        /// Re-executed work, seconds.
        rework_s: f64,
        /// Slot availability after the loss (for the rest of the run).
        slot_availability: f64,
    },
    /// The AM container was killed at a block boundary.
    AmKill {
        /// Block at whose entry the kill was observed.
        block: usize,
        /// Restart latency charged (backoff + container allocation), s.
        restart_latency_s: f64,
        /// Dirty (unexported) state lost, MB.
        lost_dirty_mb: u64,
        /// Time to regenerate the lost state, seconds.
        rework_s: f64,
        /// Time to re-read clean state from HDFS, seconds.
        restore_s: f64,
    },
    /// The §4-style recovery decision of the restarted AM.
    Recovery {
        /// Block anchoring the re-optimization scope.
        block: usize,
        /// Whether the AM came back at a different configuration.
        migrated: bool,
        /// CP heap of the restarted AM, MB.
        target_cp_mb: u64,
        /// Estimated benefit ΔC, seconds.
        delta_cost_s: f64,
        /// Scheduling premium the benefit had to beat, seconds.
        premium_s: f64,
    },
    /// A CP instruction hit the OOM watermark.
    Oom {
        /// Block being executed.
        block: usize,
        /// Offending opcode.
        op: String,
        /// Instruction footprint at actual sizes, MB.
        needed_mb: u64,
        /// CP budget, MB.
        budget_mb: u64,
        /// Work already done in the failed attempt (re-done by the MR
        /// plan), seconds.
        wasted_s: f64,
    },
    /// The forced recompilation to an MR plan after an OOM.
    OomRecompile {
        /// Block recompiled.
        block: usize,
        /// MR jobs in the replacement plan.
        mr_jobs: u64,
    },
    /// A regular §4 runtime adaptation decision (the happy-path trigger).
    Adaptation {
        /// The decision record.
        ev: AdaptationEvent,
    },
    /// An AM migration was performed (voluntary §4 or recovery upgrade).
    Migration {
        /// Block that triggered it.
        block: usize,
        /// Export/restore IO charged, seconds.
        io_s: f64,
        /// Allocation latency charged, seconds.
        latency_s: f64,
        /// New CP heap, MB.
        to_cp_mb: u64,
    },
    /// Final outcome summary (last event of every trace).
    Outcome {
        /// End-to-end measured time, seconds.
        elapsed_s: f64,
        /// MR jobs executed.
        mr_jobs: u64,
        /// AM migrations (voluntary + recovery upgrades).
        migrations: u32,
        /// AM restarts after kills.
        recoveries: u32,
        /// Task containers re-queued.
        task_retries: u64,
        /// Dynamic recompilations.
        recompilations: u64,
        /// Faults injected.
        faults_injected: u64,
        /// CP heap at program end, MB.
        final_cp_mb: u64,
    },
}

/// Round to milliseconds for stable golden files; full precision stays
/// in memory for the exact determinism comparison.
fn num3(x: f64) -> Value {
    Value::Num((x * 1000.0).round() / 1000.0)
}

fn obj(tag: &str, fields: Vec<(&str, Value)>) -> Value {
    let mut entries = vec![("event".to_string(), Value::Str(tag.to_string()))];
    entries.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Value::Object(entries)
}

impl Serialize for TraceEvent {
    fn to_value(&self) -> Value {
        match self {
            TraceEvent::AppStart { cp_heap_mb } => {
                obj("app_start", vec![("cp_heap_mb", cp_heap_mb.to_value())])
            }
            TraceEvent::Straggler {
                job,
                factor,
                slowdown_s,
            } => obj(
                "straggler",
                vec![
                    ("job", job.to_value()),
                    ("factor", num3(*factor)),
                    ("slowdown_s", num3(*slowdown_s)),
                ],
            ),
            TraceEvent::Preemption {
                job,
                containers,
                requeued,
                rework_s,
                backoff_s,
            } => obj(
                "preemption",
                vec![
                    ("job", job.to_value()),
                    ("containers", containers.to_value()),
                    ("requeued", requeued.to_value()),
                    ("rework_s", num3(*rework_s)),
                    ("backoff_s", num3(*backoff_s)),
                ],
            ),
            TraceEvent::NodeLoss {
                job,
                node,
                containers_lost,
                rework_s,
                slot_availability,
            } => obj(
                "node_loss",
                vec![
                    ("job", job.to_value()),
                    ("node", node.to_value()),
                    ("containers_lost", containers_lost.to_value()),
                    ("rework_s", num3(*rework_s)),
                    ("slot_availability", num3(*slot_availability)),
                ],
            ),
            TraceEvent::AmKill {
                block,
                restart_latency_s,
                lost_dirty_mb,
                rework_s,
                restore_s,
            } => obj(
                "am_kill",
                vec![
                    ("block", block.to_value()),
                    ("restart_latency_s", num3(*restart_latency_s)),
                    ("lost_dirty_mb", lost_dirty_mb.to_value()),
                    ("rework_s", num3(*rework_s)),
                    ("restore_s", num3(*restore_s)),
                ],
            ),
            TraceEvent::Recovery {
                block,
                migrated,
                target_cp_mb,
                delta_cost_s,
                premium_s,
            } => obj(
                "recovery",
                vec![
                    ("block", block.to_value()),
                    ("migrated", migrated.to_value()),
                    ("target_cp_mb", target_cp_mb.to_value()),
                    ("delta_cost_s", num3(*delta_cost_s)),
                    ("premium_s", num3(*premium_s)),
                ],
            ),
            TraceEvent::Oom {
                block,
                op,
                needed_mb,
                budget_mb,
                wasted_s,
            } => obj(
                "oom",
                vec![
                    ("block", block.to_value()),
                    ("op", op.to_value()),
                    ("needed_mb", needed_mb.to_value()),
                    ("budget_mb", budget_mb.to_value()),
                    ("wasted_s", num3(*wasted_s)),
                ],
            ),
            TraceEvent::OomRecompile { block, mr_jobs } => obj(
                "oom_recompile",
                vec![("block", block.to_value()), ("mr_jobs", mr_jobs.to_value())],
            ),
            TraceEvent::Adaptation { ev } => obj(
                "adaptation",
                vec![
                    ("block", ev.block.to_value()),
                    ("migrated", ev.migrated.to_value()),
                    ("global_cp_mb", ev.global_cp_mb.to_value()),
                    ("delta_cost_s", num3(ev.delta_cost_s)),
                    ("migration_cost_s", num3(ev.migration_cost_s)),
                ],
            ),
            TraceEvent::Migration {
                block,
                io_s,
                latency_s,
                to_cp_mb,
            } => obj(
                "migration",
                vec![
                    ("block", block.to_value()),
                    ("io_s", num3(*io_s)),
                    ("latency_s", num3(*latency_s)),
                    ("to_cp_mb", to_cp_mb.to_value()),
                ],
            ),
            TraceEvent::Outcome {
                elapsed_s,
                mr_jobs,
                migrations,
                recoveries,
                task_retries,
                recompilations,
                faults_injected,
                final_cp_mb,
            } => obj(
                "outcome",
                vec![
                    ("elapsed_s", num3(*elapsed_s)),
                    ("mr_jobs", mr_jobs.to_value()),
                    ("migrations", migrations.to_value()),
                    ("recoveries", recoveries.to_value()),
                    ("task_retries", task_retries.to_value()),
                    ("recompilations", recompilations.to_value()),
                    ("faults_injected", faults_injected.to_value()),
                    ("final_cp_mb", final_cp_mb.to_value()),
                ],
            ),
        }
    }
}

impl Serialize for TracedEvent {
    fn to_value(&self) -> Value {
        let mut entries = vec![("t_s".to_string(), num3(self.t_s))];
        match self.event.to_value() {
            Value::Object(fields) => entries.extend(fields),
            other => entries.push(("event".to_string(), other)),
        }
        Value::Object(entries)
    }
}

/// Render a trace as the canonical golden-file JSON (pretty, trailing
/// newline) — the byte-for-byte replay contract.
pub fn trace_to_json(trace: &[TracedEvent]) -> String {
    let mut s = serde_json::to_string_pretty(&trace.to_value()).expect("trace serializes");
    s.push('\n');
    s
}

/// Runtime state of a [`FaultPlan`]: which specs fired, the mirrored RM
/// container accounting, and the emitted trace.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The plan.
    pub plan: FaultPlan,
    fired: Vec<bool>,
    /// An AM kill observed mid-job, to be processed at the next
    /// statement-block boundary.
    am_kill_deferred: bool,
    /// Mirrored RM state: the AM container plus per-job task containers.
    pub rm: YarnState,
    am_container: Option<ContainerId>,
    /// Emitted events.
    pub events: Vec<TracedEvent>,
    /// Faults injected so far.
    pub faults_injected: u64,
    /// Task containers re-queued so far.
    pub task_retries: u64,
}

/// Mirror one fault event onto the global `reml_trace` recorder as a
/// `fault.<tag>` instant event, deriving the field set from the same
/// serde view the golden files use (so the two streams cannot drift).
/// Under a sim-clock recorder the event is stamped with virtual time so
/// the trace stays bit-reproducible; under a wall clock it lands at the
/// recorder's current time with `t_s` kept as a field.
fn mirror_to_trace(t_s: f64, event: &TraceEvent) {
    if !reml_trace::enabled() {
        return;
    }
    let Value::Object(entries) = event.to_value() else {
        return;
    };
    let mut name = String::from("fault.event");
    let mut fields: reml_trace::Fields = Vec::with_capacity(entries.len() + 1);
    fields.push((
        std::borrow::Cow::Borrowed("t_s"),
        reml_trace::FieldValue::F64(t_s),
    ));
    for (k, v) in entries {
        if k == "event" {
            if let Value::Str(tag) = v {
                name = format!("fault.{tag}");
            }
            continue;
        }
        let fv = match v {
            Value::Num(x) => reml_trace::FieldValue::F64(x),
            Value::Bool(b) => reml_trace::FieldValue::Bool(b),
            Value::Str(s) => reml_trace::FieldValue::Str(s),
            other => reml_trace::FieldValue::Str(format!("{other:?}")),
        };
        fields.push((std::borrow::Cow::Owned(k), fv));
    }
    if reml_trace::deterministic() {
        reml_trace::event_at_us((t_s * 1e6).round() as u64, name, fields);
    } else {
        reml_trace::event_fields(name, fields);
    }
}

impl FaultInjector {
    /// Injector over a plan; allocates the AM container in the mirrored
    /// RM state.
    pub fn new(plan: FaultPlan, cluster: ClusterConfig, cp_heap_mb: u64) -> Self {
        let fired = vec![false; plan.faults.len()];
        let mut rm = YarnState::new(cluster.clone());
        let am_container = rm
            .allocate(ContainerRequest {
                mem_mb: cluster.container_mb_for_heap(cp_heap_mb),
            })
            .ok();
        FaultInjector {
            plan,
            fired,
            am_kill_deferred: false,
            rm,
            am_container,
            events: Vec::new(),
            faults_injected: 0,
            task_retries: 0,
        }
    }

    /// Record an event at simulated time `t_s`. The canonical event list
    /// (and its golden byte-for-byte replay schema) is `self.events`; when
    /// a global `reml_trace` recorder is installed the event is also
    /// mirrored there as a `fault.<tag>` instant.
    pub fn record(&mut self, t_s: f64, event: TraceEvent) {
        mirror_to_trace(t_s, &event);
        self.events.push(TracedEvent { t_s, event });
    }

    /// Faults triggered by MR jobs in `[first, first + count)`, marked
    /// fired. AM kills are deferred to the next block boundary and not
    /// returned here; CP-scoped kinds (`TaskOom`) on MR triggers are
    /// dropped (they cannot apply to an MR job).
    pub fn take_mr_faults(&mut self, first: u64, count: u64) -> Vec<(u64, FaultKind)> {
        let mut out = Vec::new();
        for (i, spec) in self.plan.faults.iter().enumerate() {
            if self.fired[i] {
                continue;
            }
            let FaultTrigger::MrJob(n) = spec.trigger else {
                continue;
            };
            if n < first || n >= first + count {
                continue;
            }
            self.fired[i] = true;
            self.faults_injected += 1;
            match &spec.kind {
                FaultKind::AmKill => self.am_kill_deferred = true,
                FaultKind::TaskOom { .. } => {}
                kind => out.push((n, kind.clone())),
            }
        }
        // Deterministic processing order: by job index, then plan order
        // (Vec iteration already gives plan order for equal indices).
        out.sort_by_key(|(n, _)| *n);
        out
    }

    /// Faults triggered by the n-th dynamic recompilation, marked fired.
    /// MR-scoped kinds on recompilation triggers are dropped.
    pub fn take_recompile_faults(&mut self, n: u64) -> Vec<FaultKind> {
        let mut out = Vec::new();
        for (i, spec) in self.plan.faults.iter().enumerate() {
            if self.fired[i] || spec.trigger != FaultTrigger::Recompilation(n) {
                continue;
            }
            self.fired[i] = true;
            self.faults_injected += 1;
            match &spec.kind {
                FaultKind::AmKill | FaultKind::TaskOom { .. } => out.push(spec.kind.clone()),
                _ => {}
            }
        }
        out
    }

    /// Consume a deferred (mid-job) AM kill, if any.
    pub fn take_deferred_am_kill(&mut self) -> bool {
        std::mem::take(&mut self.am_kill_deferred)
    }

    /// Restart the AM container (after a kill or a voluntary migration)
    /// at a possibly different heap size, keeping the RM mirror honest.
    pub fn restart_am(&mut self, new_cp_heap_mb: u64) {
        let mem = self.rm.config().container_mb_for_heap(new_cp_heap_mb);
        if let Some(id) = self.am_container.take() {
            let _ = self.rm.preempt(id);
        }
        self.am_container = self.rm.requeue(ContainerRequest { mem_mb: mem }).ok();
    }

    /// Model one MR job's task containers through the RM mirror: allocate
    /// up to `tasks` containers of `task_mem_mb`, preempt `preempt_frac`
    /// of them, re-queue the preempted ones, then release everything.
    /// Returns `(allocated, requeued)`.
    pub fn churn_job_containers(
        &mut self,
        tasks: u64,
        task_mem_mb: u64,
        preempt_frac: f64,
    ) -> (u64, u64) {
        let mut held: Vec<ContainerId> = Vec::new();
        for _ in 0..tasks {
            match self.rm.allocate(ContainerRequest {
                mem_mb: task_mem_mb,
            }) {
                Ok(id) => held.push(id),
                Err(_) => break,
            }
        }
        let allocated = held.len() as u64;
        let to_preempt = ((allocated as f64) * preempt_frac.clamp(0.0, 1.0)).ceil() as u64;
        let mut requeued = 0u64;
        for _ in 0..to_preempt {
            let Some(id) = held.pop() else { break };
            if self.rm.preempt(id).is_ok() {
                if let Ok(new_id) = self.rm.requeue(ContainerRequest {
                    mem_mb: task_mem_mb,
                }) {
                    held.push(new_id);
                    requeued += 1;
                }
            }
        }
        self.task_retries += requeued;
        for id in held {
            let _ = self.rm.release(id);
        }
        (allocated, requeued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_plan_covers_every_kind() {
        let plan = FaultPlan::canonical();
        let kinds: std::collections::HashSet<&'static str> =
            plan.faults.iter().map(|f| f.kind.name()).collect();
        assert_eq!(kinds.len(), 5);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn specs_fire_at_most_once() {
        let mut inj = FaultInjector::new(
            FaultPlan::canonical(),
            ClusterConfig::small_test_cluster(),
            512,
        );
        let first = inj.take_mr_faults(0, 3);
        assert_eq!(first.len(), 3); // straggler, preemption, node loss
        assert!(inj.take_mr_faults(0, 3).is_empty());
        let recompile2 = inj.take_recompile_faults(2);
        assert_eq!(recompile2, vec![FaultKind::AmKill]);
        assert!(inj.take_recompile_faults(2).is_empty());
        assert_eq!(inj.faults_injected, 4);
    }

    #[test]
    fn mr_triggered_am_kill_defers_to_block_boundary() {
        let plan = FaultPlan {
            faults: vec![FaultSpec {
                trigger: FaultTrigger::MrJob(0),
                kind: FaultKind::AmKill,
            }],
            retry: RetryPolicy::default(),
        };
        let mut inj = FaultInjector::new(plan, ClusterConfig::small_test_cluster(), 512);
        assert!(inj.take_mr_faults(0, 1).is_empty());
        assert!(inj.take_deferred_am_kill());
        assert!(!inj.take_deferred_am_kill());
    }

    #[test]
    fn container_churn_counts_requeues() {
        let mut inj =
            FaultInjector::new(FaultPlan::none(), ClusterConfig::small_test_cluster(), 512);
        let (allocated, requeued) = inj.churn_job_containers(8, 512, 0.5);
        assert!(allocated > 0);
        assert_eq!(requeued, allocated.div_ceil(2));
        assert_eq!(inj.rm.preemptions, requeued);
        assert_eq!(inj.task_retries, requeued);
        // All task containers were released; only the AM remains.
        assert_eq!(inj.rm.num_containers(), 1);
    }

    #[test]
    fn am_restart_reallocates_at_new_size() {
        let mut inj =
            FaultInjector::new(FaultPlan::none(), ClusterConfig::small_test_cluster(), 512);
        let before = inj.rm.allocated_mb();
        inj.restart_am(2048);
        assert!(inj.rm.allocated_mb() > before);
        assert_eq!(inj.rm.preemptions, 1);
        assert_eq!(inj.rm.requeues, 1);
    }

    #[test]
    fn trace_serialization_is_stable() {
        let trace = vec![
            TracedEvent {
                t_s: 2.0004,
                event: TraceEvent::AppStart { cp_heap_mb: 512 },
            },
            TracedEvent {
                t_s: 10.5,
                event: TraceEvent::Straggler {
                    job: 0,
                    factor: 2.0,
                    slowdown_s: 15.1234567,
                },
            },
        ];
        let a = trace_to_json(&trace);
        let b = trace_to_json(&trace.clone());
        assert_eq!(a, b);
        assert!(a.contains("\"event\": \"straggler\""));
        // Milli-rounding keeps goldens stable.
        assert!(a.contains("15.123"));
        assert!(a.ends_with('\n'));
    }
}

//! # reml-sim — the execution substrate (substituted testbed)
//!
//! The paper evaluates on a physical 1+6-node YARN cluster; this crate is
//! the substitution (see DESIGN.md): a simulator that *executes* compiled
//! runtime programs against the modeled cluster and reports **measured**
//! time. It deliberately models effects the analytic cost model only
//! partially captures, reproducing the paper's estimate/measurement gap:
//!
//! * **buffer-pool evictions** — a shadow LRU pool sized to the CP budget
//!   charges local-disk IO for evictions/restores (the paper's named
//!   source of Opt suboptimality on sparse data);
//! * **per-job overhead jitter** — deterministic, seeded;
//! * **dynamic recompilation** — blocks are recompiled with actual sizes
//!   before execution (the table() unknowns resolve to the configured
//!   "facts"), and, when enabled, §4 runtime adaptation decides on AM
//!   migration with its cost charged;
//! * **multi-tenant throughput** — a discrete-event admission simulator
//!   over the YARN container accounting (Figure 12);
//! * **Spark executor model** — stage-latency/caching-based execution for
//!   the Appendix D comparison.

#![forbid(unsafe_code)]

pub mod app;
pub mod audit;
pub mod causal;
pub mod fault;
pub mod shadow;
pub mod spark;
pub mod throughput;

pub use app::{AdaptationEvent, AppOutcome, SimConfig, SimFacts, Simulator};
pub use audit::{
    collect_observations, memory_soundness_audit, MemoryAuditReport, OpcodeAudit,
    ScriptObservations,
};
pub use causal::{Bucket, CausalKind, CausalNode, CausalTrace};
pub use fault::{
    trace_to_json, FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTrigger, RetryPolicy,
    TraceEvent, TracedEvent,
};
pub use shadow::ShadowPool;
pub use spark::{recommend_executor_memory, simulate_spark_iterative, SparkPlan};
pub use throughput::{simulate_throughput, simulate_throughput_with_faults, ThroughputResult};

//! Causal event DAG emitted by the simulator.
//!
//! Every second the simulator charges to an [`super::AppOutcome`]
//! component is also recorded here as a node in a happens-before DAG on
//! the virtual clock: the node knows *what* consumed the time (a CP
//! instruction, an MR job, a fault, a migration), *which* taxonomy
//! bucket it belongs to, and *how much serialized work* it stands for
//! (an MR node's duration is its elapsed time; its `serial_s` is
//! duration × task parallelism). `reml_insight` consumes this trace to
//! extract the critical path and attribute the makespan — the closed
//! taxonomy below is the contract between the two crates.

/// The closed attribution taxonomy: every simulated second lands in
/// exactly one bucket. `IdleResidual` is never emitted by the simulator
/// itself — it is the (near-zero) remainder the attribution layer
/// assigns when bucket sums fall short of the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Bucket {
    /// CPU work (CP operators, MR task compute, fault rework regen).
    Compute,
    /// HDFS / broadcast / migration-export IO.
    Io,
    /// MR shuffle transfer.
    Shuffle,
    /// Container allocation, restart backoff, requeue delay.
    SchedulingDelay,
    /// MR job startup / task queue latency (per-job overhead + jitter).
    QueueWait,
    /// Straggler-stretched job tails.
    StragglerWait,
    /// Re-executed work after preemptions, node losses, and AM kills.
    RetryRework,
    /// Dynamic recompilation and runtime re-optimization overhead.
    Recompilation,
    /// Buffer-pool eviction writes and restore reads.
    Eviction,
    /// Unattributed remainder (assigned by the attribution layer only).
    IdleResidual,
}

impl Bucket {
    /// All buckets, in canonical report order.
    pub const ALL: [Bucket; 10] = [
        Bucket::Compute,
        Bucket::Io,
        Bucket::Shuffle,
        Bucket::SchedulingDelay,
        Bucket::QueueWait,
        Bucket::StragglerWait,
        Bucket::RetryRework,
        Bucket::Recompilation,
        Bucket::Eviction,
        Bucket::IdleResidual,
    ];

    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Compute => "compute",
            Bucket::Io => "io",
            Bucket::Shuffle => "shuffle",
            Bucket::SchedulingDelay => "scheduling_delay",
            Bucket::QueueWait => "queue_wait",
            Bucket::StragglerWait => "straggler_wait",
            Bucket::RetryRework => "retry_rework",
            Bucket::Recompilation => "recompilation",
            Bucket::Eviction => "eviction",
            Bucket::IdleResidual => "idle_residual",
        }
    }
}

/// What kind of actor a causal node stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CausalKind {
    /// Container lifecycle (AM allocation).
    Container,
    /// CP (single-node control-program) instruction work.
    Cp,
    /// Distributed MR job work.
    MrJob,
    /// Dynamic recompilation / runtime re-optimization.
    Recompilation,
    /// Injected-fault consequence (rework, waits, restarts).
    Fault,
    /// AM migration.
    Migration,
}

impl CausalKind {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            CausalKind::Container => "container",
            CausalKind::Cp => "cp",
            CausalKind::MrJob => "mr_job",
            CausalKind::Recompilation => "recompilation",
            CausalKind::Fault => "fault",
            CausalKind::Migration => "migration",
        }
    }
}

/// One node of the causal DAG: a contiguous span of simulated time with
/// happens-before edges to its predecessors.
#[derive(Debug, Clone)]
pub struct CausalNode {
    /// Dense id (index into [`CausalTrace::nodes`]).
    pub id: u32,
    /// Actor kind.
    pub kind: CausalKind,
    /// Short label (opcode tag, fault tag, ...).
    pub label: String,
    /// Statement block being executed, when inside one.
    pub block: Option<usize>,
    /// Taxonomy bucket the node's duration belongs to.
    pub bucket: Bucket,
    /// Virtual-clock start, seconds.
    pub start_s: f64,
    /// Virtual-clock end, seconds (`end_s - start_s` is charged time).
    pub end_s: f64,
    /// Serialized work the node stands for: equals the duration for
    /// serial work, duration × `width` for parallel task work.
    pub serial_s: f64,
    /// Parallel width (concurrently running tasks), ≥ 1.
    pub width: u64,
    /// Happens-before predecessors (node ids).
    pub deps: Vec<u32>,
}

impl CausalNode {
    /// Elapsed (charged) duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The causal trace of one simulated application. The simulator executes
/// serially on the virtual clock, so nodes form a chain in emission
/// order — each node's happens-before set is its predecessor — and node
/// durations partition the makespan.
#[derive(Debug, Clone, Default)]
pub struct CausalTrace {
    /// Nodes in virtual-clock order.
    pub nodes: Vec<CausalNode>,
}

impl CausalTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node chained after the current tail; returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        kind: CausalKind,
        label: &str,
        block: Option<usize>,
        bucket: Bucket,
        start_s: f64,
        end_s: f64,
        serial_s: f64,
        width: u64,
    ) -> u32 {
        let id = self.nodes.len() as u32;
        let deps = if id == 0 { Vec::new() } else { vec![id - 1] };
        self.nodes.push(CausalNode {
            id,
            kind,
            label: label.to_string(),
            block,
            bucket,
            start_s,
            end_s,
            serial_s,
            width: width.max(1),
            deps,
        });
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total serialized work, seconds (≥ the makespan).
    pub fn serial_sum_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.serial_s).sum()
    }

    /// Sum of node durations, seconds (== the charged makespan).
    pub fn charged_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.duration_s()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_closed_and_named() {
        let names: std::collections::HashSet<&str> = Bucket::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), Bucket::ALL.len());
    }

    #[test]
    fn push_chains_nodes() {
        let mut t = CausalTrace::new();
        let a = t.push(
            CausalKind::Cp,
            "x",
            Some(0),
            Bucket::Compute,
            0.0,
            1.0,
            1.0,
            1,
        );
        let b = t.push(
            CausalKind::MrJob,
            "y",
            Some(1),
            Bucket::Io,
            1.0,
            3.0,
            8.0,
            4,
        );
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert!(t.nodes[0].deps.is_empty());
        assert_eq!(t.nodes[1].deps, vec![0]);
        assert_eq!(t.charged_s(), 3.0);
        assert_eq!(t.serial_sum_s(), 9.0);
    }
}

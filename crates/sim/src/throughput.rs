//! Multi-tenant throughput simulation (§5.3, Figure 12; Table 6).
//!
//! A discrete-event admission simulator: `num_users` driver threads each
//! submit `apps_per_user` applications back to back; the cluster admits
//! an application when its full memory footprint fits (the RM-level
//! behaviour that makes over-provisioned configurations saturate at few
//! concurrent applications).

/// Result of a throughput run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Total driver time to finish all applications, seconds.
    pub makespan_s: f64,
    /// Applications per minute.
    pub throughput_apps_per_min: f64,
    /// Peak concurrently running applications.
    pub peak_parallel: u32,
    /// Median per-application latency (submission-ready → finish), s.
    pub latency_p50_s: f64,
    /// 95th-percentile per-application latency, seconds.
    pub latency_p95_s: f64,
    /// 99th-percentile per-application latency, seconds.
    pub latency_p99_s: f64,
    /// Mean admission queue wait (ready → slot granted), seconds.
    pub queue_wait_mean_s: f64,
}

/// Nearest-rank percentile over a sorted sample (`p` in `[0, 100]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Simulate `num_users` users × `apps_per_user` applications, each taking
/// `app_duration_s` and occupying one of `max_parallel` admission slots
/// (derived from the per-application memory footprint).
///
/// `submit_latency_s` models client/AM startup spacing per submission.
pub fn simulate_throughput(
    app_duration_s: f64,
    max_parallel: u32,
    num_users: u32,
    apps_per_user: u32,
    submit_latency_s: f64,
) -> ThroughputResult {
    simulate_throughput_with_faults(
        app_duration_s,
        max_parallel,
        num_users,
        apps_per_user,
        submit_latency_s,
        0,
        0.0,
    )
}

/// [`simulate_throughput`] with deterministic application-level faults:
/// every `fail_every`-th submitted application (1-based global submission
/// order; 0 disables faults) fails once and is resubmitted by its user
/// after `retry_backoff_s`, paying the full duration again — the
/// admission-level view of a preempted/AM-killed application.
#[allow(clippy::too_many_arguments)]
pub fn simulate_throughput_with_faults(
    app_duration_s: f64,
    max_parallel: u32,
    num_users: u32,
    apps_per_user: u32,
    submit_latency_s: f64,
    fail_every: u64,
    retry_backoff_s: f64,
) -> ThroughputResult {
    let max_parallel = max_parallel.max(1);
    let total_apps = (num_users as u64) * (apps_per_user as u64);
    // Event-driven: each user is a sequential submitter; the cluster is a
    // counting semaphore of max_parallel slots modeled by tracking the
    // finish times of running apps.
    let mut running: Vec<f64> = Vec::new(); // finish times
    let mut user_ready: Vec<f64> = vec![0.0; num_users as usize]; // next submit time per user
    let mut remaining: Vec<u32> = vec![apps_per_user; num_users as usize];
    let mut clock = 0.0f64;
    let mut makespan = 0.0f64;
    let mut peak = 0u32;
    let mut done = 0u64;
    let mut submitted = 0u64;
    // Per-application latency (ready → finish) and admission queue wait
    // (ready → slot granted) samples for the percentile columns.
    let mut latencies: Vec<f64> = Vec::with_capacity(total_apps as usize);
    let mut queue_waits: Vec<f64> = Vec::with_capacity(total_apps as usize);
    while done < total_apps {
        // Free finished slots at the current clock.
        running.retain(|f| *f > clock + 1e-9);
        // Submit from every ready user while slots remain.
        let mut progressed = false;
        for u in 0..num_users as usize {
            if remaining[u] > 0 && user_ready[u] <= clock && (running.len() as u32) < max_parallel {
                remaining[u] -= 1;
                submitted += 1;
                // A faulted application holds its admission slot through the
                // failed attempt, the retry backoff, and the re-execution.
                let duration = if fail_every > 0 && submitted.is_multiple_of(fail_every) {
                    2.0 * app_duration_s + retry_backoff_s.max(0.0)
                } else {
                    app_duration_s
                };
                let finish = clock + duration;
                running.push(finish);
                queue_waits.push((clock - user_ready[u]).max(0.0));
                latencies.push(finish - user_ready[u]);
                // Users run their apps sequentially: the next submission
                // waits for this one to finish.
                user_ready[u] = finish + submit_latency_s.max(0.0);
                makespan = makespan.max(finish);
                done += 1;
                progressed = true;
            }
        }
        peak = peak.max(running.len() as u32);
        if done >= total_apps {
            break;
        }
        // Advance the clock strictly forward to the next event.
        let mut next = f64::INFINITY;
        for f in &running {
            if *f > clock {
                next = next.min(*f);
            }
        }
        for u in 0..num_users as usize {
            if remaining[u] > 0 && user_ready[u] > clock {
                next = next.min(user_ready[u]);
            }
        }
        if next.is_finite() {
            clock = next;
        } else if !progressed {
            // No schedulable event: bail out (cannot happen with valid
            // inputs; guards against zero durations).
            break;
        }
    }
    let makespan_s = makespan.max(f64::EPSILON);
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let queue_wait_mean_s = if queue_waits.is_empty() {
        0.0
    } else {
        queue_waits.iter().sum::<f64>() / queue_waits.len() as f64
    };
    ThroughputResult {
        makespan_s,
        throughput_apps_per_min: total_apps as f64 / makespan_s * 60.0,
        peak_parallel: peak,
        latency_p50_s: percentile(&latencies, 50.0),
        latency_p95_s: percentile(&latencies, 95.0),
        latency_p99_s: percentile(&latencies, 99.0),
        queue_wait_mean_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_user_sequential() {
        let r = simulate_throughput(60.0, 36, 1, 8, 0.0);
        // 8 apps back to back: 480 s, 1 app/min.
        assert!((r.makespan_s - 480.0).abs() < 1.0, "{}", r.makespan_s);
        assert!((r.throughput_apps_per_min - 1.0).abs() < 0.05);
        assert_eq!(r.peak_parallel, 1);
    }

    #[test]
    fn saturation_at_slot_limit() {
        // 128 users, 6 slots: throughput caps at 6 concurrent apps.
        let r = simulate_throughput(60.0, 6, 128, 8, 0.0);
        assert_eq!(r.peak_parallel, 6);
        // 1024 apps at 6/min: ~170 min.
        assert!(
            (r.throughput_apps_per_min - 6.0).abs() < 0.3,
            "{}",
            r.throughput_apps_per_min
        );
    }

    #[test]
    fn more_slots_more_throughput() {
        let few = simulate_throughput(60.0, 6, 64, 8, 0.0);
        let many = simulate_throughput(60.0, 36, 64, 8, 0.0);
        assert!(many.throughput_apps_per_min > 4.0 * few.throughput_apps_per_min);
    }

    #[test]
    fn below_saturation_throughput_scales_with_users() {
        let u1 = simulate_throughput(60.0, 36, 1, 8, 0.0);
        let u4 = simulate_throughput(60.0, 36, 4, 8, 0.0);
        assert!((u4.throughput_apps_per_min / u1.throughput_apps_per_min - 4.0).abs() < 0.3);
    }

    #[test]
    fn faults_stretch_makespan_deterministically() {
        let clean = simulate_throughput(60.0, 36, 1, 8, 0.0);
        // Every 4th of 8 apps fails once: 2 retries x (60 s + 5 s backoff).
        let faulted = simulate_throughput_with_faults(60.0, 36, 1, 8, 0.0, 4, 5.0);
        assert!(
            (faulted.makespan_s - clean.makespan_s - 130.0).abs() < 1.0,
            "clean {} faulted {}",
            clean.makespan_s,
            faulted.makespan_s
        );
        // Deterministic: replaying yields the identical result.
        let again = simulate_throughput_with_faults(60.0, 36, 1, 8, 0.0, 4, 5.0);
        assert_eq!(faulted, again);
    }

    #[test]
    fn latency_percentiles_and_queue_wait() {
        // Sequential single user: every app's latency is its duration and
        // nothing queues.
        let r = simulate_throughput(60.0, 36, 1, 8, 0.0);
        assert_eq!(r.latency_p50_s, 60.0);
        assert_eq!(r.latency_p99_s, 60.0);
        assert_eq!(r.queue_wait_mean_s, 0.0);
        // Saturated admission: queue waits appear and the tail stretches
        // beyond the median.
        let sat = simulate_throughput(60.0, 2, 16, 4, 0.0);
        assert!(sat.queue_wait_mean_s > 0.0, "{}", sat.queue_wait_mean_s);
        assert!(sat.latency_p99_s >= sat.latency_p50_s);
        assert!(sat.latency_p50_s >= 60.0);
        // Faults stretch the tail percentile, not the median.
        let faulted = simulate_throughput_with_faults(60.0, 36, 1, 8, 0.0, 8, 5.0);
        assert_eq!(faulted.latency_p50_s, 60.0);
        assert!(faulted.latency_p99_s > 100.0, "{}", faulted.latency_p99_s);
    }

    #[test]
    fn figure12_shape_opt_vs_bll() {
        // LinregDS S dense1000: Opt picks 8 GB CP -> 36 slots; B-LL takes
        // 53.3 GB -> 6 slots. At 64 users the ratio approaches 6x (the
        // paper reports 5.6x at 128 users).
        let opt = simulate_throughput(30.0, 36, 64, 8, 0.5);
        let bll = simulate_throughput(30.0, 6, 64, 8, 0.5);
        let ratio = opt.throughput_apps_per_min / bll.throughput_apps_per_min;
        assert!(ratio > 4.0 && ratio < 7.0, "ratio {ratio}");
    }
}

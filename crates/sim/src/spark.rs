//! Spark executor-model simulation (Appendix D).
//!
//! Models the properties that drive Tables 5 and 6: static executors with
//! startup cost, low per-stage latency (vs. MR job latency), RDD caching
//! with an aggregate-memory sweet spot, and driver-side CP operations for
//! the hybrid plan.
//!
//! The dominant term is *passes over X*: each outer iteration touches X a
//! few times; a pass streams from the aggregate RDD cache when the
//! dataset fits (memory-bandwidth bound, including deserialization
//! overhead) and from disk otherwise (aggregate disk-bandwidth bound —
//! task slots do not multiply disk bandwidth).

use reml_cluster::{ClusterConfig, SparkConfig};

/// Which hand-coded Spark plan to simulate (Appendix D's two L2SVM
/// ports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkPlan {
    /// Only the operations on `X` are RDD operations; everything else is
    /// CP-like on the driver.
    Hybrid,
    /// All matrix operations are RDD operations.
    Full,
}

/// Per-application startup: driver + executor acquisition and JVM spin-up.
const SPARK_APP_STARTUP_S: f64 = 18.0;

/// Latency of one distributed stage (scheduling + task dispatch).
const SPARK_STAGE_LATENCY_S: f64 = 0.8;

/// Distributed passes over X per iteration (the three X operations of
/// L2SVM: g_old, Xd, g_new — amortized over inner loops).
const PASSES_PER_ITER_X: f64 = 3.0;

/// Additional small-vector stages per iteration under the Full plan.
const STAGES_PER_ITER_FULL_EXTRA: f64 = 12.0;

/// Effective aggregate in-memory scan bandwidth across executors, MB/s
/// (JVM object deserialization keeps this far below raw DRAM bandwidth).
const AGG_CACHE_SCAN_MBS: f64 = 6_000.0;

/// Simulate an iterative program (L2SVM-shaped) on Spark.
///
/// * `data_mb` — size of X;
/// * `iterations` — outer iterations (each touching X);
/// * returns measured seconds.
pub fn simulate_spark_iterative(
    cc: &ClusterConfig,
    spark: &SparkConfig,
    plan: SparkPlan,
    data_mb: u64,
    iterations: u32,
) -> f64 {
    let mut t = SPARK_APP_STARTUP_S;
    let cached = spark.fits_in_cache(data_mb);
    let data = data_mb as f64;
    // Disk passes are bounded by the cluster's aggregate sequential
    // bandwidth, not by task count.
    let agg_disk_mbs = cc.hdfs_read_mbs * cc.num_nodes as f64;
    let disk_pass_s = data / agg_disk_mbs;
    let cache_pass_s = data / AGG_CACHE_SCAN_MBS;

    // First pass always reads from HDFS (and populates the cache).
    let mut passes_done = 0.0f64;
    for _ in 0..iterations {
        for _ in 0..PASSES_PER_ITER_X as u32 {
            t += if passes_done == 0.0 {
                disk_pass_s
            } else if cached {
                cache_pass_s
            } else {
                disk_pass_s
            };
            passes_done += 1.0;
        }
        // Stage latencies.
        let stages = match plan {
            SparkPlan::Hybrid => PASSES_PER_ITER_X,
            SparkPlan::Full => PASSES_PER_ITER_X + STAGES_PER_ITER_FULL_EXTRA,
        };
        t += stages * SPARK_STAGE_LATENCY_S;
        // The Full plan also runs its vector operations (n×1) as
        // distributed stages: one short pass each plus shuffles.
        if plan == SparkPlan::Full {
            let vector_mb = data / 1000.0; // n×1 vs n×1000 features
            t += STAGES_PER_ITER_FULL_EXTRA * (vector_mb / AGG_CACHE_SCAN_MBS + 0.4);
        }
    }
    t
}

/// What-if sizing of Spark executors (§6: "similar resource-aware
/// what-if analysis techniques could be used to automatically size
/// executors"): sweep candidate executor memories, simulate the
/// iterative program under each, and pick the fastest — preferring
/// smaller executors on ties (over-provisioning reduces multi-tenant
/// throughput exactly as on the MR path).
pub fn recommend_executor_memory(
    cc: &ClusterConfig,
    base: &SparkConfig,
    plan: SparkPlan,
    data_mb: u64,
    iterations: u32,
    candidates_mb: &[u64],
) -> (SparkConfig, f64) {
    let mut best: Option<(SparkConfig, f64)> = None;
    for &mem in candidates_mb {
        let mut cfg = base.clone();
        cfg.executor_mem_mb = mem;
        let t = simulate_spark_iterative(cc, &cfg, plan, data_mb, iterations);
        let better = match &best {
            None => true,
            Some((best_cfg, best_t)) => {
                let tie = (t - best_t).abs() <= 0.001 * best_t.max(1e-9);
                if tie {
                    cfg.executor_mem_mb < best_cfg.executor_mem_mb
                } else {
                    t < *best_t
                }
            }
        };
        if better {
            best = Some((cfg, t));
        }
    }
    best.expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ClusterConfig, SparkConfig) {
        (ClusterConfig::paper_cluster(), SparkConfig::paper_config())
    }

    #[test]
    fn hybrid_beats_full_everywhere() {
        let (cc, sc) = setup();
        for mb in [80, 800, 8_000, 80_000] {
            let h = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, mb, 5);
            let f = simulate_spark_iterative(&cc, &sc, SparkPlan::Full, mb, 5);
            assert!(h < f, "{mb} MB: hybrid {h} vs full {f}");
        }
    }

    #[test]
    fn startup_dominates_small_data() {
        // Table 5: XS on Spark ~25/59 s vs CP-only SystemML 6 s.
        let (cc, sc) = setup();
        let t = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, 80, 5);
        assert!(t > 18.0 && t < 45.0, "{t}");
    }

    #[test]
    fn m_scale_matches_paper_ballpark() {
        // Paper Table 5 at M (8 GB): hybrid 43 s.
        let (cc, sc) = setup();
        let t = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, 8_000, 5);
        assert!(t > 25.0 && t < 90.0, "{t}");
    }

    #[test]
    fn cache_sweet_spot_at_l() {
        // L (80 GB) fits in 198 GB aggregate cache; XL (800 GB) does not.
        let (cc, sc) = setup();
        let l = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, 80_000, 5);
        // Paper: 167 s.
        assert!(l > 80.0 && l < 400.0, "{l}");
        let xl = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, 800_000, 5);
        // Paper: 10119 s — every pass re-reads from disk.
        assert!(xl > 5_000.0 && xl < 20_000.0, "{xl}");
        assert!(xl > 20.0 * l);
    }

    #[test]
    fn executor_sizing_finds_cache_threshold() {
        // 80 GB dataset: executors must hold >= 80 GB aggregate storage
        // (0.6 x 6 x mem): 24 GB executors (86 GB storage) suffice; the
        // recommender must not pick 8 GB (no caching) nor over-provision
        // to 55 GB.
        let (cc, sc) = setup();
        let candidates = [8 * 1024, 16 * 1024, 24 * 1024, 55 * 1024];
        let (cfg, t) =
            recommend_executor_memory(&cc, &sc, SparkPlan::Hybrid, 80_000, 5, &candidates);
        assert_eq!(
            cfg.executor_mem_mb,
            24 * 1024,
            "picked {} ({t} s)",
            cfg.executor_mem_mb
        );
        let (cfg_small, t_small) =
            recommend_executor_memory(&cc, &sc, SparkPlan::Hybrid, 80_000, 5, &[8 * 1024]);
        assert_eq!(cfg_small.executor_mem_mb, 8 * 1024);
        assert!(t < t_small);
    }

    #[test]
    fn executor_sizing_small_data_picks_minimum() {
        let (cc, sc) = setup();
        let candidates = [4 * 1024, 16 * 1024, 55 * 1024];
        let (cfg, _) = recommend_executor_memory(&cc, &sc, SparkPlan::Hybrid, 800, 5, &candidates);
        assert_eq!(cfg.executor_mem_mb, 4 * 1024);
    }

    #[test]
    fn disk_bound_passes_do_not_scale_with_slots() {
        // Doubling executor cores must not change disk-pass time.
        let (cc, sc) = setup();
        let mut sc2 = sc.clone();
        sc2.cores_per_executor *= 2;
        let a = simulate_spark_iterative(&cc, &sc, SparkPlan::Hybrid, 800_000, 5);
        let b = simulate_spark_iterative(&cc, &sc2, SparkPlan::Hybrid, 800_000, 5);
        assert_eq!(a, b);
    }
}

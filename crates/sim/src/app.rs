//! Single-application execution simulation.
//!
//! The simulator interprets the statement-block hierarchy directly,
//! mirroring SystemML's runtime: every generic block is (re)compiled with
//! the *actual* variable sizes right before execution (dynamic
//! recompilation semantics), timed with the measured model (analytic
//! phases + buffer-pool evictions + seeded jitter), and — when runtime
//! adaptation is enabled — blocks that were initially marked unknown and
//! still compile to MR jobs trigger the §4 re-optimization/migration
//! loop.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reml_cluster::ClusterConfig;
use reml_compiler::build::Env;
use reml_compiler::pipeline::{
    compile, compile_block_with_env, fold_predicate_with_env, propagate_blocks_env, AnalyzedProgram,
};
use reml_compiler::{CompileConfig, CompileError};
use reml_cost::{CostBreakdown, CostModel, VarStates};
use reml_lang::{BlockId, StatementBlock, StatementBlockKind};
use reml_matrix::MatrixCharacteristics;
use reml_optimizer::{decide_adaptation, decide_recovery, ResourceConfig, ResourceOptimizer};
use reml_runtime::instructions::OpCode;
use reml_runtime::program::RtBlock;
use reml_runtime::value::Operand;
use reml_runtime::Instruction;

use crate::causal::{Bucket, CausalKind, CausalTrace};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, TraceEvent, TracedEvent};
use crate::shadow::ShadowPool;

/// Data-dependent facts the simulator resolves at "runtime" — the values
/// the compiler could not know statically.
#[derive(Debug, Clone)]
pub struct SimFacts {
    /// Actual column count of `table()` outputs (number of classes/bins).
    pub table_cols: u64,
    /// Iterations assumed for loops without a static bound (inner
    /// line-search loops converge in a few steps).
    pub default_inner_iterations: u64,
    /// Local-disk write bandwidth for buffer-pool evictions, MB/s.
    pub local_disk_write_mbs: f64,
    /// Local-disk read bandwidth for buffer-pool restores, MB/s.
    pub local_disk_read_mbs: f64,
    /// Maximum relative jitter applied to MR-job times (deterministic,
    /// seeded).
    pub jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for SimFacts {
    fn default() -> Self {
        SimFacts {
            table_cols: 2,
            default_inner_iterations: 3,
            local_disk_write_mbs: 120.0,
            local_disk_read_mbs: 180.0,
            jitter: 0.10,
            seed: 42,
        }
    }
}

/// Per-application simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Initial resource configuration (from the optimizer or a baseline).
    pub resources: ResourceConfig,
    /// Enable §4 runtime resource adaptation.
    pub reopt: bool,
    /// Runtime facts.
    pub facts: SimFacts,
    /// Fraction of MR slots available to this application (1.0 = idle
    /// cluster); models multi-tenant load for utilization-aware
    /// adaptation (§6).
    pub slot_availability: f64,
    /// Deterministic fault schedule ([`FaultPlan::none`] = benign run).
    pub faults: FaultPlan,
}

impl SimConfig {
    /// Static configuration on an idle cluster.
    pub fn fixed(resources: ResourceConfig) -> Self {
        SimConfig {
            resources,
            reopt: false,
            facts: SimFacts::default(),
            slot_availability: 1.0,
            faults: FaultPlan::none(),
        }
    }
}

/// Measured outcome of one application.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// End-to-end measured time, seconds (excluding initial optimizer
    /// overhead, which the caller adds).
    pub elapsed_s: f64,
    /// IO component.
    pub io_s: f64,
    /// Compute component.
    pub compute_s: f64,
    /// Latency component (job/task/container).
    pub latency_s: f64,
    /// Shuffle component.
    pub shuffle_s: f64,
    /// Buffer-pool eviction/restore component.
    pub eviction_s: f64,
    /// MR jobs executed.
    pub mr_jobs: u64,
    /// AM migrations performed.
    pub migrations: u32,
    /// Dynamic recompilations (per-block compiles at runtime).
    pub recompilations: u64,
    /// Resources at program end.
    pub final_resources: ResourceConfig,
    /// One entry per runtime re-optimization decision (§4 trace).
    pub adaptations: Vec<AdaptationEvent>,
    /// AM restarts after injected kills.
    pub recoveries: u32,
    /// Task containers re-queued after preemptions/node losses.
    pub task_retries: u64,
    /// Faults injected from the plan.
    pub faults_injected: u64,
    /// Seconds of the components above attributable to injected faults
    /// (re-execution, backoff, restarts) — informational; already
    /// included in `elapsed_s`.
    pub fault_rework_s: f64,
    /// Structured fault/recovery/adaptation trace (the replay contract).
    pub events: Vec<TracedEvent>,
    /// Causal event DAG: every charged second as a happens-before node
    /// (the `reml_insight` attribution substrate).
    pub causal: CausalTrace,
}

/// Trace record of one runtime re-optimization decision.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct AdaptationEvent {
    /// Statement block that triggered re-optimization.
    pub block: usize,
    /// Whether the AM migrated.
    pub migrated: bool,
    /// Globally optimal CP heap found, MB.
    pub global_cp_mb: u64,
    /// Estimated benefit ΔC, seconds.
    pub delta_cost_s: f64,
    /// Estimated migration cost C_M, seconds.
    pub migration_cost_s: f64,
}

/// The execution simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Cluster description.
    pub cluster: ClusterConfig,
}

impl Simulator {
    /// Simulator over a cluster.
    pub fn new(cluster: ClusterConfig) -> Self {
        Simulator { cluster }
    }

    /// Run one application end to end.
    ///
    /// `base` supplies params and input metadata (heap fields ignored).
    pub fn run_app(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        sim: &SimConfig,
    ) -> Result<AppOutcome, CompileError> {
        // Initial compile at the initial resources: recompile markers and
        // loop-iteration hints.
        let initial_cfg = self.config_for(base, &sim.resources, None);
        let initial = compile(analyzed, &initial_cfg)?;
        let mut marked: HashSet<usize> = HashSet::new();
        let mut hints: std::collections::HashMap<usize, u64> = Default::default();
        collect_markers(&initial.runtime.blocks, &mut marked, &mut hints);

        let mut state = SimState {
            sim: self,
            analyzed,
            base,
            facts: sim.facts.clone(),
            reopt: sim.reopt,
            resources: sim.resources.clone(),
            cost_model: CostModel::with_slot_availability(
                self.cluster.clone(),
                sim.slot_availability,
            ),
            env: Env::new(),
            var_states: VarStates::new(),
            pool: ShadowPool::new(
                self.cluster.budget_mb_for_heap(sim.resources.cp_heap_mb) * 1024 * 1024,
            ),
            rng: StdRng::seed_from_u64(sim.facts.seed),
            marked,
            hints,
            adapted: HashSet::new(),
            injector: FaultInjector::new(
                sim.faults.clone(),
                self.cluster.clone(),
                sim.resources.cp_heap_mb,
            ),
            outcome: AppOutcome {
                elapsed_s: 0.0,
                io_s: 0.0,
                compute_s: 0.0,
                latency_s: 0.0,
                shuffle_s: 0.0,
                eviction_s: 0.0,
                mr_jobs: 0,
                migrations: 0,
                recompilations: 0,
                final_resources: sim.resources.clone(),
                adaptations: Vec::new(),
                recoveries: 0,
                task_retries: 0,
                faults_injected: 0,
                fault_rework_s: 0.0,
                events: Vec::new(),
                causal: CausalTrace::new(),
            },
            current_block: None,
        };
        // Application start: CP AM container allocation.
        state.charge(
            Comp::Latency,
            Bucket::SchedulingDelay,
            CausalKind::Container,
            "am.alloc",
            self.cluster.container_alloc_latency_s,
        );
        state.sync_trace_clock();
        let _app_span = reml_trace::span!(
            "sim.app",
            cp_heap_mb = sim.resources.cp_heap_mb,
            blocks = analyzed.blocks.len()
        );
        let t0 = state.now();
        state.injector.record(
            t0,
            TraceEvent::AppStart {
                cp_heap_mb: sim.resources.cp_heap_mb,
            },
        );
        state.sim_blocks(&analyzed.blocks)?;
        let mut injector = state.injector;
        let mut outcome = state.outcome;
        outcome.final_resources = state.resources;
        outcome.task_retries = injector.task_retries;
        outcome.faults_injected = injector.faults_injected;
        outcome.elapsed_s = outcome.io_s
            + outcome.compute_s
            + outcome.latency_s
            + outcome.shuffle_s
            + outcome.eviction_s;
        if let Some(t) = reml_trace::sim_time() {
            t.set_seconds(outcome.elapsed_s);
        }
        injector.record(
            outcome.elapsed_s,
            TraceEvent::Outcome {
                elapsed_s: outcome.elapsed_s,
                mr_jobs: outcome.mr_jobs,
                migrations: outcome.migrations,
                recoveries: outcome.recoveries,
                task_retries: outcome.task_retries,
                recompilations: outcome.recompilations,
                faults_injected: outcome.faults_injected,
                final_cp_mb: outcome.final_resources.cp_heap_mb,
            },
        );
        outcome.events = injector.events;
        Ok(outcome)
    }

    fn config_for(
        &self,
        base: &CompileConfig,
        resources: &ResourceConfig,
        table_cols_hint: Option<u64>,
    ) -> CompileConfig {
        let mut cfg = base.clone();
        cfg.cp_heap_mb = resources.cp_heap_mb;
        cfg.mr_heap = resources.mr_heap.clone();
        cfg.table_cols_hint = table_cols_hint;
        cfg
    }
}

struct SimState<'a> {
    sim: &'a Simulator,
    analyzed: &'a AnalyzedProgram,
    base: &'a CompileConfig,
    facts: SimFacts,
    reopt: bool,
    resources: ResourceConfig,
    cost_model: CostModel,
    env: Env,
    var_states: VarStates,
    pool: ShadowPool,
    rng: StdRng,
    marked: HashSet<usize>,
    hints: std::collections::HashMap<usize, u64>,
    adapted: HashSet<usize>,
    injector: FaultInjector,
    outcome: AppOutcome,
    /// Statement block currently executing (for causal-node attribution).
    current_block: Option<usize>,
}

/// Which [`AppOutcome`] component a charge lands in.
#[derive(Debug, Clone, Copy)]
enum Comp {
    Io,
    Compute,
    Latency,
    Shuffle,
    Eviction,
}

/// Flat time cost of evaluating a predicate (scalar CP work).
const PREDICATE_COST_S: f64 = 1e-4;

impl<'a> SimState<'a> {
    fn current_cfg(&self) -> CompileConfig {
        self.sim
            .config_for(self.base, &self.resources, Some(self.facts.table_cols))
    }

    /// Simulated elapsed time so far (trace timestamps).
    fn now(&self) -> f64 {
        self.outcome.io_s
            + self.outcome.compute_s
            + self.outcome.latency_s
            + self.outcome.shuffle_s
            + self.outcome.eviction_s
    }

    /// Advance the global trace recorder's virtual clock (when one is
    /// installed on sim time) to the current simulated timestamp, so span
    /// begin/end records carry meaningful — and reproducible — times.
    fn sync_trace_clock(&self) {
        if let Some(t) = reml_trace::sim_time() {
            t.set_seconds(self.now());
        }
    }

    /// Charge serial time to one outcome component and append the
    /// matching causal node. Zero charges are dropped (no node).
    fn charge(&mut self, comp: Comp, bucket: Bucket, kind: CausalKind, label: &str, secs: f64) {
        self.charge_par(comp, bucket, kind, label, secs, 1);
    }

    /// [`Self::charge`] for work running at parallel `width`: the node's
    /// duration is `secs` of elapsed time, its serialized work
    /// `secs × width`.
    fn charge_par(
        &mut self,
        comp: Comp,
        bucket: Bucket,
        kind: CausalKind,
        label: &str,
        secs: f64,
        width: u64,
    ) {
        if secs <= 0.0 {
            return;
        }
        let start = self.now();
        match comp {
            Comp::Io => self.outcome.io_s += secs,
            Comp::Compute => self.outcome.compute_s += secs,
            Comp::Latency => self.outcome.latency_s += secs,
            Comp::Shuffle => self.outcome.shuffle_s += secs,
            Comp::Eviction => self.outcome.eviction_s += secs,
        }
        let width = width.max(1);
        self.outcome.causal.push(
            kind,
            label,
            self.current_block,
            bucket,
            start,
            start + secs,
            secs * width as f64,
            width,
        );
    }

    /// Append a zero-duration recompilation marker node (a DAG vertex
    /// for the happens-before edge; the decision overhead, when any, is
    /// charged separately).
    fn mark_recompile(&mut self, label: &str) {
        let t = self.now();
        self.outcome.causal.push(
            CausalKind::Recompilation,
            label,
            self.current_block,
            Bucket::Recompilation,
            t,
            t,
            0.0,
            1,
        );
    }

    /// Charge a fraction of an MR job's component work as retry/rework
    /// (the re-executed share really runs again).
    fn charge_fault_rework(&mut self, frac: f64, cost: &CostBreakdown, label: &str) {
        self.charge(
            Comp::Io,
            Bucket::RetryRework,
            CausalKind::Fault,
            label,
            frac * cost.io_s,
        );
        self.charge(
            Comp::Compute,
            Bucket::RetryRework,
            CausalKind::Fault,
            label,
            frac * cost.compute_s,
        );
        self.charge(
            Comp::Shuffle,
            Bucket::RetryRework,
            CausalKind::Fault,
            label,
            frac * cost.shuffle_s,
        );
    }

    /// Flat charge for evaluating a control-flow predicate.
    fn charge_predicate(&mut self) {
        self.charge(
            Comp::Compute,
            Bucket::Compute,
            CausalKind::Cp,
            "predicate",
            PREDICATE_COST_S,
        );
    }

    fn sim_blocks(&mut self, blocks: &'a [StatementBlock]) -> Result<(), CompileError> {
        for block in blocks {
            match &block.kind {
                StatementBlockKind::Generic { .. } => self.sim_generic(block.id)?,
                StatementBlockKind::If {
                    pred,
                    then_blocks,
                    else_blocks,
                } => {
                    self.charge_predicate();
                    let konst = fold_predicate_with_env(
                        self.analyzed,
                        &self.current_cfg(),
                        pred,
                        &self.env,
                    )?;
                    match konst.and_then(|v| v.as_bool()) {
                        Some(true) => self.sim_blocks(then_blocks)?,
                        Some(false) => self.sim_blocks(else_blocks)?,
                        None => {
                            // Unknown predicate (typically a convergence
                            // check): execute the else branch, but merge
                            // the then branch's definitions into the
                            // environment so later compiles see them.
                            let mut then_env = self.env.clone();
                            propagate_blocks_env(
                                self.analyzed,
                                &self.current_cfg(),
                                then_blocks,
                                &mut then_env,
                            )?;
                            self.sim_blocks(else_blocks)?;
                            self.env =
                                reml_compiler::build::merge_env_branches(&then_env, &self.env);
                        }
                    }
                }
                StatementBlockKind::While { body, .. } => {
                    let iters = self
                        .hints
                        .get(&block.id.0)
                        .copied()
                        .unwrap_or(self.facts.default_inner_iterations)
                        .max(1);
                    for _ in 0..iters {
                        self.charge_predicate();
                        self.sim_blocks(body)?;
                    }
                    self.charge_predicate(); // final check
                }
                StatementBlockKind::For { var, body, .. } => {
                    let iters = self
                        .hints
                        .get(&block.id.0)
                        .copied()
                        .unwrap_or(self.facts.default_inner_iterations)
                        .max(1);
                    self.env
                        .insert(var.clone(), reml_compiler::build::VarInfo::scalar());
                    for _ in 0..iters {
                        self.sim_blocks(body)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn sim_generic(&mut self, id: BlockId) -> Result<(), CompileError> {
        self.current_block = Some(id.0);
        self.sync_trace_clock();
        let _block_span = reml_trace::span!("sim.block", block = id.0);
        // Counter samples at block granularity: memory pressure and RM
        // container population, so utilization lanes line up with the
        // buffer pool in the trace viewer. Block-boundary cadence keeps
        // the record volume far below any reasonable ring capacity.
        reml_trace::counter("sim.pool_resident_bytes", self.pool.resident_bytes() as f64);
        reml_trace::counter(
            "sim.live_containers",
            self.injector.rm.num_containers() as f64,
        );
        // Fault hook: statement-block boundary. A deferred (mid-job) AM
        // kill is processed here, and recompilation-triggered faults for
        // the upcoming recompile index fire now.
        let mut am_kill = self.injector.take_deferred_am_kill();
        let mut oom_watermark: Option<f64> = None;
        for kind in self
            .injector
            .take_recompile_faults(self.outcome.recompilations)
        {
            match kind {
                FaultKind::AmKill => am_kill = true,
                FaultKind::TaskOom { watermark_frac } => oom_watermark = Some(watermark_frac),
                _ => {}
            }
        }
        if am_kill {
            self.handle_am_kill(id)?;
        }

        // Dynamic recompilation: compile with actual sizes.
        let cfg = self.current_cfg();
        let mut probe_env = self.env.clone();
        let (instructions, _summary, _stats) =
            compile_block_with_env(self.analyzed, &cfg, id, &mut probe_env)?;
        self.outcome.recompilations += 1;
        self.mark_recompile("recompile");

        // Runtime adaptation trigger (§4.1): the block was initially
        // marked, recompilation produced MR jobs, and we have not adapted
        // at this block before.
        let has_mr = instructions.iter().any(Instruction::is_mr);
        reml_trace::event!("sim.recompile", block = id.0, has_mr = has_mr);
        if self.reopt && has_mr && self.marked.contains(&id.0) && !self.adapted.contains(&id.0) {
            self.adapted.insert(id.0);
            self.adapt(id)?;
        }

        // (Re)compile at the possibly-updated resources and execute.
        let cfg = self.current_cfg();
        let env_snapshot = oom_watermark.map(|_| self.env.clone());
        let (instructions, _summary, _stats) =
            compile_block_with_env(self.analyzed, &cfg, id, &mut self.env)?;
        let mr_heap = self.resources.mr_heap.for_block(id.0);
        let mut temps: Vec<String> = Vec::new();
        let attempt_start = self.now();
        let mut oomed = false;
        for instr in &instructions {
            if let Some(frac) = oom_watermark {
                if let Some((op, needed_mb)) = self.cp_oom_check(instr, frac) {
                    // OOM: the attempt's work so far is wasted; the block
                    // recompiles to an MR plan at the actual sizes.
                    let budget_mb = self
                        .sim
                        .cluster
                        .budget_mb_for_heap(self.resources.cp_heap_mb);
                    let wasted_s = self.now() - attempt_start;
                    let t = self.now();
                    self.injector.record(
                        t,
                        TraceEvent::Oom {
                            block: id.0,
                            op,
                            needed_mb,
                            budget_mb,
                            wasted_s,
                        },
                    );
                    self.outcome.fault_rework_s += wasted_s;
                    oomed = true;
                    break;
                }
            }
            self.time_instruction(instr, mr_heap);
            if let Instruction::Cp(cp) = instr {
                if let Some(out) = &cp.output {
                    if out.starts_with("_mVar") {
                        temps.push(out.clone());
                    }
                }
            }
        }
        if oomed {
            // Forced recompilation to a distributed plan: compile with a
            // minimal CP heap so every memory-sensitive operator goes MR,
            // then re-execute the whole block (the failed attempt's
            // charges stay — that work really happened).
            self.env = env_snapshot.expect("snapshot exists when watermark armed");
            let mut forced = self.current_cfg();
            forced.cp_heap_mb = self.sim.cluster.min_heap_mb();
            let (instructions, _summary, _stats) =
                compile_block_with_env(self.analyzed, &forced, id, &mut self.env)?;
            self.outcome.recompilations += 1;
            self.mark_recompile("oom.recompile");
            let mr_jobs = instructions.iter().filter(|i| i.is_mr()).count() as u64;
            let t = self.now();
            self.injector.record(
                t,
                TraceEvent::OomRecompile {
                    block: id.0,
                    mr_jobs,
                },
            );
            for instr in &instructions {
                self.time_instruction(instr, mr_heap);
                if let Instruction::Cp(cp) = instr {
                    if let Some(out) = &cp.output {
                        if out.starts_with("_mVar") {
                            temps.push(out.clone());
                        }
                    }
                }
            }
        }
        // Block-scope temporaries die at block end (rmvar semantics).
        for t in temps {
            self.pool.remove(&t);
        }
        self.sync_trace_clock();
        Ok(())
    }

    /// OOM watermark check: a CP instruction whose actual-size footprint
    /// (operands + output) exceeds `frac` of the CP budget fails.
    /// Returns `(opcode, needed_mb)` when it fires.
    fn cp_oom_check(&self, instr: &Instruction, frac: f64) -> Option<(String, u64)> {
        let patched = patch_unknowns(instr, &self.facts);
        let Instruction::Cp(cp) = &patched else {
            return None;
        };
        // Reads/writes stream block-wise; only computational operators
        // hold full operands in memory.
        if matches!(
            cp.opcode,
            OpCode::PersistentRead { .. } | OpCode::PersistentWrite { .. } | OpCode::Assign
        ) {
            return None;
        }
        let needed: u64 = cp
            .operand_mcs
            .iter()
            .chain(std::iter::once(&cp.output_mc))
            .filter(|mc| !mc.is_scalar())
            .map(|mc| mc.estimated_size_bytes().unwrap_or(0))
            .sum();
        let needed_mb = needed / (1024 * 1024);
        let budget_mb = self
            .sim
            .cluster
            .budget_mb_for_heap(self.resources.cp_heap_mb);
        if needed_mb as f64 > frac.clamp(0.0, 1.0) * budget_mb as f64 {
            let op = format!("{:?}", cp.opcode);
            let op = op.split([' ', '{', '(']).next().unwrap_or("").to_string();
            Some((op, needed_mb))
        } else {
            None
        }
    }

    /// AM kill at a statement-block boundary: charge state
    /// restoration/regeneration and the restart latency, then run the
    /// §4-style recovery decision on the restarted AM.
    fn handle_am_kill(&mut self, id: BlockId) -> Result<(), CompileError> {
        let retry = self.injector.plan.retry;
        let mb = 1024.0 * 1024.0;
        // Clean (HDFS-backed) resident state re-reads from HDFS; dirty
        // (never-exported) state is regenerated by lineage and spilled.
        let clean_mb = self.pool.clean_resident_bytes() as f64 / mb;
        let dirty_bytes = self.pool.dirty_bytes();
        let dirty_mb = dirty_bytes as f64 / mb;
        let restore_s = clean_mb / self.sim.cluster.hdfs_read_mbs;
        let rework_s = dirty_mb / self.facts.local_disk_write_mbs;
        let restart_latency_s = retry.backoff_s + self.sim.cluster.container_alloc_latency_s;
        self.charge(
            Comp::Io,
            Bucket::RetryRework,
            CausalKind::Fault,
            "am.restore",
            restore_s,
        );
        self.charge(
            Comp::Compute,
            Bucket::RetryRework,
            CausalKind::Fault,
            "am.rework",
            rework_s,
        );
        self.charge(
            Comp::Latency,
            Bucket::SchedulingDelay,
            CausalKind::Fault,
            "am.restart",
            restart_latency_s,
        );
        self.outcome.fault_rework_s += restore_s + rework_s + restart_latency_s;
        self.outcome.recoveries += 1;
        let t = self.now();
        self.injector.record(
            t,
            TraceEvent::AmKill {
                block: id.0,
                restart_latency_s,
                lost_dirty_mb: dirty_bytes / (1024 * 1024),
                rework_s,
                restore_s,
            },
        );
        if self.reopt {
            // The restart is paid either way, so the recovery decision
            // only weighs the re-allocation premium (§4 with C_M reduced).
            let optimizer = ResourceOptimizer::new(CostModel::with_slot_availability(
                self.sim.cluster.clone(),
                self.cost_model.slot_availability,
            ));
            let mut base = self.base.clone();
            base.table_cols_hint = Some(self.facts.table_cols);
            let decision = decide_recovery(
                &optimizer,
                self.analyzed,
                &base,
                id,
                &self.env,
                self.resources.cp_heap_mb,
            )?;
            self.charge(
                Comp::Compute,
                Bucket::Recompilation,
                CausalKind::Recompilation,
                "recovery.reopt",
                decision_opt_overhead_s(),
            );
            let t = self.now();
            self.injector.record(
                t,
                TraceEvent::Recovery {
                    block: id.0,
                    migrated: decision.migrate,
                    target_cp_mb: decision.target.cp_heap_mb,
                    delta_cost_s: decision.delta_cost_s,
                    premium_s: decision.migration_cost_s,
                },
            );
            if decision.migrate {
                self.resources = decision.target.clone();
                self.pool.set_capacity(
                    self.sim
                        .cluster
                        .budget_mb_for_heap(self.resources.cp_heap_mb)
                        * 1024
                        * 1024,
                );
                self.outcome.migrations += 1;
            } else {
                self.resources.mr_heap = decision.target.mr_heap.clone();
            }
        }
        self.injector.restart_am(self.resources.cp_heap_mb);
        Ok(())
    }

    /// Runtime re-optimization + migration decision.
    fn adapt(&mut self, id: BlockId) -> Result<(), CompileError> {
        // The re-optimizer sees the current cluster utilization — the §6
        // utilization-aware extension.
        let optimizer = ResourceOptimizer::new(CostModel::with_slot_availability(
            self.sim.cluster.clone(),
            self.cost_model.slot_availability,
        ));
        let mut base = self.base.clone();
        base.table_cols_hint = Some(self.facts.table_cols);
        let decision = decide_adaptation(
            &optimizer,
            self.analyzed,
            &base,
            id,
            &self.env,
            self.resources.cp_heap_mb,
            self.pool.dirty_bytes(),
        )?;
        // Optimizer overhead is part of measured time.
        self.charge(
            Comp::Compute,
            Bucket::Recompilation,
            CausalKind::Recompilation,
            "adapt.reopt",
            decision_opt_overhead_s(),
        );
        let ev = AdaptationEvent {
            block: id.0,
            migrated: decision.migrate,
            global_cp_mb: decision.global.0.cp_heap_mb,
            delta_cost_s: decision.delta_cost_s,
            migration_cost_s: decision.migration_cost_s,
        };
        let t = self.now();
        self.injector
            .record(t, TraceEvent::Adaptation { ev: ev.clone() });
        self.outcome.adaptations.push(ev);
        if decision.migrate {
            let migration = reml_optimizer::adapt::estimate_migration_cost(
                &self.sim.cluster,
                self.pool.dirty_bytes(),
            );
            self.charge(
                Comp::Io,
                Bucket::Io,
                CausalKind::Migration,
                "migrate.export",
                migration.io_s,
            );
            self.charge(
                Comp::Latency,
                Bucket::SchedulingDelay,
                CausalKind::Migration,
                "migrate.alloc",
                migration.latency_s,
            );
            self.outcome.migrations += 1;
            self.resources = decision.target.clone();
            self.pool.set_capacity(
                self.sim
                    .cluster
                    .budget_mb_for_heap(self.resources.cp_heap_mb)
                    * 1024
                    * 1024,
            );
            // Dirty variables were exported; they are clean now.
            self.pool.mark_all_clean();
            // Keep the RM mirror honest: the AM moved to a new container.
            self.injector.restart_am(self.resources.cp_heap_mb);
            let t = self.now();
            self.injector.record(
                t,
                TraceEvent::Migration {
                    block: id.0,
                    io_s: migration.io_s,
                    latency_s: migration.latency_s,
                    to_cp_mb: self.resources.cp_heap_mb,
                },
            );
        } else {
            // Apply the locally optimal MR configuration in place.
            self.resources.mr_heap = decision.target.mr_heap.clone();
        }
        Ok(())
    }

    fn time_instruction(&mut self, instr: &Instruction, mr_heap_mb: u64) {
        let patched = patch_unknowns(instr, &self.facts);
        let cost = self.cost_model.cost_instructions(
            std::slice::from_ref(&patched),
            // The simulator models evictions itself via the shadow pool;
            // disable the cost model's partial eviction accounting here.
            u64::MAX / (2 * 1024 * 1024),
            mr_heap_mb,
            &mut self.var_states,
        );
        // Causal identity of this instruction's work: a distributed job
        // runs `width` tasks in parallel (serialized work = duration ×
        // width); CP work is serial.
        let (kind, label, width, input_mb) = match &patched {
            Instruction::MrJob(job) => {
                let input_mb = job
                    .hdfs_inputs
                    .iter()
                    .map(|(_, mc)| mc.estimated_size_bytes().unwrap_or(0))
                    .sum::<u64>()
                    / (1024 * 1024);
                let width = (self.sim.cluster.num_splits(input_mb) as u64)
                    .min(self.sim.cluster.total_slots(mr_heap_mb) as u64)
                    .max(1);
                (CausalKind::MrJob, "mr.job".to_string(), width, input_mb)
            }
            Instruction::Cp(cp) => (CausalKind::Cp, opcode_tag(&cp.opcode), 1, 0),
        };
        self.charge_par(Comp::Io, Bucket::Io, kind, &label, cost.io_s, width);
        self.charge_par(
            Comp::Compute,
            Bucket::Compute,
            kind,
            &label,
            cost.compute_s,
            width,
        );
        self.charge_par(
            Comp::Shuffle,
            Bucket::Shuffle,
            kind,
            &label,
            cost.shuffle_s,
            width,
        );
        // Measured jitter on MR jobs.
        if cost.mr_jobs > 0 {
            let jitter = 1.0 + self.rng.gen_range(0.0..self.facts.jitter.max(1e-9));
            self.charge(
                Comp::Latency,
                Bucket::QueueWait,
                kind,
                &label,
                cost.latency_s * jitter,
            );
            let first = self.outcome.mr_jobs;
            self.outcome.mr_jobs += cost.mr_jobs;
            // Fault hook: faults scheduled on any of this instruction's
            // job indices fire now, in job order.
            let fired = self.injector.take_mr_faults(first, cost.mr_jobs);
            for (job_idx, fault_kind) in fired {
                self.apply_mr_fault(job_idx, fault_kind, &cost, input_mb, mr_heap_mb);
            }
        } else {
            self.charge(
                Comp::Latency,
                Bucket::SchedulingDelay,
                kind,
                &label,
                cost.latency_s,
            );
        }
        // Shadow buffer pool: evictions/restores the cost model ignores.
        match &patched {
            Instruction::Cp(cp) => {
                if let OpCode::PersistentWrite { .. } = &cp.opcode {
                    if let Some(v) = cp.operands.first().and_then(|o| o.as_var()) {
                        self.pool.mark_clean(v);
                    }
                }
                let before_evicted = self.pool.bytes_evicted;
                let mut restored_bytes = 0u64;
                for (operand, mc) in cp.operands.iter().zip(&cp.operand_mcs) {
                    if let Operand::Var(name) = operand {
                        if !mc.is_scalar() {
                            restored_bytes += self.pool.touch(name);
                        }
                    }
                }
                self.charge(
                    Comp::Eviction,
                    Bucket::Eviction,
                    CausalKind::Cp,
                    "pool.restore",
                    restored_bytes as f64 / (1024.0 * 1024.0) / self.facts.local_disk_read_mbs,
                );
                if let Some(out) = &cp.output {
                    if !cp.output_mc.is_scalar() {
                        let bytes = cp.output_mc.estimated_size_bytes().unwrap_or(0);
                        // Reads are clean; renames inherit the source's
                        // dirty state; computed outputs are dirty.
                        let dirty = match &cp.opcode {
                            OpCode::PersistentRead { .. } => false,
                            OpCode::Assign => cp
                                .operands
                                .first()
                                .and_then(|o| o.as_var())
                                .and_then(|v| self.pool.is_dirty(v))
                                .unwrap_or(true),
                            _ => true,
                        };
                        self.pool.put(out, bytes, dirty);
                    }
                }
                let evicted_delta = self.pool.bytes_evicted - before_evicted;
                self.charge(
                    Comp::Eviction,
                    Bucket::Eviction,
                    CausalKind::Cp,
                    "pool.evict",
                    evicted_delta as f64 / (1024.0 * 1024.0) / self.facts.local_disk_write_mbs,
                );
            }
            Instruction::MrJob(job) => {
                for (name, _) in job.hdfs_inputs.iter().chain(&job.broadcast_inputs) {
                    self.pool.mark_clean(name);
                }
            }
        }
    }

    /// Charge one MR-scoped fault against the job it hit. `cost` is the
    /// breakdown of the instruction that spawned the job; re-executed
    /// shares are charged proportionally to its components (YARN task
    /// re-execution: the work really runs twice).
    fn apply_mr_fault(
        &mut self,
        job_idx: u64,
        kind: FaultKind,
        cost: &CostBreakdown,
        input_mb: u64,
        mr_heap_mb: u64,
    ) {
        let retry = self.injector.plan.retry;
        let requeue_delay_s = retry.backoff_s + self.sim.cluster.container_alloc_latency_s;
        match kind {
            FaultKind::Straggler { factor } => {
                let slowdown_s = (factor - 1.0).max(0.0) * cost.latency_s;
                self.charge(
                    Comp::Latency,
                    Bucket::StragglerWait,
                    CausalKind::Fault,
                    "fault.straggler",
                    slowdown_s,
                );
                self.outcome.fault_rework_s += slowdown_s;
                let t = self.now();
                self.injector.record(
                    t,
                    TraceEvent::Straggler {
                        job: job_idx,
                        factor,
                        slowdown_s,
                    },
                );
            }
            FaultKind::ContainerPreemption { fraction } => {
                let frac = fraction.clamp(0.0, 1.0);
                // Mirror the job's task containers through the RM: how
                // many it held, how many the preemption re-queued.
                let tasks = (self.sim.cluster.num_splits(input_mb) as u64)
                    .min(self.sim.cluster.total_slots(mr_heap_mb) as u64)
                    .max(1);
                let task_mem_mb = self.sim.cluster.container_mb_for_heap(mr_heap_mb);
                let (containers, requeued) =
                    self.injector.churn_job_containers(tasks, task_mem_mb, frac);
                let rework_s = frac * (cost.io_s + cost.compute_s + cost.shuffle_s);
                self.charge_fault_rework(frac, cost, "fault.preempt.rework");
                self.charge(
                    Comp::Latency,
                    Bucket::SchedulingDelay,
                    CausalKind::Fault,
                    "fault.preempt.requeue",
                    requeue_delay_s,
                );
                self.outcome.fault_rework_s += rework_s + requeue_delay_s;
                let t = self.now();
                self.injector.record(
                    t,
                    TraceEvent::Preemption {
                        job: job_idx,
                        containers,
                        requeued,
                        rework_s,
                        backoff_s: requeue_delay_s,
                    },
                );
            }
            FaultKind::NodeLoss { node } => {
                let node = node % self.sim.cluster.num_nodes.max(1);
                let active_before = self.injector.rm.active_nodes();
                if self.injector.rm.is_node_down(node) || active_before <= 1 {
                    // Already down (or it is the last node): nothing to
                    // kill; the spec still counts as fired.
                    return;
                }
                let killed = self.injector.rm.fail_node(node);
                // The lost node ran 1/active of the job's tasks; that
                // share re-executes on the survivors.
                let frac = 1.0 / active_before as f64;
                let rework_s = frac * (cost.io_s + cost.compute_s + cost.shuffle_s);
                self.charge_fault_rework(frac, cost, "fault.node_loss.rework");
                self.charge(
                    Comp::Latency,
                    Bucket::SchedulingDelay,
                    CausalKind::Fault,
                    "fault.node_loss.requeue",
                    requeue_delay_s,
                );
                self.outcome.fault_rework_s += rework_s + requeue_delay_s;
                // Capacity shrinks for the rest of the run: the §6 slot
                // availability scales by the surviving-node fraction.
                let avail = self.cost_model.slot_availability * (active_before - 1) as f64
                    / active_before as f64;
                self.cost_model =
                    CostModel::with_slot_availability(self.sim.cluster.clone(), avail);
                let t = self.now();
                self.injector.record(
                    t,
                    TraceEvent::NodeLoss {
                        job: job_idx,
                        node,
                        containers_lost: killed.len() as u64,
                        rework_s,
                        slot_availability: avail,
                    },
                );
            }
            // CP-scoped kinds never reach here (filtered by the
            // injector).
            FaultKind::AmKill | FaultKind::TaskOom { .. } => {}
        }
    }
}

/// Overhead charged for one runtime re-optimization (the paper reports
/// sub-second re-optimization; we charge a conservative constant).
fn decision_opt_overhead_s() -> f64 {
    0.5
}

/// Short opcode tag for causal-node labels (`MatMult { .. }` → "MatMult").
fn opcode_tag(op: &OpCode) -> String {
    let s = format!("{op:?}");
    s.split([' ', '{', '(']).next().unwrap_or("op").to_string()
}

/// Replace unknown characteristics in an instruction with runtime-actual
/// values: the only source of unknowns in the bundled programs is
/// `table()`, whose width is `facts.table_cols`.
fn patch_unknowns(instr: &Instruction, facts: &SimFacts) -> Instruction {
    let patch_mc = |mc: &MatrixCharacteristics, indicator: bool| -> MatrixCharacteristics {
        if mc.dims_known() && mc.nnz.is_some() {
            return *mc;
        }
        let rows = mc.rows.unwrap_or(facts.table_cols);
        let cols = mc.cols.unwrap_or(facts.table_cols);
        let nnz = mc.nnz.unwrap_or(if indicator {
            rows
        } else {
            rows.saturating_mul(cols)
        });
        MatrixCharacteristics {
            rows: Some(rows),
            cols: Some(cols),
            nnz: Some(nnz),
        }
    };
    match instr {
        Instruction::Cp(cp) => {
            let mut cp = cp.clone();
            let indicator = matches!(cp.opcode, OpCode::TableSeq);
            cp.operand_mcs = cp.operand_mcs.iter().map(|m| patch_mc(m, false)).collect();
            cp.output_mc = patch_mc(&cp.output_mc, indicator);
            Instruction::Cp(cp)
        }
        Instruction::MrJob(job) => {
            let mut job = job.clone();
            for (_, mc) in job
                .hdfs_inputs
                .iter_mut()
                .chain(job.broadcast_inputs.iter_mut())
            {
                *mc = patch_mc(mc, false);
            }
            for op in job.mappers.iter_mut().chain(job.reducers.iter_mut()) {
                let indicator = matches!(op.opcode, OpCode::TableSeq);
                op.operand_mcs = op.operand_mcs.iter().map(|m| patch_mc(m, false)).collect();
                op.output_mc = patch_mc(&op.output_mc, indicator);
            }
            for (_, mc) in job.outputs.iter_mut() {
                *mc = patch_mc(mc, false);
            }
            for mc in job.shuffle.iter_mut() {
                *mc = patch_mc(mc, false);
            }
            Instruction::MrJob(job)
        }
    }
}

/// Collect recompile markers and loop hints from a compiled program.
fn collect_markers(
    blocks: &[RtBlock],
    marked: &mut HashSet<usize>,
    hints: &mut std::collections::HashMap<usize, u64>,
) {
    for b in blocks {
        match b {
            RtBlock::Generic {
                source,
                requires_recompile,
                ..
            } => {
                if *requires_recompile {
                    marked.insert(source.0);
                }
            }
            RtBlock::If {
                then_blocks,
                else_blocks,
                ..
            } => {
                collect_markers(then_blocks, marked, hints);
                collect_markers(else_blocks, marked, hints);
            }
            RtBlock::While {
                source,
                body,
                max_iter_hint,
                ..
            } => {
                if let Some(h) = max_iter_hint {
                    hints.insert(source.0, *h);
                }
                collect_markers(body, marked, hints);
            }
            RtBlock::For {
                source,
                body,
                iterations_hint,
                ..
            } => {
                if let Some(h) = iterations_hint {
                    hints.insert(source.0, *h);
                }
                collect_markers(body, marked, hints);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_compiler::pipeline::analyze_program;
    use reml_compiler::MrHeapAssignment;
    use reml_scripts::{DataShape, Scenario};

    fn sim() -> Simulator {
        Simulator::new(ClusterConfig::paper_cluster())
    }

    fn setup(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
        cols: u64,
        sparsity: f64,
    ) -> (AnalyzedProgram, CompileConfig) {
        let shape = DataShape {
            scenario,
            cols,
            sparsity,
        };
        let cfg = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        (analyze_program(&script.source).unwrap(), cfg)
    }

    fn run(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
        cols: u64,
        sparsity: f64,
        resources: ResourceConfig,
        reopt: bool,
    ) -> AppOutcome {
        let (analyzed, base) = setup(script, scenario, cols, sparsity);
        let facts = SimFacts {
            table_cols: 5,
            ..SimFacts::default()
        };
        sim()
            .run_app(
                &analyzed,
                &base,
                &SimConfig {
                    resources,
                    reopt,
                    facts,
                    slot_availability: 1.0,
                    faults: FaultPlan::none(),
                },
            )
            .unwrap()
    }

    #[test]
    fn linreg_ds_small_data_fast_in_cp() {
        // XS data with a large CP heap: pure in-memory, no MR jobs.
        let out = run(
            &reml_scripts::linreg_ds(),
            Scenario::XS,
            100,
            1.0,
            ResourceConfig::uniform(8 * 1024, 2 * 1024),
            false,
        );
        assert_eq!(out.mr_jobs, 0);
        assert!(out.elapsed_s < 30.0, "{}", out.elapsed_s);
    }

    #[test]
    fn small_heap_on_medium_data_spawns_mr_jobs() {
        let out = run(
            &reml_scripts::linreg_ds(),
            Scenario::M,
            1000,
            1.0,
            ResourceConfig::uniform(512, 2 * 1024),
            false,
        );
        assert!(out.mr_jobs > 0);
        assert!(out.latency_s > 15.0);
    }

    #[test]
    fn cg_large_cp_beats_small_cp_on_medium_dense() {
        // The Figure 1 contrast, measured: CG with a big CP heap reads X
        // once; with a tiny heap it pays MR latency every iteration.
        let script = reml_scripts::linreg_cg();
        let small = run(
            &script,
            Scenario::M,
            1000,
            1.0,
            ResourceConfig::uniform(512, 2 * 1024),
            false,
        );
        let big = run(
            &script,
            Scenario::M,
            1000,
            1.0,
            ResourceConfig::uniform(16 * 1024, 2 * 1024),
            false,
        );
        assert!(
            big.elapsed_s < small.elapsed_s,
            "big {} vs small {}",
            big.elapsed_s,
            small.elapsed_s
        );
        assert_eq!(big.mr_jobs, 0);
    }

    #[test]
    fn ds_small_cp_beats_huge_cp_on_medium_dense1000() {
        // DS is compute-bound: distributed plans win (§5.2 Figure 7(a)).
        let script = reml_scripts::linreg_ds();
        let small = run(
            &script,
            Scenario::M,
            1000,
            1.0,
            ResourceConfig::uniform(512, 2 * 1024),
            false,
        );
        let huge = run(
            &script,
            Scenario::M,
            1000,
            1.0,
            ResourceConfig::uniform(53 * 1024, 2 * 1024),
            false,
        );
        assert!(
            small.elapsed_s < huge.elapsed_s,
            "small {} vs huge {}",
            small.elapsed_s,
            huge.elapsed_s
        );
    }

    #[test]
    fn eviction_overhead_appears_with_tight_pool() {
        // CG on M sparse data: a heap just big enough to force evictions
        // shows eviction time a larger heap avoids.
        let script = reml_scripts::linreg_cg();
        let tight = run(
            &script,
            Scenario::M,
            1000,
            0.01,
            ResourceConfig::uniform(512, 2 * 1024),
            false,
        );
        let roomy = run(
            &script,
            Scenario::M,
            1000,
            0.01,
            ResourceConfig::uniform(8 * 1024, 2 * 1024),
            false,
        );
        assert!(tight.eviction_s >= roomy.eviction_s);
    }

    #[test]
    fn mlogreg_reopt_migrates_and_improves() {
        // MLogreg on M data starting at the minimum CP heap (what the
        // initial optimizer picks under unknowns): adaptation should
        // migrate to a larger AM and beat the non-adaptive run
        // (Figure 15).
        let script = reml_scripts::mlogreg();
        let no_adapt = run(
            &script,
            Scenario::M,
            100,
            1.0,
            ResourceConfig::uniform(512, 512),
            false,
        );
        let adapt = run(
            &script,
            Scenario::M,
            100,
            1.0,
            ResourceConfig::uniform(512, 512),
            true,
        );
        assert!(adapt.migrations >= 1, "migrations {}", adapt.migrations);
        assert!(adapt.migrations <= 2, "migrations {}", adapt.migrations);
        assert!(
            adapt.elapsed_s < no_adapt.elapsed_s,
            "adapt {} vs static {}",
            adapt.elapsed_s,
            no_adapt.elapsed_s
        );
        assert!(adapt.final_resources.cp_heap_mb > 512);
    }

    #[test]
    fn loaded_cluster_adaptation_prefers_single_node() {
        // §6 utilization-aware adaptation: with 90% of the MR slots taken
        // by other tenants, distributed plans lose their parallelism and
        // re-optimization should fall back to (migrate toward) a large
        // single-node CP configuration at least as eagerly as on an idle
        // cluster.
        let script = reml_scripts::mlogreg();
        let (analyzed, base) = setup(&script, Scenario::M, 100, 1.0);
        let facts = SimFacts {
            table_cols: 5,
            ..SimFacts::default()
        };
        let run = |avail: f64| {
            sim()
                .run_app(
                    &analyzed,
                    &base,
                    &SimConfig {
                        resources: ResourceConfig::uniform(512, 512),
                        reopt: true,
                        facts: facts.clone(),
                        slot_availability: avail,
                        faults: FaultPlan::none(),
                    },
                )
                .unwrap()
        };
        let idle = run(1.0);
        let loaded = run(0.1);
        assert!(loaded.migrations >= idle.migrations.min(1));
        // On the loaded cluster the chosen CP is at least as large.
        assert!(loaded.final_resources.cp_heap_mb >= idle.final_resources.cp_heap_mb.min(8192));
        // And the loaded run's MR work is no higher than the idle run's.
        assert!(loaded.mr_jobs <= idle.mr_jobs.max(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let script = reml_scripts::l2svm();
        let a = run(
            &script,
            Scenario::S,
            1000,
            1.0,
            ResourceConfig::uniform(2 * 1024, 2 * 1024),
            false,
        );
        let b = run(
            &script,
            Scenario::S,
            1000,
            1.0,
            ResourceConfig::uniform(2 * 1024, 2 * 1024),
            false,
        );
        assert_eq!(a.elapsed_s, b.elapsed_s);
        assert_eq!(a.mr_jobs, b.mr_jobs);
    }

    #[test]
    fn patch_unknowns_fills_table_width() {
        use reml_runtime::instructions::CpInstruction;
        let facts = SimFacts {
            table_cols: 7,
            ..SimFacts::default()
        };
        let instr = Instruction::Cp(CpInstruction {
            opcode: OpCode::TableSeq,
            operands: vec![Operand::var("y")],
            output: Some("Y".into()),
            operand_mcs: vec![MatrixCharacteristics::dense(100, 1)],
            output_mc: MatrixCharacteristics {
                rows: Some(100),
                cols: None,
                nnz: Some(100),
            },
            bound_bytes: None,
        });
        let Instruction::Cp(patched) = patch_unknowns(&instr, &facts) else {
            panic!()
        };
        assert_eq!(patched.output_mc.cols, Some(7));
        // Indicator output keeps its one-per-row nnz.
        assert_eq!(patched.output_mc.nnz, Some(100));
    }

    #[test]
    fn patch_unknowns_keeps_known_mcs() {
        use reml_runtime::instructions::CpInstruction;
        let facts = SimFacts::default();
        let mc = MatrixCharacteristics::known(10, 20, 50);
        let instr = Instruction::Cp(CpInstruction {
            opcode: OpCode::Transpose,
            operands: vec![Operand::var("x")],
            output: Some("t".into()),
            operand_mcs: vec![mc],
            output_mc: mc.transpose(),
            bound_bytes: None,
        });
        let Instruction::Cp(patched) = patch_unknowns(&instr, &facts) else {
            panic!()
        };
        assert_eq!(patched.operand_mcs[0], mc);
        assert_eq!(patched.output_mc, mc.transpose());
    }

    #[test]
    fn collect_markers_walks_nested_blocks() {
        use reml_runtime::program::Predicate;
        let blocks = vec![RtBlock::While {
            source: reml_lang::BlockId(0),
            pred: Predicate {
                instructions: vec![],
                result_var: "p".into(),
            },
            body: vec![RtBlock::Generic {
                source: reml_lang::BlockId(1),
                instructions: vec![],
                requires_recompile: true,
            }],
            max_iter_hint: Some(4),
        }];
        let mut marked = HashSet::new();
        let mut hints = std::collections::HashMap::new();
        collect_markers(&blocks, &mut marked, &mut hints);
        assert!(marked.contains(&1));
        assert_eq!(hints.get(&0), Some(&4));
    }

    #[test]
    fn iterative_scripts_scale_with_iterations() {
        // L2SVM runs maxiter outer iterations: more work than LinregDS on
        // the same data at the same (large) memory.
        let res = ResourceConfig::uniform(16 * 1024, 2 * 1024);
        let ds = run(
            &reml_scripts::linreg_ds(),
            Scenario::S,
            100,
            1.0,
            res.clone(),
            false,
        );
        let svm = run(&reml_scripts::l2svm(), Scenario::S, 100, 1.0, res, false);
        assert!(svm.recompilations > ds.recompilations);
    }
}

//! The core resource optimizer: Algorithm 1 with pruning and memoization,
//! enumerated through a what-if compilation session (plan caching).

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use reml_compiler::build::Env;
use reml_compiler::pipeline::{AnalyzedProgram, CompiledProgram};
use reml_compiler::session::WhatIfSession;
use reml_compiler::{CompileConfig, CompileError};
use reml_cost::CostModel;

use crate::cache::{improves, stage_agg, stage_baseline, stage_enum_block, CostMemo};
use crate::grid::GridStrategy;
use crate::provenance::{build_ledger, DecisionLedger};
use crate::resources::ResourceConfig;

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Grid strategy for the CP dimension.
    pub cp_grid: GridStrategy,
    /// Grid strategy for the MR dimension.
    pub mr_grid: GridStrategy,
    /// Prune blocks without MR jobs (§3.4, "blocks of small operations").
    pub prune_small: bool,
    /// Prune blocks where all MR operators have unknown dimensions
    /// (§3.4, "blocks of unknowns").
    pub prune_unknown: bool,
    /// Optimization-time budget; enumeration stops when exceeded.
    pub time_budget: Option<Duration>,
    /// Worker threads for the parallel optimizer (1 = serial Algorithm 1).
    pub workers: usize,
    /// Serve what-if compilations from the session's breakpoint-keyed
    /// plan cache (§3.3 memoization). Disable to force a fresh
    /// compilation per grid point (the differential-testing baseline).
    pub plan_cache: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            cp_grid: GridStrategy::default_hybrid(),
            mr_grid: GridStrategy::default_hybrid(),
            prune_small: true,
            prune_unknown: true,
            time_budget: None,
            workers: 1,
            plan_cache: true,
        }
    }
}

/// Counters for the overhead experiments (Table 3, Figures 13/14/18).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct OptimizerStats {
    /// Generic-block compilations performed ("# Comp.").
    pub block_compilations: u64,
    /// Cost-model invocations ("# Cost."; whole-program costing counts as
    /// one invocation).
    pub cost_invocations: u64,
    /// Wall-clock optimization time.
    pub opt_time: Duration,
    /// Enumerated CP grid points.
    pub cp_points: usize,
    /// Enumerated MR grid points.
    pub mr_points: usize,
    /// Generic blocks before pruning, per CP point (first point recorded).
    pub blocks_total: usize,
    /// Generic blocks remaining after pruning (first CP point).
    pub blocks_remaining: usize,
    /// Whether the time budget cut enumeration short.
    pub budget_exhausted: bool,
    /// What-if compilations served from the session's plan/block caches.
    pub plan_cache_hits: u64,
    /// What-if compilations that missed the caches (actual compiles).
    pub plan_cache_misses: u64,
    /// Generic-block compilations avoided by cache hits (the work the
    /// session saved relative to a cache-bypass run).
    pub compilations_avoided: u64,
    /// CP grid points discarded before costing because their budget lies
    /// below the statically-proven minimum — no plan at those points can
    /// execute the program's forced-CP operators.
    pub cp_points_pruned_unsound: usize,
    /// The statically-proven minimum CP budget (MB) from the interval
    /// soundness analysis (`reml-sizebound`), when one exists.
    pub sound_min_cp_budget_mb: Option<f64>,
    /// Phase split of `opt_time` (Table 3's enumeration-vs-costing
    /// attribution): wall time enumerating/compiling grid points,
    /// seconds. Under the parallel optimizer this sums worker CPU time,
    /// so the phases can exceed the elapsed `opt_time`.
    pub enumerate_s: f64,
    /// Wall time inside cost-model executions, seconds.
    pub cost_s: f64,
    /// Wall time in grid pruning (the sizebound interval analysis plus
    /// grid filtering), seconds.
    pub prune_s: f64,
    /// Wall time in plan-cache bookkeeping (fingerprints, lookups,
    /// inserts), seconds.
    pub cache_s: f64,
}

impl OptimizerStats {
    /// Derive the enumerate/cost/cache phase columns from the shared
    /// stage accounting: `cost` and `cache` are measured directly;
    /// `enumerate` is stage time minus both (what-if compilation and
    /// grid bookkeeping).
    pub(crate) fn fill_phases(&mut self, stage_us: u64, cost_us: u64, cache_us: u64, prune_s: f64) {
        self.cost_s = cost_us as f64 / 1e6;
        self.cache_s = cache_us as f64 / 1e6;
        self.enumerate_s = stage_us.saturating_sub(cost_us + cache_us) as f64 / 1e6;
        self.prune_s = prune_s;
    }

    /// Publish the counters under their stable metric names (see the
    /// DESIGN.md metric catalog). No-op unless tracing is enabled.
    pub(crate) fn publish_metrics(&self) {
        if !reml_trace::enabled() {
            return;
        }
        reml_trace::count("optimizer.block_compilations", self.block_compilations);
        reml_trace::count("optimizer.cost_invocations", self.cost_invocations);
        reml_trace::count("optimizer.cp_points", self.cp_points as u64);
        reml_trace::count("optimizer.mr_points", self.mr_points as u64);
        reml_trace::count("optimizer.plan_cache.hits", self.plan_cache_hits);
        reml_trace::count("optimizer.plan_cache.misses", self.plan_cache_misses);
        reml_trace::count("optimizer.compilations_avoided", self.compilations_avoided);
        reml_trace::count(
            "optimizer.cp_points_pruned_unsound",
            self.cp_points_pruned_unsound as u64,
        );
        reml_trace::count(
            "optimizer.phase.enumerate_us",
            (self.enumerate_s * 1e6) as u64,
        );
        reml_trace::count("optimizer.phase.cost_us", (self.cost_s * 1e6) as u64);
        reml_trace::count("optimizer.phase.prune_us", (self.prune_s * 1e6) as u64);
        reml_trace::count("optimizer.phase.cache_us", (self.cache_s * 1e6) as u64);
        reml_trace::count("optimizer.opt_time_us", self.opt_time.as_micros() as u64);
    }
}

/// The optimization outcome.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Globally best configuration `R*_P`.
    pub best: ResourceConfig,
    /// Its estimated cost, seconds.
    pub best_cost_s: f64,
    /// Best configuration constrained to the current CP heap
    /// (`R*_P | r_c`), when requested — the §4.2 extension.
    pub best_local: Option<(ResourceConfig, f64)>,
    /// Counters.
    pub stats: OptimizerStats,
    /// Decision provenance: one record per generated CP grid point.
    pub ledger: DecisionLedger,
}

/// The resource optimizer over a cost model.
#[derive(Debug, Clone)]
pub struct ResourceOptimizer {
    /// Optimizer knobs.
    pub config: OptimizerConfig,
    /// The cost model (carries the cluster).
    pub cost_model: CostModel,
}

impl ResourceOptimizer {
    /// Optimizer with default configuration over a cluster's cost model.
    pub fn new(cost_model: CostModel) -> Self {
        ResourceOptimizer {
            config: OptimizerConfig::default(),
            cost_model,
        }
    }

    /// Optimizer whose grid walk prices plans with a trace-fitted
    /// calibration profile attached (see `reml_cost::calibrate`). The
    /// profile flows through every enumeration stage — including the
    /// parallel workers, which clone the model (and the shared `Arc`)
    /// cheaply. Opcodes absent from the profile are priced analytically.
    pub fn with_calibration(
        cost_model: CostModel,
        profile: std::sync::Arc<reml_cost::CalibrationProfile>,
    ) -> Self {
        ResourceOptimizer::new(cost_model.with_calibration(profile))
    }

    /// Optimize the resource configuration for a program
    /// (Algorithm 1 / Appendix C when `workers > 1`).
    ///
    /// `base` provides params/inputs; its heap fields are ignored.
    /// `current_cp_heap` requests the `R*|r_c` local optimum as well
    /// (used by runtime re-optimization).
    pub fn optimize(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        self.optimize_scope(analyzed, base, None, current_cp_heap)
    }

    /// Optimize a *scope* of the program — the §4.2 re-optimization
    /// entry point. `scope` is `(first top-level block index, entry
    /// environment from runtime state)`; `None` optimizes the whole
    /// program from an empty environment.
    pub fn optimize_scope(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        scope: Option<(usize, &Env)>,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        if self.config.workers > 1 {
            crate::parallel::optimize_parallel(self, analyzed, base, scope, current_cp_heap)
        } else {
            self.optimize_serial(analyzed, base, scope, current_cp_heap)
        }
    }

    fn optimize_serial(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        scope: Option<(usize, &Env)>,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        let start = Instant::now();
        let cc = &self.cost_model.cluster;
        let (min_heap, max_heap) = (cc.min_heap_mb(), cc.max_heap_mb());
        let mut stats = OptimizerStats::default();

        // Step 2 of Figure 3: the session's probe compile provides
        // program info and memory estimates for grid generation, and
        // seeds the plan cache.
        let mut session = WhatIfSession::new(analyzed, base, scope, self.config.plan_cache)?;
        let mem_estimates: Vec<f64> = session
            .probe()
            .compiled
            .summaries
            .iter()
            .flat_map(|s| s.mem_estimates_mb.iter().copied())
            .collect();

        let mut src = self
            .config
            .cp_grid
            .generate(min_heap, max_heap, &mem_estimates);
        let srm = self
            .config
            .mr_grid
            .generate(min_heap, max_heap, &mem_estimates);
        stats.cp_points = src.len();
        stats.mr_points = srm.len();
        // The generated (pre-pruning) grid: the ledger's key space.
        let full_grid = src.clone();
        let t_prune = Instant::now();
        self.prune_unsound_cp_points(analyzed, &mut session, base, &mut src, &mut stats);
        let prune_s = t_prune.elapsed().as_secs_f64();

        let _walk = reml_trace::span!(
            "optimize.grid_walk",
            cp_points = src.len(),
            mr_points = srm.len()
        );
        let memo = CostMemo::new(self.config.plan_cache);
        let deadline = self.config.time_budget.map(|b| start + b);
        let mut best: Option<(ResourceConfig, f64)> = None;
        let mut best_local: Option<(ResourceConfig, f64)> = None;
        // Aggregated (config, cost) per walked grid point, for the ledger.
        let mut candidates: Vec<Option<(ResourceConfig, f64)>> = vec![None; src.len()];

        'outer: for (rc_idx, &rc) in src.iter().enumerate() {
            let mut exhausted = deadline.map(|d| Instant::now() > d).unwrap_or(false);
            if exhausted && best.is_some() {
                stats.budget_exhausted = true;
                break 'outer;
            }
            // Baseline compilation at (rc, min) — unrolls P into blocks,
            // prunes (§3.4), and seeds the per-block memo.
            let bl = stage_baseline(self, &session, &memo, rc)?;
            if rc_idx == 0 {
                stats.blocks_total = bl.blocks_total;
                stats.blocks_remaining = bl.blocks.len();
            }
            let mut enums: BTreeMap<usize, (u64, f64)> = BTreeMap::new();
            for &(bid, cost) in &bl.blocks {
                enums.entry(bid).or_insert((min_heap, cost));
            }

            // Enumerate the second dimension per block — skipped when the
            // budget is already exhausted, so a valid (if unrefined)
            // configuration still comes out of the aggregation below.
            if !exhausted {
                for &(bid, baseline_cost) in &bl.blocks {
                    let (found, cut) = stage_enum_block(
                        self,
                        &session,
                        &memo,
                        &srm,
                        deadline,
                        rc,
                        bid,
                        baseline_cost,
                    );
                    let entry = enums.get_mut(&bid).expect("memo seeded at baseline");
                    if found.1 < entry.1 {
                        *entry = found;
                    }
                    if cut {
                        exhausted = true;
                        break;
                    }
                }
            }

            // Whole-program compile at the memoized assignment and global
            // costing (takes loops/branches into account).
            let (candidate, cost) = stage_agg(self, &session, &memo, rc, &enums)?;
            candidates[rc_idx] = Some((candidate.clone(), cost));
            if improves(&best, &candidate, cost, cc) {
                best = Some((candidate.clone(), cost));
            }
            if Some(rc) == current_cp_heap && improves(&best_local, &candidate, cost, cc) {
                best_local = Some((candidate, cost));
            }
            if exhausted {
                stats.budget_exhausted = true;
                break 'outer;
            }
        }

        let session_stats = session.stats();
        stats.block_compilations = session_stats.block_compilations;
        stats.plan_cache_hits = session_stats.plan_cache_hits;
        stats.plan_cache_misses = session_stats.plan_cache_misses;
        stats.compilations_avoided = session_stats.compilations_avoided;
        stats.cost_invocations = memo.runs();
        stats.opt_time = start.elapsed();
        stats.fill_phases(
            memo.stage_time_us(),
            memo.cost_time_us(),
            session_stats.cache_lookup_us,
            prune_s,
        );
        stats.publish_metrics();
        let (best, best_cost_s) = best.ok_or_else(|| {
            CompileError::Internal("optimizer enumerated no configurations".into())
        })?;
        let ledger = build_ledger(
            &full_grid,
            &src,
            &candidates,
            &best,
            best_cost_s,
            stats.sound_min_cp_budget_mb,
            cc,
        );
        Ok(OptimizationResult {
            best,
            best_cost_s,
            best_local,
            stats,
            ledger,
        })
    }

    /// Soundness pruning of the CP grid: run the interval analysis over
    /// the probe plan, derive the statically-proven minimum CP budget,
    /// and drop every grid point whose budget falls below it — those
    /// points cannot execute the program's forced-CP operators under
    /// *any* plan, so costing them is wasted work. The bound is also
    /// registered as a session breakpoint so cached plans never cross
    /// the feasibility boundary. Never empties the grid: if the bound
    /// rules out every point (the program is infeasible on this
    /// cluster), the grid is left untouched and enumeration proceeds —
    /// surfacing the least-bad configuration is more useful than an
    /// error here.
    pub(crate) fn prune_unsound_cp_points(
        &self,
        analyzed: &AnalyzedProgram,
        session: &mut WhatIfSession,
        base: &CompileConfig,
        src: &mut Vec<u64>,
        stats: &mut OptimizerStats,
    ) {
        let cc = &self.cost_model.cluster;
        let min_heap = cc.min_heap_mb();
        let probe_cfg = reml_compiler::session::with_resources(
            base,
            min_heap,
            reml_compiler::MrHeapAssignment::uniform(min_heap),
        );
        let sound_min = match reml_sizebound::analyze_with_min_budget(
            analyzed,
            &session.probe().compiled,
            &probe_cfg,
        ) {
            Ok((_, min)) => min,
            // Analysis failure must never fail optimization: no pruning.
            Err(_) => 0.0,
        };
        if sound_min <= 0.0 {
            return;
        }
        stats.sound_min_cp_budget_mb = Some(sound_min);
        let kept: Vec<u64> = src
            .iter()
            .copied()
            .filter(|&rc| cc.budget_mb_for_heap(rc) as f64 >= sound_min)
            .collect();
        if !kept.is_empty() {
            stats.cp_points_pruned_unsound = src.len() - kept.len();
            *src = kept;
        }
        reml_trace::event!(
            "optimize.prune_unsound",
            pruned = stats.cp_points_pruned_unsound,
            sound_min_mb = sound_min
        );
        session.add_program_threshold_mb(sound_min);
    }

    /// Apply §3.4 pruning to the generic-block list of a baseline
    /// compilation; returns (remaining block ids, total count).
    pub(crate) fn prune_blocks(&self, compiled: &CompiledProgram) -> (Vec<usize>, usize) {
        let total = compiled.summaries.len();
        let remaining = compiled
            .summaries
            .iter()
            .filter(|s| {
                if self.config.prune_small && s.mr_jobs == 0 {
                    return false;
                }
                if self.config.prune_unknown && s.all_mr_unknown {
                    return false;
                }
                true
            })
            .map(|s| s.block_id)
            .collect();
        (remaining, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cluster::ClusterConfig;
    use reml_compiler::pipeline::analyze_program;
    use reml_compiler::MrHeapAssignment;
    use reml_scripts::{DataShape, Scenario};

    fn optimizer() -> ResourceOptimizer {
        ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()))
    }

    fn setup(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
        cols: u64,
        sparsity: f64,
    ) -> (AnalyzedProgram, CompileConfig) {
        let shape = DataShape {
            scenario,
            cols,
            sparsity,
        };
        let cfg = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        let analyzed = analyze_program(&script.source).unwrap();
        (analyzed, cfg)
    }

    #[test]
    fn tiny_data_chooses_minimal_resources() {
        // XS (80 MB): everything fits everywhere; minimality tie-break
        // must select the smallest configuration.
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::XS, 100, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(result.best.cp_heap_mb, cc.min_heap_mb());
        assert!(result.best_cost_s > 0.0);
    }

    #[test]
    fn cg_on_medium_data_prefers_large_cp() {
        // M dense (8 GB): iterative CG wants X in CP memory (Figure 1).
        let script = reml_scripts::linreg_cg();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        // The CP budget must hold the 8 GB X in memory (plus vectors):
        // heap * 0.7 > 7630 MB.
        assert!(
            result.best.cp_heap_mb as f64 * 0.7 > 7630.0,
            "chose {}",
            result.best.display_gb()
        );
    }

    #[test]
    fn ds_on_medium_data_prefers_small_cp_parallel_mr() {
        // M dense1000: DS is compute-intensive; distributed plans win
        // (Figure 1 left).
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(
            result.best.cp_heap_mb < 12 * 1024,
            "chose {}",
            result.best.display_gb()
        );
    }

    #[test]
    fn pruning_removes_all_blocks_for_tiny_data() {
        let script = reml_scripts::l2svm();
        let (analyzed, base) = setup(&script, Scenario::XS, 100, 1.0);
        let opt = optimizer();
        let result = opt.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(result.stats.blocks_remaining, 0, "{:?}", result.stats);
        assert!(result.stats.blocks_total > 0);
    }

    #[test]
    fn pruning_disabled_keeps_blocks() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.prune_small = false;
        let with_blocks = opt.optimize(&analyzed, &base, None).unwrap();
        assert!(with_blocks.stats.blocks_remaining > 0);
        let mut opt2 = optimizer();
        opt2.config.prune_small = true;
        let pruned = opt2.optimize(&analyzed, &base, None).unwrap();
        assert!(pruned.stats.cost_invocations <= with_blocks.stats.cost_invocations);
    }

    #[test]
    fn unknown_blocks_pruned_for_mlogreg() {
        let script = reml_scripts::mlogreg();
        let (analyzed, base) = setup(&script, Scenario::S, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.prune_unknown = true;
        let a = opt.optimize(&analyzed, &base, None).unwrap();
        opt.config.prune_unknown = false;
        let b = opt.optimize(&analyzed, &base, None).unwrap();
        assert!(
            a.stats.blocks_remaining <= b.stats.blocks_remaining,
            "{} vs {}",
            a.stats.blocks_remaining,
            b.stats.blocks_remaining
        );
    }

    #[test]
    fn local_optimum_reported_for_current_rc() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::S, 1000, 1.0);
        let cc = ClusterConfig::paper_cluster();
        let result = optimizer()
            .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
            .unwrap();
        let (local, local_cost) = result.best_local.expect("local requested");
        assert_eq!(local.cp_heap_mb, cc.min_heap_mb());
        assert!(local_cost >= result.best_cost_s - 1e-9);
    }

    #[test]
    fn time_budget_stops_enumeration() {
        let script = reml_scripts::glm();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.time_budget = Some(Duration::from_millis(1));
        let result = opt.optimize(&analyzed, &base, None);
        // Either finished very fast or flagged exhaustion; in both cases
        // a best configuration must exist if any point was evaluated.
        if let Ok(r) = result {
            assert!(r.stats.budget_exhausted || r.stats.opt_time < Duration::from_secs(2));
        }
    }

    #[test]
    fn zero_time_budget_still_returns_a_configuration() {
        // Satellite of the session refactor: an exhausted budget used to
        // leak out of the MR loop only, silently continuing with the next
        // CP point. Now exhaustion propagates to the outer loop — and a
        // budget that is exhausted before any point is evaluated still
        // produces a valid (baseline-only) configuration.
        let script = reml_scripts::glm();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.time_budget = Some(Duration::ZERO);
        let r = opt.optimize(&analyzed, &base, None).unwrap();
        assert!(r.stats.budget_exhausted);
        assert!(r.best_cost_s > 0.0);
        // Only the probe, one baseline, and one aggregate were compiled.
        let full = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(
            r.stats.block_compilations < full.stats.block_compilations,
            "{} vs {}",
            r.stats.block_compilations,
            full.stats.block_compilations
        );
    }

    #[test]
    fn plan_cache_and_bypass_agree_on_the_paper_scripts() {
        // The decision-fingerprint cache must be semantically invisible:
        // for every paper script, the cached optimizer returns the exact
        // configuration and cost of a cache-bypass run — while compiling
        // at least 2x fewer blocks.
        for ctor in [
            reml_scripts::linreg_ds,
            reml_scripts::linreg_cg,
            reml_scripts::l2svm,
            reml_scripts::glm,
            reml_scripts::mlogreg,
        ] {
            let script = ctor();
            let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
            let cc = ClusterConfig::paper_cluster();
            let mut cached = optimizer();
            cached.config.plan_cache = true;
            let mut bypass = optimizer();
            bypass.config.plan_cache = false;
            let rc = cached
                .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
                .unwrap();
            let rb = bypass
                .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
                .unwrap();
            assert_eq!(rc.best, rb.best, "{}", script.name);
            assert_eq!(
                rc.best_cost_s.to_bits(),
                rb.best_cost_s.to_bits(),
                "{}",
                script.name
            );
            assert_eq!(
                rc.best_local
                    .as_ref()
                    .map(|(c, s)| (c.clone(), s.to_bits())),
                rb.best_local
                    .as_ref()
                    .map(|(c, s)| (c.clone(), s.to_bits())),
                "{}",
                script.name
            );
            assert_eq!(rb.stats.plan_cache_hits, 0);
            assert_eq!(rb.stats.compilations_avoided, 0);
            assert!(
                rc.stats.block_compilations * 2 <= rb.stats.block_compilations,
                "{}: {} cached vs {} bypassed",
                script.name,
                rc.stats.block_compilations,
                rb.stats.block_compilations
            );
        }
    }

    #[test]
    fn unsound_cp_points_are_pruned() {
        // 8000 features make t(X)%*%X an 8000x8000 dense matrix; solve()
        // is CP-only and needs ~2x its dense size, which the interval
        // analysis proves exceeds the smallest grid budgets. Those points
        // must be skipped before costing, and the chosen configuration
        // must respect the proven bound.
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::S, 8000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        let sound_min = result
            .stats
            .sound_min_cp_budget_mb
            .expect("solve gives a finite bound");
        let cc = ClusterConfig::paper_cluster();
        assert!(
            sound_min > cc.budget_mb_for_heap(cc.min_heap_mb()) as f64,
            "{sound_min}"
        );
        assert!(
            result.stats.cp_points_pruned_unsound > 0,
            "{:?}",
            result.stats
        );
        assert!(cc.budget_mb_for_heap(result.best.cp_heap_mb) as f64 >= sound_min);

        // The parallel path prunes identically and stays bit-identical.
        let mut par = optimizer();
        par.config.workers = 4;
        let rp = par.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(result.best, rp.best);
        assert_eq!(result.best_cost_s.to_bits(), rp.best_cost_s.to_bits());
        assert_eq!(
            result.stats.cp_points_pruned_unsound,
            rp.stats.cp_points_pruned_unsound
        );
    }

    #[test]
    fn sound_pruning_reduces_optimization_work() {
        // Pruned grid points are never compiled or costed: the pruned
        // run must do strictly less work than a run with pruning's
        // threshold but the full grid would. Compare cost invocations
        // against total grid size as a sanity signal.
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::S, 8000, 1.0);
        let r = optimizer().optimize(&analyzed, &base, None).unwrap();
        let walked = r.stats.cp_points - r.stats.cp_points_pruned_unsound;
        assert!(walked >= 1);
        assert!(walked < r.stats.cp_points, "{:?}", r.stats);
    }

    #[test]
    fn ledger_covers_every_grid_point_and_matches_the_outcome() {
        use crate::provenance::PointVerdict;
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::S, 8000, 1.0);
        let r = optimizer().optimize(&analyzed, &base, None).unwrap();
        // One record per generated grid point, exactly one chosen.
        assert_eq!(r.ledger.points.len(), r.stats.cp_points);
        let (costed, pruned, skipped) = r.ledger.counts();
        assert_eq!(pruned, r.stats.cp_points_pruned_unsound);
        assert_eq!(costed + pruned + skipped, r.stats.cp_points);
        assert_eq!(skipped, 0, "no time budget, nothing skipped");
        let chosen = r.ledger.chosen().expect("winner recorded");
        assert_eq!(chosen.cp_heap_mb, r.best.cp_heap_mb);
        assert_eq!(
            chosen.verdict.cost_s().unwrap().to_bits(),
            r.best_cost_s.to_bits()
        );
        // Every dominated point names the winner and a non-negative-ish
        // delta (ties may dip within the 0.1% band).
        for p in &r.ledger.points {
            if let PointVerdict::Dominated {
                by_cp_heap_mb,
                delta_s,
                tie,
                ..
            } = &p.verdict
            {
                assert_eq!(*by_cp_heap_mb, r.best.cp_heap_mb);
                assert!(*delta_s >= -0.001 * r.best_cost_s || *tie);
            }
        }
        // The parallel path builds the identical ledger.
        let mut par = optimizer();
        par.config.workers = 4;
        let rp = par.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(r.ledger, rp.ledger);
    }

    #[test]
    fn stats_report_cache_behaviour() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let r = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(r.stats.plan_cache_hits > 0, "{:?}", r.stats);
        assert!(r.stats.compilations_avoided > 0);
        assert!(r.stats.plan_cache_hits + r.stats.plan_cache_misses >= 1);
    }

    #[test]
    fn stats_track_compilations_and_costings() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(result.stats.block_compilations > 0);
        assert!(result.stats.cost_invocations > 0);
        assert!(result.stats.cp_points >= 2);
        assert!(result.stats.opt_time > Duration::ZERO);
    }
}

//! The core resource optimizer: Algorithm 1 with pruning and memoization.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use reml_compiler::build::Env;
use reml_compiler::pipeline::{compile, compile_scope, compile_single_block, AnalyzedProgram, CompiledProgram};
use reml_compiler::{CompileConfig, CompileError, MrHeapAssignment};
use reml_cost::{CostModel, VarStates};
use reml_lang::BlockId;
use reml_runtime::program::RtBlock;

use crate::grid::GridStrategy;
use crate::resources::ResourceConfig;

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Grid strategy for the CP dimension.
    pub cp_grid: GridStrategy,
    /// Grid strategy for the MR dimension.
    pub mr_grid: GridStrategy,
    /// Prune blocks without MR jobs (§3.4, "blocks of small operations").
    pub prune_small: bool,
    /// Prune blocks where all MR operators have unknown dimensions
    /// (§3.4, "blocks of unknowns").
    pub prune_unknown: bool,
    /// Optimization-time budget; enumeration stops when exceeded.
    pub time_budget: Option<Duration>,
    /// Worker threads for the parallel optimizer (1 = serial Algorithm 1).
    pub workers: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            cp_grid: GridStrategy::default_hybrid(),
            mr_grid: GridStrategy::default_hybrid(),
            prune_small: true,
            prune_unknown: true,
            time_budget: None,
            workers: 1,
        }
    }
}

/// Counters for the overhead experiments (Table 3, Figures 13/14/18).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizerStats {
    /// Generic-block compilations performed ("# Comp.").
    pub block_compilations: u64,
    /// Cost-model invocations ("# Cost."; whole-program costing counts as
    /// one invocation).
    pub cost_invocations: u64,
    /// Wall-clock optimization time.
    pub opt_time: Duration,
    /// Enumerated CP grid points.
    pub cp_points: usize,
    /// Enumerated MR grid points.
    pub mr_points: usize,
    /// Generic blocks before pruning, per CP point (first point recorded).
    pub blocks_total: usize,
    /// Generic blocks remaining after pruning (first CP point).
    pub blocks_remaining: usize,
    /// Whether the time budget cut enumeration short.
    pub budget_exhausted: bool,
}

/// The optimization outcome.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Globally best configuration `R*_P`.
    pub best: ResourceConfig,
    /// Its estimated cost, seconds.
    pub best_cost_s: f64,
    /// Best configuration constrained to the current CP heap
    /// (`R*_P | r_c`), when requested — the §4.2 extension.
    pub best_local: Option<(ResourceConfig, f64)>,
    /// Counters.
    pub stats: OptimizerStats,
}

/// The resource optimizer over a cost model.
#[derive(Debug, Clone)]
pub struct ResourceOptimizer {
    /// Optimizer knobs.
    pub config: OptimizerConfig,
    /// The cost model (carries the cluster).
    pub cost_model: CostModel,
}

impl ResourceOptimizer {
    /// Optimizer with default configuration over a cluster's cost model.
    pub fn new(cost_model: CostModel) -> Self {
        ResourceOptimizer {
            config: OptimizerConfig::default(),
            cost_model,
        }
    }

    /// Optimize the resource configuration for a program
    /// (Algorithm 1 / Appendix C when `workers > 1`).
    ///
    /// `base` provides params/inputs; its heap fields are ignored.
    /// `current_cp_heap` requests the `R*|r_c` local optimum as well
    /// (used by runtime re-optimization).
    pub fn optimize(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        self.optimize_scope(analyzed, base, None, current_cp_heap)
    }

    /// Optimize a *scope* of the program — the §4.2 re-optimization
    /// entry point. `scope` is `(first top-level block index, entry
    /// environment from runtime state)`; `None` optimizes the whole
    /// program from an empty environment.
    pub fn optimize_scope(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        scope: Option<(usize, &Env)>,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        if self.config.workers > 1 {
            crate::parallel::optimize_parallel(self, analyzed, base, scope, current_cp_heap)
        } else {
            self.optimize_serial(analyzed, base, scope, current_cp_heap)
        }
    }

    fn optimize_serial(
        &self,
        analyzed: &AnalyzedProgram,
        base: &CompileConfig,
        scope: Option<(usize, &Env)>,
        current_cp_heap: Option<u64>,
    ) -> Result<OptimizationResult, CompileError> {
        let start = Instant::now();
        let cc = &self.cost_model.cluster;
        let (min_heap, max_heap) = (cc.min_heap_mb(), cc.max_heap_mb());
        let mut stats = OptimizerStats::default();

        // Step 2 of Figure 3: one HOP-level compile to obtain program
        // info and memory estimates for grid generation.
        let probe_cfg = with_resources(base, min_heap, MrHeapAssignment::uniform(min_heap));
        let probe = compile_maybe_scoped(analyzed, &probe_cfg, scope)?;
        stats.block_compilations += probe.stats.block_compilations;
        let mem_estimates: Vec<f64> = probe
            .summaries
            .iter()
            .flat_map(|s| s.mem_estimates_mb.iter().copied())
            .collect();

        let src = self
            .config
            .cp_grid
            .generate(min_heap, max_heap, &mem_estimates);
        let srm = self
            .config
            .mr_grid
            .generate(min_heap, max_heap, &mem_estimates);
        stats.cp_points = src.len();
        stats.mr_points = srm.len();

        let mut best: Option<(ResourceConfig, f64)> = None;
        let mut best_local: Option<(ResourceConfig, f64)> = None;

        'outer: for (rc_idx, &rc) in src.iter().enumerate() {
            if self.out_of_budget(start) {
                stats.budget_exhausted = true;
                break 'outer;
            }
            // Baseline compilation at (rc, min) — unrolls P into blocks.
            let base_cfg = with_resources(base, rc, MrHeapAssignment::uniform(min_heap));
            let compiled = compile_maybe_scoped(analyzed, &base_cfg, scope)?;
            stats.block_compilations += compiled.stats.block_compilations;

            // Pruning (§3.4).
            let (remaining, total) = self.prune_blocks(&compiled);
            if rc_idx == 0 {
                stats.blocks_total = total;
                stats.blocks_remaining = remaining.len();
            }

            // Memo: best (ri, cost) per remaining block, initialized at
            // (min, baseline cost).
            let block_instr = collect_generic_instructions(&compiled);
            let mut memo: BTreeMap<usize, (u64, f64)> = BTreeMap::new();
            for &bid in &remaining {
                let cost = self
                    .cost_model
                    .cost_instructions(&block_instr[&bid], rc, min_heap, &mut VarStates::new())
                    .total_s();
                stats.cost_invocations += 1;
                memo.insert(bid, (min_heap, cost));
            }

            // Enumerate the second dimension per block.
            for &bid in &remaining {
                let entry_env = match compiled.entry_envs.get(&bid) {
                    Some(env) => env,
                    None => continue,
                };
                for &ri in &srm {
                    if ri == min_heap {
                        continue; // memo already holds the baseline
                    }
                    if self.out_of_budget(start) {
                        stats.budget_exhausted = true;
                        break;
                    }
                    let mut cfg = with_resources(base, rc, MrHeapAssignment::uniform(min_heap));
                    cfg.mr_heap.set_block(bid, ri);
                    let (instrs, _summary, cstats) =
                        compile_single_block(analyzed, &cfg, BlockId(bid), entry_env)?;
                    stats.block_compilations += cstats.block_compilations;
                    let cost = self
                        .cost_model
                        .cost_instructions(&instrs, rc, ri, &mut VarStates::new())
                        .total_s();
                    stats.cost_invocations += 1;
                    let entry = memo.get_mut(&bid).expect("memo initialized");
                    if cost < entry.1 {
                        *entry = (ri, cost);
                    }
                }
            }

            // Whole-program compile at the memoized assignment and global
            // costing (takes loops/branches into account).
            let mut mr_heap = MrHeapAssignment::uniform(min_heap);
            for (bid, (ri, _)) in &memo {
                if *ri != min_heap {
                    mr_heap.set_block(*bid, *ri);
                }
            }
            let full_cfg = with_resources(base, rc, mr_heap.clone());
            let full = compile_maybe_scoped(analyzed, &full_cfg, scope)?;
            stats.block_compilations += full.stats.block_compilations;
            let heap_of = mr_heap.clone();
            let cost = self
                .cost_model
                .cost_program(&full.runtime, rc, &|bid| heap_of.for_block(bid))
                .total_s();
            stats.cost_invocations += 1;

            let candidate = ResourceConfig {
                cp_heap_mb: rc,
                mr_heap,
            };
            if improves(&best, &candidate, cost, cc) {
                best = Some((candidate.clone(), cost));
            }
            if Some(rc) == current_cp_heap && improves(&best_local, &candidate, cost, cc) {
                best_local = Some((candidate, cost));
            }
        }

        stats.opt_time = start.elapsed();
        let (best, best_cost_s) = best.ok_or_else(|| {
            CompileError::Internal("optimizer enumerated no configurations".into())
        })?;
        Ok(OptimizationResult {
            best,
            best_cost_s,
            best_local,
            stats,
        })
    }

    fn out_of_budget(&self, start: Instant) -> bool {
        self.config
            .time_budget
            .map(|b| start.elapsed() > b)
            .unwrap_or(false)
    }

    /// Apply §3.4 pruning to the generic-block list of a baseline
    /// compilation; returns (remaining block ids, total count).
    pub(crate) fn prune_blocks(&self, compiled: &CompiledProgram) -> (Vec<usize>, usize) {
        let total = compiled.summaries.len();
        let remaining = compiled
            .summaries
            .iter()
            .filter(|s| {
                if self.config.prune_small && s.mr_jobs == 0 {
                    return false;
                }
                if self.config.prune_unknown && s.all_mr_unknown {
                    return false;
                }
                true
            })
            .map(|s| s.block_id)
            .collect();
        (remaining, total)
    }
}

/// Compile the whole program or a scope of it.
pub(crate) fn compile_maybe_scoped(
    analyzed: &AnalyzedProgram,
    cfg: &CompileConfig,
    scope: Option<(usize, &Env)>,
) -> Result<CompiledProgram, CompileError> {
    match scope {
        None => compile(analyzed, cfg),
        Some((start, env)) => compile_scope(analyzed, cfg, start, env),
    }
}

/// Clone a base config with new resources.
pub(crate) fn with_resources(
    base: &CompileConfig,
    cp_heap_mb: u64,
    mr_heap: MrHeapAssignment,
) -> CompileConfig {
    let mut cfg = base.clone();
    cfg.cp_heap_mb = cp_heap_mb;
    cfg.mr_heap = mr_heap;
    cfg
}

/// Collect instructions of every generic block, keyed by block id.
pub(crate) fn collect_generic_instructions(
    compiled: &CompiledProgram,
) -> BTreeMap<usize, Vec<reml_runtime::Instruction>> {
    let mut out = BTreeMap::new();
    for top in &compiled.runtime.blocks {
        top.visit_generic(&mut |b| {
            if let RtBlock::Generic {
                source,
                instructions,
                ..
            } = b
            {
                out.insert(source.0, instructions.clone());
            }
        });
    }
    out
}

/// Whether `(candidate, cost)` beats the incumbent: lower cost, or equal
/// cost (within 0.1%) and smaller resources (Definition 1's minimality).
fn improves(
    incumbent: &Option<(ResourceConfig, f64)>,
    candidate: &ResourceConfig,
    cost: f64,
    cc: &reml_cluster::ClusterConfig,
) -> bool {
    match incumbent {
        None => true,
        Some((inc, inc_cost)) => {
            let tie = (cost - inc_cost).abs() <= 0.001 * inc_cost.max(1e-9);
            if tie {
                candidate.magnitude(cc) < inc.magnitude(cc)
            } else {
                cost < *inc_cost
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cluster::ClusterConfig;
    use reml_compiler::pipeline::analyze_program;
    use reml_scripts::{DataShape, Scenario};

    fn optimizer() -> ResourceOptimizer {
        ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()))
    }

    fn setup(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
        cols: u64,
        sparsity: f64,
    ) -> (AnalyzedProgram, CompileConfig) {
        let shape = DataShape {
            scenario,
            cols,
            sparsity,
        };
        let cfg = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        let analyzed = analyze_program(&script.source).unwrap();
        (analyzed, cfg)
    }

    #[test]
    fn tiny_data_chooses_minimal_resources() {
        // XS (80 MB): everything fits everywhere; minimality tie-break
        // must select the smallest configuration.
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::XS, 100, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        let cc = ClusterConfig::paper_cluster();
        assert_eq!(result.best.cp_heap_mb, cc.min_heap_mb());
        assert!(result.best_cost_s > 0.0);
    }

    #[test]
    fn cg_on_medium_data_prefers_large_cp() {
        // M dense (8 GB): iterative CG wants X in CP memory (Figure 1).
        let script = reml_scripts::linreg_cg();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        // The CP budget must hold the 8 GB X in memory (plus vectors):
        // heap * 0.7 > 7630 MB.
        assert!(
            result.best.cp_heap_mb as f64 * 0.7 > 7630.0,
            "chose {}",
            result.best.display_gb()
        );
    }

    #[test]
    fn ds_on_medium_data_prefers_small_cp_parallel_mr() {
        // M dense1000: DS is compute-intensive; distributed plans win
        // (Figure 1 left).
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(
            result.best.cp_heap_mb < 12 * 1024,
            "chose {}",
            result.best.display_gb()
        );
    }

    #[test]
    fn pruning_removes_all_blocks_for_tiny_data() {
        let script = reml_scripts::l2svm();
        let (analyzed, base) = setup(&script, Scenario::XS, 100, 1.0);
        let opt = optimizer();
        let result = opt.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(result.stats.blocks_remaining, 0, "{:?}", result.stats);
        assert!(result.stats.blocks_total > 0);
    }

    #[test]
    fn pruning_disabled_keeps_blocks() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.prune_small = false;
        let with_blocks = opt.optimize(&analyzed, &base, None).unwrap();
        assert!(with_blocks.stats.blocks_remaining > 0);
        let mut opt2 = optimizer();
        opt2.config.prune_small = true;
        let pruned = opt2.optimize(&analyzed, &base, None).unwrap();
        assert!(pruned.stats.cost_invocations <= with_blocks.stats.cost_invocations);
    }

    #[test]
    fn unknown_blocks_pruned_for_mlogreg() {
        let script = reml_scripts::mlogreg();
        let (analyzed, base) = setup(&script, Scenario::S, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.prune_unknown = true;
        let a = opt.optimize(&analyzed, &base, None).unwrap();
        opt.config.prune_unknown = false;
        let b = opt.optimize(&analyzed, &base, None).unwrap();
        assert!(
            a.stats.blocks_remaining <= b.stats.blocks_remaining,
            "{} vs {}",
            a.stats.blocks_remaining,
            b.stats.blocks_remaining
        );
    }

    #[test]
    fn local_optimum_reported_for_current_rc() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::S, 1000, 1.0);
        let cc = ClusterConfig::paper_cluster();
        let result = optimizer()
            .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
            .unwrap();
        let (local, local_cost) = result.best_local.expect("local requested");
        assert_eq!(local.cp_heap_mb, cc.min_heap_mb());
        assert!(local_cost >= result.best_cost_s - 1e-9);
    }

    #[test]
    fn time_budget_stops_enumeration() {
        let script = reml_scripts::glm();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let mut opt = optimizer();
        opt.config.time_budget = Some(Duration::from_millis(1));
        let result = opt.optimize(&analyzed, &base, None);
        // Either finished very fast or flagged exhaustion; in both cases
        // a best configuration must exist if any point was evaluated.
        if let Ok(r) = result {
            assert!(r.stats.budget_exhausted || r.stats.opt_time < Duration::from_secs(2));
        }
    }

    #[test]
    fn stats_track_compilations_and_costings() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M, 1000, 1.0);
        let result = optimizer().optimize(&analyzed, &base, None).unwrap();
        assert!(result.stats.block_compilations > 0);
        assert!(result.stats.cost_invocations > 0);
        assert!(result.stats.cp_points >= 2);
        assert!(result.stats.opt_time > Duration::ZERO);
    }
}

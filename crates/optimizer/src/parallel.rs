//! Task-parallel resource optimization (Appendix C).
//!
//! Exploits the *semi-independent problems* property (§3.2): for a given
//! CP memory `r_c`, the per-block MR dimensions are independent. The
//! optimizer becomes a task system in the style of Orca's parallel query
//! optimization (which Appendix C cites): a central queue feeds `k`
//! workers three kinds of tasks —
//!
//! * **Baseline(r_c)** — compile the program at `(r_c, min)`, prune, and
//!   produce the per-block memo seeds;
//! * **Enum(r_c, block)** — enumerate the MR grid for one block,
//!   returning the locally optimal `(rⁱ, cost)`;
//! * **Agg(r_c)** — compile the whole program at the memoized assignment
//!   and cost it globally.
//!
//! Dependencies are purely forward (Baseline → Enum* → Agg per `r_c`),
//! so there are no global barriers: workers enumerate `r_c`'s blocks
//! while another worker compiles the baseline of `r_c+1` — the pipelining
//! effect of the paper's Figure 17. The master thread only schedules and
//! merges results (lock-free via channels).

use std::collections::BTreeMap;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use reml_compiler::build::Env;
use reml_compiler::pipeline::{compile_single_block, AnalyzedProgram, CompiledProgram};
use reml_compiler::{CompileConfig, CompileError, MrHeapAssignment};
use reml_cost::VarStates;
use reml_lang::BlockId;

use crate::optimizer::{
    collect_generic_instructions, compile_maybe_scoped, with_resources, OptimizationResult,
    OptimizerStats, ResourceOptimizer,
};
use crate::resources::ResourceConfig;

enum Task {
    Baseline {
        rc_idx: usize,
        rc: u64,
    },
    Enum {
        rc_idx: usize,
        rc: u64,
        block_id: usize,
        entry_env: Env,
        baseline_cost: f64,
    },
    Agg {
        rc: u64,
        mr_heap: MrHeapAssignment,
    },
}

enum Done {
    Baseline {
        rc_idx: usize,
        rc: u64,
        /// (block id, entry env, baseline cost) per unpruned block.
        blocks: Vec<(usize, Env, f64)>,
        compilations: u64,
        costings: u64,
        blocks_total: usize,
    },
    Enum {
        rc_idx: usize,
        block_id: usize,
        best_ri: u64,
        best_cost: f64,
        compilations: u64,
        costings: u64,
    },
    Agg {
        candidate: ResourceConfig,
        cost: f64,
        compilations: u64,
    },
    Failed(CompileError),
}

/// Parallel variant of Algorithm 1 (see module docs).
pub fn optimize_parallel(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    scope: Option<(usize, &Env)>,
    current_cp_heap: Option<u64>,
) -> Result<OptimizationResult, CompileError> {
    let start = Instant::now();
    let cc = &opt.cost_model.cluster;
    let (min_heap, max_heap) = (cc.min_heap_mb(), cc.max_heap_mb());
    let mut stats = OptimizerStats::default();

    // Probe compile for grid generation (master, once).
    let probe_cfg = with_resources(base, min_heap, MrHeapAssignment::uniform(min_heap));
    let probe = compile_maybe_scoped(analyzed, &probe_cfg, scope)?;
    stats.block_compilations += probe.stats.block_compilations;
    let mem_estimates: Vec<f64> = probe
        .summaries
        .iter()
        .flat_map(|s| s.mem_estimates_mb.iter().copied())
        .collect();
    let src = opt.config.cp_grid.generate(min_heap, max_heap, &mem_estimates);
    let srm = opt.config.mr_grid.generate(min_heap, max_heap, &mem_estimates);
    stats.cp_points = src.len();
    stats.mr_points = srm.len();

    let (task_tx, task_rx) = unbounded::<Task>();
    let (done_tx, done_rx) = unbounded::<Done>();
    let workers = opt.config.workers.max(2) - 1;
    let deadline = opt.config.time_budget.map(|b| start + b);

    let (best, best_local) = std::thread::scope(
        |threads| -> Result<
            (
                Option<(ResourceConfig, f64)>,
                Option<(ResourceConfig, f64)>,
            ),
            CompileError,
        > {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let srm = &srm;
            threads.spawn(move || {
                worker_loop(
                    opt, analyzed, base, scope, min_heap, srm, deadline, task_rx, done_tx,
                );
            });
        }
        drop(task_rx);
        drop(done_tx);

        // Master: seed baseline tasks and run the scheduling loop.
        for (rc_idx, &rc) in src.iter().enumerate() {
            task_tx
                .send(Task::Baseline { rc_idx, rc })
                .expect("workers alive");
        }

        let mut memo_per_rc: Vec<BTreeMap<usize, (u64, f64)>> = vec![BTreeMap::new(); src.len()];
        let mut pending_enums: Vec<usize> = vec![0; src.len()];
        let mut completed = 0usize;
        let mut best: Option<(ResourceConfig, f64)> = None;
        let mut best_local: Option<(ResourceConfig, f64)> = None;
        let mut first_error: Option<CompileError> = None;

        while completed < src.len() {
            let Ok(done) = done_rx.recv() else { break };
            match done {
                Done::Baseline {
                    rc_idx,
                    rc,
                    blocks,
                    compilations,
                    costings,
                    blocks_total,
                } => {
                    stats.block_compilations += compilations;
                    stats.cost_invocations += costings;
                    if rc_idx == 0 {
                        stats.blocks_total = blocks_total;
                        stats.blocks_remaining = blocks.len();
                    }
                    pending_enums[rc_idx] = blocks.len();
                    if blocks.is_empty() {
                        task_tx
                            .send(Task::Agg {
                                rc,
                                mr_heap: MrHeapAssignment::uniform(min_heap),
                            })
                            .expect("workers alive");
                    } else {
                        for (block_id, entry_env, baseline_cost) in blocks {
                            memo_per_rc[rc_idx].insert(block_id, (min_heap, baseline_cost));
                            task_tx
                                .send(Task::Enum {
                                    rc_idx,
                                    rc,
                                    block_id,
                                    entry_env,
                                    baseline_cost,
                                })
                                .expect("workers alive");
                        }
                    }
                }
                Done::Enum {
                    rc_idx,
                    block_id,
                    best_ri,
                    best_cost,
                    compilations,
                    costings,
                } => {
                    stats.block_compilations += compilations;
                    stats.cost_invocations += costings;
                    let entry = memo_per_rc[rc_idx]
                        .get_mut(&block_id)
                        .expect("memo seeded at baseline");
                    if best_cost < entry.1 {
                        *entry = (best_ri, best_cost);
                    }
                    pending_enums[rc_idx] -= 1;
                    if pending_enums[rc_idx] == 0 {
                        let mut mr_heap = MrHeapAssignment::uniform(min_heap);
                        for (bid, (ri, _)) in &memo_per_rc[rc_idx] {
                            if *ri != min_heap {
                                mr_heap.set_block(*bid, *ri);
                            }
                        }
                        task_tx
                            .send(Task::Agg {
                                rc: src[rc_idx],
                                mr_heap,
                            })
                            .expect("workers alive");
                    }
                }
                Done::Agg {
                    candidate,
                    cost,
                    compilations,
                } => {
                    stats.block_compilations += compilations;
                    stats.cost_invocations += 1;
                    completed += 1;
                    let better = match &best {
                        None => true,
                        Some((inc, inc_cost)) => {
                            let tie = (cost - inc_cost).abs() <= 0.001 * inc_cost.max(1e-9);
                            if tie {
                                candidate.magnitude(cc) < inc.magnitude(cc)
                            } else {
                                cost < *inc_cost
                            }
                        }
                    };
                    if better {
                        best = Some((candidate.clone(), cost));
                    }
                    if Some(candidate.cp_heap_mb) == current_cp_heap {
                        let better_local = match &best_local {
                            None => true,
                            Some((_, c)) => cost < *c,
                        };
                        if better_local {
                            best_local = Some((candidate, cost));
                        }
                    }
                }
                Done::Failed(e) => {
                    completed += 1;
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
            if deadline.map(|d| Instant::now() > d).unwrap_or(false) && best.is_some() {
                stats.budget_exhausted = true;
                break;
            }
        }
        drop(task_tx);
        if best.is_none() {
            if let Some(e) = first_error {
                return Err(e);
            }
        }
        Ok((best, best_local))
    },
    )?;

    stats.opt_time = start.elapsed();
    let (best, best_cost_s) = best.ok_or_else(|| {
        CompileError::Internal("parallel optimizer enumerated no configurations".into())
    })?;
    Ok(OptimizationResult {
        best,
        best_cost_s,
        best_local,
        stats,
    })
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    scope: Option<(usize, &Env)>,
    min_heap: u64,
    srm: &[u64],
    deadline: Option<Instant>,
    task_rx: Receiver<Task>,
    done_tx: Sender<Done>,
) {
    while let Ok(task) = task_rx.recv() {
        let result = match task {
            Task::Baseline { rc_idx, rc } => run_baseline(opt, analyzed, base, scope, min_heap, rc_idx, rc),
            Task::Enum {
                rc_idx,
                rc,
                block_id,
                entry_env,
                baseline_cost,
            } => run_enum(
                opt, analyzed, base, min_heap, srm, deadline, rc_idx, rc, block_id, &entry_env,
                baseline_cost,
            ),
            Task::Agg { rc, mr_heap, .. } => {
                run_agg(opt, analyzed, base, scope, rc, mr_heap)
            }
        };
        if done_tx.send(result).is_err() {
            break;
        }
    }
}

fn run_baseline(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    scope: Option<(usize, &Env)>,
    min_heap: u64,
    rc_idx: usize,
    rc: u64,
) -> Done {
    let cfg = with_resources(base, rc, MrHeapAssignment::uniform(min_heap));
    let compiled: CompiledProgram = match compile_maybe_scoped(analyzed, &cfg, scope) {
        Ok(c) => c,
        Err(e) => return Done::Failed(e),
    };
    let (remaining, total) = opt.prune_blocks(&compiled);
    let block_instr = collect_generic_instructions(&compiled);
    let mut blocks = Vec::new();
    let mut costings = 0u64;
    for bid in remaining {
        let cost = opt
            .cost_model
            .cost_instructions(&block_instr[&bid], rc, min_heap, &mut VarStates::new())
            .total_s();
        costings += 1;
        if let Some(env) = compiled.entry_envs.get(&bid) {
            blocks.push((bid, env.clone(), cost));
        }
    }
    Done::Baseline {
        rc_idx,
        rc,
        blocks,
        compilations: compiled.stats.block_compilations,
        costings,
        blocks_total: total,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_enum(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    min_heap: u64,
    srm: &[u64],
    deadline: Option<Instant>,
    rc_idx: usize,
    rc: u64,
    block_id: usize,
    entry_env: &Env,
    baseline_cost: f64,
) -> Done {
    let mut best_ri = min_heap;
    let mut best_cost = baseline_cost;
    let mut compilations = 0u64;
    let mut costings = 0u64;
    for &ri in srm {
        if ri == min_heap {
            continue;
        }
        if deadline.map(|d| Instant::now() > d).unwrap_or(false) {
            break;
        }
        let mut cfg = with_resources(base, rc, MrHeapAssignment::uniform(min_heap));
        cfg.mr_heap.set_block(block_id, ri);
        let Ok((instrs, _summary, cstats)) =
            compile_single_block(analyzed, &cfg, BlockId(block_id), entry_env)
        else {
            continue;
        };
        compilations += cstats.block_compilations;
        let cost = opt
            .cost_model
            .cost_instructions(&instrs, rc, ri, &mut VarStates::new())
            .total_s();
        costings += 1;
        if cost < best_cost {
            best_cost = cost;
            best_ri = ri;
        }
    }
    Done::Enum {
        rc_idx,
        block_id,
        best_ri,
        best_cost,
        compilations,
        costings,
    }
}

fn run_agg(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    scope: Option<(usize, &Env)>,
    rc: u64,
    mr_heap: MrHeapAssignment,
) -> Done {
    let cfg = with_resources(base, rc, mr_heap.clone());
    let full = match compile_maybe_scoped(analyzed, &cfg, scope) {
        Ok(c) => c,
        Err(e) => return Done::Failed(e),
    };
    let heap_of = mr_heap.clone();
    let cost = opt
        .cost_model
        .cost_program(&full.runtime, rc, &|bid| heap_of.for_block(bid))
        .total_s();
    Done::Agg {
        candidate: ResourceConfig {
            cp_heap_mb: rc,
            mr_heap,
        },
        cost,
        compilations: full.stats.block_compilations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cluster::ClusterConfig;
    use reml_compiler::pipeline::analyze_program;
    use reml_cost::CostModel;
    use reml_scripts::{DataShape, Scenario};

    fn setup(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
    ) -> (AnalyzedProgram, CompileConfig) {
        let shape = DataShape {
            scenario,
            cols: 1000,
            sparsity: 1.0,
        };
        let cfg = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        (analyze_program(&script.source).unwrap(), cfg)
    }

    #[test]
    fn parallel_matches_serial_result() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M);
        let mut serial = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        serial.config.workers = 1;
        let mut par = serial.clone();
        par.config.workers = 4;
        let rs = serial.optimize(&analyzed, &base, None).unwrap();
        let rp = par.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(rs.best.cp_heap_mb, rp.best.cp_heap_mb);
        assert!((rs.best_cost_s - rp.best_cost_s).abs() < 1e-6);
    }

    #[test]
    fn parallel_on_glm_counts_work() {
        let script = reml_scripts::glm();
        let (analyzed, base) = setup(&script, Scenario::M);
        let mut par = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        par.config.workers = 4;
        let r = par.optimize(&analyzed, &base, None).unwrap();
        assert!(r.stats.block_compilations > 0);
        assert!(r.best_cost_s > 0.0);
    }

    #[test]
    fn parallel_local_optimum_reported() {
        let script = reml_scripts::linreg_cg();
        let (analyzed, base) = setup(&script, Scenario::S);
        let cc = ClusterConfig::paper_cluster();
        let mut par = ResourceOptimizer::new(CostModel::new(cc.clone()));
        par.config.workers = 4;
        let r = par
            .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
            .unwrap();
        let (local, _) = r.best_local.expect("local requested");
        assert_eq!(local.cp_heap_mb, cc.min_heap_mb());
    }
}

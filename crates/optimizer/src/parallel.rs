//! Task-parallel resource optimization (Appendix C).
//!
//! Exploits the *semi-independent problems* property (§3.2): for a given
//! CP memory `r_c`, the per-block MR dimensions are independent. The
//! optimizer becomes a task system in the style of Orca's parallel query
//! optimization (which Appendix C cites): a central queue feeds `k`
//! workers three kinds of tasks —
//!
//! * **Baseline(r_c)** — compile the program at `(r_c, min)`, prune, and
//!   produce the per-block memo seeds;
//! * **Enum(r_c, block)** — enumerate the MR grid for one block,
//!   returning the locally optimal `(rⁱ, cost)`;
//! * **Agg(r_c)** — compile the whole program at the memoized assignment
//!   and cost it globally.
//!
//! Dependencies are purely forward (Baseline → Enum* → Agg per `r_c`),
//! so there are no global barriers: workers enumerate `r_c`'s blocks
//! while another worker compiles the baseline of `r_c+1` — the pipelining
//! effect of the paper's Figure 17. The master thread only schedules and
//! merges results (lock-free via channels).
//!
//! All workers share one [`WhatIfSession`]: a plan compiled for one grid
//! point is served from the breakpoint-keyed cache to every other worker
//! whose budgets fall in the same decision intervals. Candidate results
//! are buffered per CP index and folded in ascending grid order after
//! the scheduling loop, so the parallel optimizer returns bit-identical
//! results to the serial one regardless of task completion order.

use std::collections::BTreeMap;
use std::time::Instant;

use crossbeam::channel::{unbounded, Receiver, Sender};
use reml_compiler::build::Env;
use reml_compiler::pipeline::AnalyzedProgram;
use reml_compiler::session::WhatIfSession;
use reml_compiler::{CompileConfig, CompileError};

use crate::cache::{improves, stage_agg, stage_baseline, stage_enum_block, CostMemo};
use crate::optimizer::{OptimizationResult, OptimizerStats, ResourceOptimizer};
use crate::provenance::build_ledger;
use crate::resources::ResourceConfig;

enum Task {
    Baseline {
        rc_idx: usize,
        rc: u64,
    },
    Enum {
        rc_idx: usize,
        rc: u64,
        block_id: usize,
        baseline_cost: f64,
    },
    Agg {
        rc_idx: usize,
        rc: u64,
        enums: BTreeMap<usize, (u64, f64)>,
    },
}

enum Done {
    Baseline {
        rc_idx: usize,
        rc: u64,
        /// (block id, baseline cost) per unpruned block.
        blocks: Vec<(usize, f64)>,
        blocks_total: usize,
    },
    Enum {
        rc_idx: usize,
        block_id: usize,
        best_ri: u64,
        best_cost: f64,
    },
    Agg {
        rc_idx: usize,
        candidate: ResourceConfig,
        cost: f64,
    },
    Failed(CompileError),
}

/// Parallel variant of Algorithm 1 (see module docs).
pub fn optimize_parallel(
    opt: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    scope: Option<(usize, &Env)>,
    current_cp_heap: Option<u64>,
) -> Result<OptimizationResult, CompileError> {
    let start = Instant::now();
    let cc = &opt.cost_model.cluster;
    let (min_heap, max_heap) = (cc.min_heap_mb(), cc.max_heap_mb());
    let mut stats = OptimizerStats::default();

    // The shared what-if session (master, once): probe compile for grid
    // generation, breakpoint thresholds, and the plan caches all workers
    // serve from.
    let mut session = WhatIfSession::new(analyzed, base, scope, opt.config.plan_cache)?;
    let memo = CostMemo::new(opt.config.plan_cache);
    let mem_estimates: Vec<f64> = session
        .probe()
        .compiled
        .summaries
        .iter()
        .flat_map(|s| s.mem_estimates_mb.iter().copied())
        .collect();
    let mut src = opt
        .config
        .cp_grid
        .generate(min_heap, max_heap, &mem_estimates);
    let srm = opt
        .config
        .mr_grid
        .generate(min_heap, max_heap, &mem_estimates);
    stats.cp_points = src.len();
    stats.mr_points = srm.len();
    // The generated (pre-pruning) grid: the ledger's key space.
    let full_grid = src.clone();
    // Same soundness pruning as the serial path — the two must walk an
    // identical grid for bit-identical results.
    let t_prune = Instant::now();
    opt.prune_unsound_cp_points(analyzed, &mut session, base, &mut src, &mut stats);
    let prune_s = t_prune.elapsed().as_secs_f64();
    let _walk = reml_trace::span!(
        "optimize.grid_walk",
        cp_points = src.len(),
        mr_points = srm.len(),
        workers = opt.config.workers
    );
    let session = session;

    let (task_tx, task_rx) = unbounded::<Task>();
    let (done_tx, done_rx) = unbounded::<Done>();
    let workers = opt.config.workers.max(2) - 1;
    let deadline = opt.config.time_budget.map(|b| start + b);

    let candidates = std::thread::scope(
        |threads| -> Result<Vec<Option<(ResourceConfig, f64)>>, CompileError> {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                let (session, memo, srm) = (&session, &memo, &srm);
                threads.spawn(move || {
                    worker_loop(opt, session, memo, srm, deadline, task_rx, done_tx);
                });
            }
            drop(task_rx);
            drop(done_tx);

            // Master: seed baseline tasks and run the scheduling loop.
            for (rc_idx, &rc) in src.iter().enumerate() {
                task_tx
                    .send(Task::Baseline { rc_idx, rc })
                    .expect("workers alive");
            }

            let mut memo_per_rc: Vec<BTreeMap<usize, (u64, f64)>> =
                vec![BTreeMap::new(); src.len()];
            let mut pending_enums: Vec<usize> = vec![0; src.len()];
            let mut candidates: Vec<Option<(ResourceConfig, f64)>> = vec![None; src.len()];
            let mut completed = 0usize;
            let mut first_error: Option<CompileError> = None;

            while completed < src.len() {
                let Ok(done) = done_rx.recv() else { break };
                match done {
                    Done::Baseline {
                        rc_idx,
                        rc,
                        blocks,
                        blocks_total,
                    } => {
                        if rc_idx == 0 {
                            stats.blocks_total = blocks_total;
                            stats.blocks_remaining = blocks.len();
                        }
                        pending_enums[rc_idx] = blocks.len();
                        for &(block_id, cost) in &blocks {
                            memo_per_rc[rc_idx]
                                .entry(block_id)
                                .or_insert((min_heap, cost));
                        }
                        if blocks.is_empty() {
                            task_tx
                                .send(Task::Agg {
                                    rc_idx,
                                    rc,
                                    enums: BTreeMap::new(),
                                })
                                .expect("workers alive");
                        } else {
                            for (block_id, baseline_cost) in blocks {
                                task_tx
                                    .send(Task::Enum {
                                        rc_idx,
                                        rc,
                                        block_id,
                                        baseline_cost,
                                    })
                                    .expect("workers alive");
                            }
                        }
                    }
                    Done::Enum {
                        rc_idx,
                        block_id,
                        best_ri,
                        best_cost,
                    } => {
                        let entry = memo_per_rc[rc_idx]
                            .get_mut(&block_id)
                            .expect("memo seeded at baseline");
                        if best_cost < entry.1 {
                            *entry = (best_ri, best_cost);
                        }
                        pending_enums[rc_idx] -= 1;
                        if pending_enums[rc_idx] == 0 {
                            task_tx
                                .send(Task::Agg {
                                    rc_idx,
                                    rc: src[rc_idx],
                                    enums: memo_per_rc[rc_idx].clone(),
                                })
                                .expect("workers alive");
                        }
                    }
                    Done::Agg {
                        rc_idx,
                        candidate,
                        cost,
                    } => {
                        candidates[rc_idx] = Some((candidate, cost));
                        completed += 1;
                    }
                    Done::Failed(error) => {
                        completed += 1;
                        if first_error.is_none() {
                            first_error = Some(error);
                        }
                    }
                }
                if deadline.map(|d| Instant::now() > d).unwrap_or(false)
                    && candidates.iter().any(Option::is_some)
                {
                    stats.budget_exhausted = true;
                    break;
                }
            }
            drop(task_tx);
            if candidates.iter().all(Option::is_none) {
                if let Some(e) = first_error {
                    return Err(e);
                }
            }
            Ok(candidates)
        },
    )?;

    // Deterministic merge: fold candidates in ascending CP grid order,
    // exactly like the serial loop would.
    let mut best: Option<(ResourceConfig, f64)> = None;
    let mut best_local: Option<(ResourceConfig, f64)> = None;
    for (candidate, cost) in candidates.iter().flatten() {
        if improves(&best, candidate, *cost, cc) {
            best = Some((candidate.clone(), *cost));
        }
        if Some(candidate.cp_heap_mb) == current_cp_heap
            && improves(&best_local, candidate, *cost, cc)
        {
            best_local = Some((candidate.clone(), *cost));
        }
    }

    let session_stats = session.stats();
    stats.block_compilations = session_stats.block_compilations;
    stats.plan_cache_hits = session_stats.plan_cache_hits;
    stats.plan_cache_misses = session_stats.plan_cache_misses;
    stats.compilations_avoided = session_stats.compilations_avoided;
    stats.cost_invocations = memo.runs();
    stats.opt_time = start.elapsed();
    stats.fill_phases(
        memo.stage_time_us(),
        memo.cost_time_us(),
        session_stats.cache_lookup_us,
        prune_s,
    );
    stats.publish_metrics();
    let (best, best_cost_s) = best.ok_or_else(|| {
        CompileError::Internal("parallel optimizer enumerated no configurations".into())
    })?;
    let ledger = build_ledger(
        &full_grid,
        &src,
        &candidates,
        &best,
        best_cost_s,
        stats.sound_min_cp_budget_mb,
        cc,
    );
    Ok(OptimizationResult {
        best,
        best_cost_s,
        best_local,
        stats,
        ledger,
    })
}

fn worker_loop(
    opt: &ResourceOptimizer,
    session: &WhatIfSession<'_>,
    memo: &CostMemo,
    srm: &[u64],
    deadline: Option<Instant>,
    task_rx: Receiver<Task>,
    done_tx: Sender<Done>,
) {
    while let Ok(task) = task_rx.recv() {
        let result = match task {
            Task::Baseline { rc_idx, rc } => match stage_baseline(opt, session, memo, rc) {
                Ok(bl) => Done::Baseline {
                    rc_idx,
                    rc,
                    blocks: bl.blocks,
                    blocks_total: bl.blocks_total,
                },
                Err(error) => Done::Failed(error),
            },
            Task::Enum {
                rc_idx,
                rc,
                block_id,
                baseline_cost,
            } => {
                let ((best_ri, best_cost), _cut) = stage_enum_block(
                    opt,
                    session,
                    memo,
                    srm,
                    deadline,
                    rc,
                    block_id,
                    baseline_cost,
                );
                Done::Enum {
                    rc_idx,
                    block_id,
                    best_ri,
                    best_cost,
                }
            }
            Task::Agg { rc_idx, rc, enums } => match stage_agg(opt, session, memo, rc, &enums) {
                Ok((candidate, cost)) => Done::Agg {
                    rc_idx,
                    candidate,
                    cost,
                },
                Err(error) => Done::Failed(error),
            },
        };
        if done_tx.send(result).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cluster::ClusterConfig;
    use reml_compiler::pipeline::analyze_program;
    use reml_compiler::MrHeapAssignment;
    use reml_cost::CostModel;
    use reml_scripts::{DataShape, Scenario};

    fn setup(
        script: &reml_scripts::ScriptSpec,
        scenario: Scenario,
    ) -> (AnalyzedProgram, CompileConfig) {
        let shape = DataShape {
            scenario,
            cols: 1000,
            sparsity: 1.0,
        };
        let cfg = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        (analyze_program(&script.source).unwrap(), cfg)
    }

    #[test]
    fn parallel_matches_serial_result() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M);
        let mut serial = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        serial.config.workers = 1;
        let mut par = serial.clone();
        par.config.workers = 4;
        let rs = serial.optimize(&analyzed, &base, None).unwrap();
        let rp = par.optimize(&analyzed, &base, None).unwrap();
        assert_eq!(rs.best.cp_heap_mb, rp.best.cp_heap_mb);
        assert!((rs.best_cost_s - rp.best_cost_s).abs() < 1e-6);
    }

    #[test]
    fn parallel_identical_to_serial_bit_for_bit() {
        // The shared stage implementation plus rc-ordered candidate
        // folding makes the parallel optimizer deterministic: the full
        // configuration (including per-block MR overrides) and the cost
        // must match the serial result exactly.
        for script in [reml_scripts::linreg_cg(), reml_scripts::glm()] {
            let (analyzed, base) = setup(&script, Scenario::S);
            let cc = ClusterConfig::paper_cluster();
            let mut serial = ResourceOptimizer::new(CostModel::new(cc.clone()));
            serial.config.workers = 1;
            let mut par = serial.clone();
            par.config.workers = 4;
            let rs = serial
                .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
                .unwrap();
            let rp = par
                .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
                .unwrap();
            assert_eq!(rs.best, rp.best, "{}", script.name);
            assert_eq!(rs.best_cost_s.to_bits(), rp.best_cost_s.to_bits());
            assert_eq!(
                rs.best_local
                    .as_ref()
                    .map(|(c, s)| (c.clone(), s.to_bits())),
                rp.best_local
                    .as_ref()
                    .map(|(c, s)| (c.clone(), s.to_bits())),
            );
        }
    }

    #[test]
    fn parallel_on_glm_counts_work() {
        let script = reml_scripts::glm();
        let (analyzed, base) = setup(&script, Scenario::M);
        let mut par = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        par.config.workers = 4;
        let r = par.optimize(&analyzed, &base, None).unwrap();
        assert!(r.stats.block_compilations > 0);
        assert!(r.best_cost_s > 0.0);
    }

    #[test]
    fn parallel_local_optimum_reported() {
        let script = reml_scripts::linreg_cg();
        let (analyzed, base) = setup(&script, Scenario::S);
        let cc = ClusterConfig::paper_cluster();
        let mut par = ResourceOptimizer::new(CostModel::new(cc.clone()));
        par.config.workers = 4;
        let r = par
            .optimize(&analyzed, &base, Some(cc.min_heap_mb()))
            .unwrap();
        let (local, _) = r.best_local.expect("local requested");
        assert_eq!(local.cp_heap_mb, cc.min_heap_mb());
    }

    #[test]
    fn parallel_shares_the_plan_cache_across_workers() {
        let script = reml_scripts::linreg_ds();
        let (analyzed, base) = setup(&script, Scenario::M);
        let mut par = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        par.config.workers = 4;
        let r = par.optimize(&analyzed, &base, None).unwrap();
        assert!(r.stats.plan_cache_hits > 0, "{:?}", r.stats);
        assert!(r.stats.compilations_avoided > 0);
    }
}

//! Offer-based resource allocation — the Mesos instantiation of the ML
//! Program Resource Allocation Problem (§2.3).
//!
//! Under request-based negotiation (YARN) the optimizer *asks* for the
//! optimal configuration; under offer-based negotiation (Mesos) the
//! framework is *offered* concrete resource bundles and must decide which
//! (if any) to accept. The same what-if machinery applies: compile the
//! program under each offered configuration, cost the runtime plan, and
//! accept the offer with minimal cost — preferring smaller offers on
//! ties, and rejecting all offers whose cost exceeds a caller-provided
//! reservation value (e.g. the cost under currently held resources).

use reml_compiler::build::Env;
use reml_compiler::pipeline::AnalyzedProgram;
use reml_compiler::session::WhatIfSession;
use reml_compiler::{CompileConfig, CompileError};

use crate::optimizer::ResourceOptimizer;
use crate::resources::ResourceConfig;

/// Outcome of evaluating a round of offers.
#[derive(Debug, Clone)]
pub struct OfferDecision {
    /// Index of the accepted offer, or `None` when every offer was worse
    /// than the reservation cost.
    pub accepted: Option<usize>,
    /// Estimated cost of each offer, seconds (same order as input).
    pub costs_s: Vec<f64>,
}

/// Evaluate concrete resource offers for a program.
///
/// `reservation_cost_s` is the cost of declining all offers (e.g. the
/// estimate under the resources already held); pass `f64::INFINITY` when
/// the application holds nothing yet.
pub fn choose_offer(
    optimizer: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    offers: &[ResourceConfig],
    reservation_cost_s: f64,
    scope: Option<(usize, &Env)>,
) -> Result<OfferDecision, CompileError> {
    let cc = &optimizer.cost_model.cluster;
    if offers.is_empty() {
        return Ok(OfferDecision {
            accepted: None,
            costs_s: Vec::new(),
        });
    }
    // One what-if session per offer round: similar offers (budgets in the
    // same decision intervals) share compiled plans.
    let session = WhatIfSession::new(analyzed, base, scope, optimizer.config.plan_cache)?;
    let mut costs_s = Vec::with_capacity(offers.len());
    let mut best: Option<(usize, f64)> = None;
    for (idx, offer) in offers.iter().enumerate() {
        let plan = session.compile_plan(offer.cp_heap_mb, &offer.mr_heap)?;
        let heap_of = offer.mr_heap.clone();
        let cost = optimizer
            .cost_model
            .cost_program(&plan.compiled.runtime, offer.cp_heap_mb, &|bid| {
                heap_of.for_block(bid)
            })
            .total_s();
        costs_s.push(cost);
        let better = match &best {
            None => cost < reservation_cost_s,
            Some((best_idx, best_cost)) => {
                let tie = (cost - best_cost).abs() <= 0.001 * best_cost.max(1e-9);
                if tie {
                    offer.magnitude(cc) < offers[*best_idx].magnitude(cc)
                } else {
                    cost < *best_cost
                }
            }
        };
        if better {
            best = Some((idx, cost));
        }
    }
    Ok(OfferDecision {
        accepted: best.map(|(idx, _)| idx),
        costs_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_cluster::ClusterConfig;
    use reml_compiler::pipeline::analyze_program;
    use reml_compiler::MrHeapAssignment;
    use reml_cost::CostModel;
    use reml_scripts::{DataShape, Scenario};

    fn setup() -> (ResourceOptimizer, AnalyzedProgram, CompileConfig) {
        let script = reml_scripts::linreg_cg();
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 1000,
            sparsity: 1.0,
        };
        let base = script.compile_config(
            shape,
            ClusterConfig::paper_cluster(),
            512,
            MrHeapAssignment::uniform(512),
        );
        let optimizer = ResourceOptimizer::new(CostModel::new(ClusterConfig::paper_cluster()));
        (optimizer, analyze_program(&script.source).unwrap(), base)
    }

    #[test]
    fn picks_the_offer_that_fits_the_working_set() {
        let (opt, analyzed, base) = setup();
        // CG on 8 GB X: the 16 GB offer beats the 2 GB and 4 GB offers.
        let offers = vec![
            ResourceConfig::uniform(2 * 1024, 1024),
            ResourceConfig::uniform(4 * 1024, 1024),
            ResourceConfig::uniform(16 * 1024, 1024),
        ];
        let d = choose_offer(&opt, &analyzed, &base, &offers, f64::INFINITY, None).unwrap();
        assert_eq!(d.accepted, Some(2), "costs: {:?}", d.costs_s);
        assert!(d.costs_s[2] < d.costs_s[0]);
    }

    #[test]
    fn equal_cost_offers_resolve_to_smaller() {
        let (opt, analyzed, base) = setup();
        // Both offers hold X comfortably: costs tie, smaller wins.
        let offers = vec![
            ResourceConfig::uniform(48 * 1024, 1024),
            ResourceConfig::uniform(16 * 1024, 1024),
        ];
        let d = choose_offer(&opt, &analyzed, &base, &offers, f64::INFINITY, None).unwrap();
        assert_eq!(d.accepted, Some(1), "costs: {:?}", d.costs_s);
    }

    #[test]
    fn all_offers_declined_below_reservation() {
        let (opt, analyzed, base) = setup();
        let offers = vec![ResourceConfig::uniform(512, 512)];
        // Reservation cost better than anything offered: decline.
        let d = choose_offer(&opt, &analyzed, &base, &offers, 1.0, None).unwrap();
        assert_eq!(d.accepted, None);
        assert_eq!(d.costs_s.len(), 1);
    }

    #[test]
    fn empty_offer_round() {
        let (opt, analyzed, base) = setup();
        let d = choose_offer(&opt, &analyzed, &base, &[], f64::INFINITY, None).unwrap();
        assert_eq!(d.accepted, None);
        assert!(d.costs_s.is_empty());
    }
}

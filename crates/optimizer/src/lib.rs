//! # reml-optimizer — the resource optimizer (§3) and runtime adaptation (§4)
//!
//! Solves the ML Program Resource Allocation Problem (Definition 1): find
//! the resource configuration `R_P = (r_c, r¹, …, rⁿ)` minimizing the
//! estimated cost of the runtime plan the compiler generates, within the
//! cluster's min/max allocation constraints — and, among cost ties, the
//! *minimal* configuration (no over-provisioning).
//!
//! The optimizer is an **online what-if analysis**: for each enumerated
//! configuration it recompiles (parts of) the program and costs the
//! generated runtime plan, so every memory-sensitive compilation step is
//! automatically reflected (§2.4's robustness argument).
//!
//! * [`grid`] — grid-point generators: equi-spaced, exponentially spaced,
//!   memory-based (compiler estimates), and the hybrid composite (§3.3.2);
//! * [`optimizer`] — Algorithm 1 with program-aware pruning (§3.4) and
//!   memoization, plus the optimization-time budget;
//! * [`parallel`] — the task-parallel master/worker optimizer of
//!   Appendix C, exploiting the semi-independent-problems property;
//! * [`adapt`] — runtime resource adaptation: re-optimization scope
//!   expansion, the ΔC vs C_M migration decision, and migration cost
//!   estimation (§4);
//! * [`offers`] — the offer-based (Mesos) instantiation of the problem
//!   formulation (§2.3): evaluate concrete resource offers with the same
//!   what-if machinery.
//!
//! All four optimizer front ends (serial, parallel, offers, adaptation)
//! enumerate through one `reml_compiler::session::WhatIfSession` per
//! optimization round: what-if compilations are cached keyed by
//! *decision fingerprints* (the interval of the memory budget between
//! two plan-changing breakpoints), so grid points whose budgets cannot
//! change any compilation decision are served without recompiling.
//! [`OptimizerStats`] reports the cache behaviour alongside the paper's
//! overhead counters: `plan_cache_hits` / `plan_cache_misses` count
//! what-if requests served from / missing the session caches, and
//! `compilations_avoided` counts the generic-block compilations those
//! hits saved relative to a cache-bypass run (`OptimizerConfig::
//! plan_cache = false` forces that bypass for differential testing).

#![forbid(unsafe_code)]

pub mod adapt;
mod cache;
pub mod grid;
pub mod offers;
pub mod optimizer;
pub mod parallel;
pub mod provenance;
pub mod resources;

pub use adapt::{decide_adaptation, decide_recovery, AdaptationDecision, MigrationCost};
pub use grid::GridStrategy;
pub use offers::{choose_offer, OfferDecision};
pub use optimizer::{OptimizationResult, OptimizerConfig, OptimizerStats, ResourceOptimizer};
pub use provenance::{DecisionLedger, GridPointRecord, PointVerdict};
pub use resources::ResourceConfig;

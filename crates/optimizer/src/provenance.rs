//! Optimizer decision provenance: the per-grid-point ledger.
//!
//! Algorithm 1 walks the CP grid and keeps one winner; everything else
//! it learned along the way — which points were discarded by the
//! soundness analysis before costing, which were costed and by how much
//! they lost, which the time budget never reached — used to be thrown
//! away. The [`DecisionLedger`] retains that evidence: exactly one
//! [`GridPointRecord`] per *generated* CP grid point (pre-pruning), so a
//! report can answer "why this configuration?" without re-running the
//! optimizer. `reml_insight::explain` renders the ledger as the chosen
//! plan, the top-k runner-ups, and the marginal-resource analysis.
//!
//! Both optimizer front ends (serial and parallel) build the ledger from
//! the same candidate buffers through [`build_ledger`], after the best
//! configuration is folded — the ledger is derived from, and can never
//! perturb, the optimization outcome.

use reml_cluster::ClusterConfig;
use serde::Value;

use crate::resources::ResourceConfig;

/// Why a CP grid point did or did not become the chosen configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum PointVerdict {
    /// This point produced the globally best configuration `R*_P`.
    Chosen {
        /// Estimated cost of the point's aggregated assignment, seconds.
        cost_s: f64,
        /// Largest per-block MR heap of the winning assignment, MB.
        max_mr_mb: u64,
    },
    /// Costed, but beaten by the winner.
    Dominated {
        /// Estimated cost of the point's aggregated assignment, seconds.
        cost_s: f64,
        /// Largest per-block MR heap of this point's assignment, MB.
        max_mr_mb: u64,
        /// The winning competitor's CP heap, MB.
        by_cp_heap_mb: u64,
        /// Cost distance to the winner (`cost_s - chosen cost`), seconds.
        /// Slightly negative only in the tie case below.
        delta_s: f64,
        /// The costs tied (within 0.1%) and Definition 1 minimality broke
        /// the tie toward the smaller configuration.
        tie: bool,
    },
    /// Discarded before costing: the point's memory budget lies below the
    /// statically-proven minimum CP budget (`reml-sizebound`), so no plan
    /// at this point can execute the program's forced-CP operators.
    PrunedUnsound {
        /// The proven bound the point's budget fell short of, MB.
        sound_min_cp_budget_mb: f64,
    },
    /// Never costed: the optimization-time budget ran out — or the
    /// point's aggregate compilation failed — before a cost came out.
    Skipped,
}

impl PointVerdict {
    /// Stable snake_case tag for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PointVerdict::Chosen { .. } => "chosen",
            PointVerdict::Dominated { .. } => "dominated",
            PointVerdict::PrunedUnsound { .. } => "pruned_unsound",
            PointVerdict::Skipped => "skipped",
        }
    }

    /// The estimated cost, when this point was actually costed.
    pub fn cost_s(&self) -> Option<f64> {
        match self {
            PointVerdict::Chosen { cost_s, .. } | PointVerdict::Dominated { cost_s, .. } => {
                Some(*cost_s)
            }
            _ => None,
        }
    }
}

impl serde::Serialize for PointVerdict {
    fn to_value(&self) -> Value {
        let mut entries = vec![("kind".to_string(), Value::Str(self.name().to_string()))];
        match self {
            PointVerdict::Chosen { cost_s, max_mr_mb } => {
                entries.push(("cost_s".to_string(), Value::Num(*cost_s)));
                entries.push(("max_mr_mb".to_string(), Value::Num(*max_mr_mb as f64)));
            }
            PointVerdict::Dominated {
                cost_s,
                max_mr_mb,
                by_cp_heap_mb,
                delta_s,
                tie,
            } => {
                entries.push(("cost_s".to_string(), Value::Num(*cost_s)));
                entries.push(("max_mr_mb".to_string(), Value::Num(*max_mr_mb as f64)));
                entries.push((
                    "by_cp_heap_mb".to_string(),
                    Value::Num(*by_cp_heap_mb as f64),
                ));
                entries.push(("delta_s".to_string(), Value::Num(*delta_s)));
                entries.push(("tie".to_string(), Value::Bool(*tie)));
            }
            PointVerdict::PrunedUnsound {
                sound_min_cp_budget_mb,
            } => {
                entries.push((
                    "sound_min_cp_budget_mb".to_string(),
                    Value::Num(*sound_min_cp_budget_mb),
                ));
            }
            PointVerdict::Skipped => {}
        }
        Value::Object(entries)
    }
}

/// The ledger entry for one generated CP grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPointRecord {
    /// The grid point: CP max heap, MB.
    pub cp_heap_mb: u64,
    /// Its usable memory budget under the cluster's heap ratio, MB.
    pub cp_budget_mb: u64,
    /// What the optimizer decided about it.
    pub verdict: PointVerdict,
}

impl serde::Serialize for GridPointRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cp_heap_mb".to_string(), Value::Num(self.cp_heap_mb as f64)),
            (
                "cp_budget_mb".to_string(),
                Value::Num(self.cp_budget_mb as f64),
            ),
            ("verdict".to_string(), self.verdict.to_value()),
        ])
    }
}

/// The complete decision ledger of one optimization round: one record per
/// generated CP grid point, in ascending grid order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionLedger {
    /// One entry per generated (pre-pruning) CP grid point, ascending.
    pub points: Vec<GridPointRecord>,
    /// The statically-proven minimum CP budget, when one exists.
    pub sound_min_cp_budget_mb: Option<f64>,
}

impl DecisionLedger {
    /// The winning grid point's record.
    pub fn chosen(&self) -> Option<&GridPointRecord> {
        self.points
            .iter()
            .find(|p| matches!(p.verdict, PointVerdict::Chosen { .. }))
    }

    /// Up to `k` costed-but-dominated points, cheapest first (ties by
    /// smaller CP heap).
    pub fn runner_ups(&self, k: usize) -> Vec<&GridPointRecord> {
        let mut out: Vec<&GridPointRecord> = self
            .points
            .iter()
            .filter(|p| matches!(p.verdict, PointVerdict::Dominated { .. }))
            .collect();
        out.sort_by(|a, b| {
            let (ca, cb) = (a.verdict.cost_s().unwrap(), b.verdict.cost_s().unwrap());
            ca.partial_cmp(&cb)
                .expect("finite costs")
                .then(a.cp_heap_mb.cmp(&b.cp_heap_mb))
        });
        out.truncate(k);
        out
    }

    /// The estimated cost at a grid point, when it was costed.
    pub fn cost_at(&self, cp_heap_mb: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.cp_heap_mb == cp_heap_mb)
            .and_then(|p| p.verdict.cost_s())
    }

    /// The cheapest *costed* point whose CP heap is at least
    /// `min_cp_heap_mb` — the basis of the "+1 GB CP heap" marginal
    /// analysis.
    pub fn cheapest_costed_at_least(&self, min_cp_heap_mb: u64) -> Option<&GridPointRecord> {
        self.points
            .iter()
            .filter(|p| p.cp_heap_mb >= min_cp_heap_mb && p.verdict.cost_s().is_some())
            .min_by(|a, b| {
                a.verdict
                    .cost_s()
                    .partial_cmp(&b.verdict.cost_s())
                    .expect("finite costs")
            })
    }

    /// (costed, pruned, skipped) point counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut costed = 0;
        let mut pruned = 0;
        let mut skipped = 0;
        for p in &self.points {
            match p.verdict {
                PointVerdict::Chosen { .. } | PointVerdict::Dominated { .. } => costed += 1,
                PointVerdict::PrunedUnsound { .. } => pruned += 1,
                PointVerdict::Skipped => skipped += 1,
            }
        }
        (costed, pruned, skipped)
    }

    /// Ledger completeness: every generated grid point appears exactly
    /// once, in ascending grid order, with exactly one chosen point.
    pub fn check_complete(&self, full_grid: &[u64]) -> Result<(), String> {
        if self.points.len() != full_grid.len() {
            return Err(format!(
                "ledger has {} points for a {}-point grid",
                self.points.len(),
                full_grid.len()
            ));
        }
        for (rec, &heap) in self.points.iter().zip(full_grid) {
            if rec.cp_heap_mb != heap {
                return Err(format!(
                    "ledger point {} does not match grid point {heap}",
                    rec.cp_heap_mb
                ));
            }
        }
        let chosen = self
            .points
            .iter()
            .filter(|p| matches!(p.verdict, PointVerdict::Chosen { .. }))
            .count();
        if chosen != 1 {
            return Err(format!("{chosen} chosen points, expected exactly 1"));
        }
        Ok(())
    }
}

impl serde::Serialize for DecisionLedger {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "sound_min_cp_budget_mb".to_string(),
                self.sound_min_cp_budget_mb.to_value(),
            ),
            ("points".to_string(), self.points.to_value()),
        ])
    }
}

/// Assemble the ledger after the fold: `full_grid` is the generated
/// (pre-pruning) CP grid, `walked` the post-pruning grid the enumeration
/// actually visited, `candidates[i]` the aggregated `(config, cost)` of
/// `walked[i]` (`None` when the time budget cut enumeration short or the
/// point's compilation failed), and `best` the folded winner.
pub(crate) fn build_ledger(
    full_grid: &[u64],
    walked: &[u64],
    candidates: &[Option<(ResourceConfig, f64)>],
    best: &ResourceConfig,
    best_cost_s: f64,
    sound_min: Option<f64>,
    cc: &ClusterConfig,
) -> DecisionLedger {
    debug_assert_eq!(walked.len(), candidates.len());
    let mut points = Vec::with_capacity(full_grid.len());
    for &heap in full_grid {
        let verdict = match walked.iter().position(|&w| w == heap) {
            None => PointVerdict::PrunedUnsound {
                sound_min_cp_budget_mb: sound_min.unwrap_or(0.0),
            },
            Some(idx) => match &candidates[idx] {
                None => PointVerdict::Skipped,
                Some((cfg, cost)) if cfg.cp_heap_mb == best.cp_heap_mb => PointVerdict::Chosen {
                    cost_s: *cost,
                    max_mr_mb: cfg.max_mr_mb(),
                },
                Some((cfg, cost)) => {
                    let delta_s = cost - best_cost_s;
                    PointVerdict::Dominated {
                        cost_s: *cost,
                        max_mr_mb: cfg.max_mr_mb(),
                        by_cp_heap_mb: best.cp_heap_mb,
                        delta_s,
                        tie: delta_s.abs() <= 0.001 * best_cost_s.max(1e-9),
                    }
                }
            },
        };
        points.push(GridPointRecord {
            cp_heap_mb: heap,
            cp_budget_mb: cc.budget_mb_for_heap(heap),
            verdict,
        });
    }
    DecisionLedger {
        points,
        sound_min_cp_budget_mb: sound_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    fn cfg(cp: u64) -> ResourceConfig {
        ResourceConfig::uniform(cp, 512)
    }

    #[test]
    fn ledger_classifies_every_point() {
        let full = [512u64, 1024, 2048, 4096];
        let walked = [2048u64, 4096];
        let candidates = vec![Some((cfg(2048), 10.0)), Some((cfg(4096), 12.5))];
        let ledger = build_ledger(
            &full,
            &walked,
            &candidates,
            &cfg(2048),
            10.0,
            Some(1500.0),
            &cc(),
        );
        ledger.check_complete(&full).unwrap();
        let (costed, pruned, skipped) = ledger.counts();
        assert_eq!((costed, pruned, skipped), (2, 2, 0));
        assert_eq!(ledger.chosen().unwrap().cp_heap_mb, 2048);
        let rus = ledger.runner_ups(5);
        assert_eq!(rus.len(), 1);
        assert_eq!(rus[0].cp_heap_mb, 4096);
        match &rus[0].verdict {
            PointVerdict::Dominated {
                by_cp_heap_mb,
                delta_s,
                tie,
                ..
            } => {
                assert_eq!(*by_cp_heap_mb, 2048);
                assert!((delta_s - 2.5).abs() < 1e-12);
                assert!(!tie);
            }
            other => panic!("expected dominated, got {other:?}"),
        }
        assert_eq!(ledger.cost_at(4096), Some(12.5));
        assert_eq!(ledger.cost_at(512), None);
        assert_eq!(
            ledger.cheapest_costed_at_least(3000).unwrap().cp_heap_mb,
            4096
        );
    }

    #[test]
    fn skipped_points_and_incompleteness_are_detected() {
        let full = [512u64, 1024];
        let walked = [512u64, 1024];
        let candidates = vec![Some((cfg(512), 5.0)), None];
        let ledger = build_ledger(&full, &walked, &candidates, &cfg(512), 5.0, None, &cc());
        ledger.check_complete(&full).unwrap();
        assert_eq!(ledger.points[1].verdict, PointVerdict::Skipped);
        assert!(ledger.check_complete(&[512]).is_err());
        assert!(ledger.check_complete(&[512, 2048]).is_err());
    }

    #[test]
    fn serializes_with_stable_keys() {
        let full = [512u64];
        let ledger = build_ledger(
            &full,
            &full,
            &[Some((cfg(512), 5.0))],
            &cfg(512),
            5.0,
            None,
            &cc(),
        );
        let v = serde::Serialize::to_value(&ledger);
        let Value::Object(entries) = &v else {
            panic!("ledger serializes to an object")
        };
        assert_eq!(entries[0].0, "sound_min_cp_budget_mb");
        assert_eq!(entries[0].1, Value::Null);
        let Value::Array(points) = &entries[1].1 else {
            panic!("points array")
        };
        let Value::Object(point) = &points[0] else {
            panic!("point object")
        };
        let Some((_, Value::Object(verdict))) = point.iter().find(|(k, _)| k == "verdict") else {
            panic!("verdict object")
        };
        assert!(verdict.contains(&("kind".to_string(), Value::Str("chosen".to_string()))));
    }
}

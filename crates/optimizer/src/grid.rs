//! Grid-point generators (§3.3.2).
//!
//! All generators produce ascending, deduplicated heap sizes in MB within
//! `[min_mb, max_mb]`:
//!
//! * **Equi-spaced**: fixed gaps, systematic coverage;
//! * **Exp-spaced**: gap doubles each step — logarithmic point count,
//!   exploiting that plan changes are denser at small configurations;
//! * **Memory-based**: points bracketing the compiler's operator memory
//!   estimates — plan changes happen exactly at those thresholds;
//! * **Hybrid** (the default): union of memory-based and exp-spaced —
//!   directed *and* systematic search.

/// A grid-point generation strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridStrategy {
    /// Equi-spaced with a fixed number of points.
    Equi {
        /// Number of points (≥ 2).
        points: usize,
    },
    /// Exponentially spaced: `g_i = w^(i-1) · min`.
    Exp {
        /// Gap growth factor (default 2.0).
        factor: f64,
    },
    /// Memory-based: estimates bracketed onto an equi-spaced base grid.
    MemBased {
        /// Number of points of the underlying base grid.
        base_points: usize,
    },
    /// Union of memory-based and exp-spaced (the paper's default).
    Hybrid {
        /// Number of points of the memory-based base grid.
        base_points: usize,
    },
}

impl GridStrategy {
    /// The paper's default configuration (Hybrid, m=15).
    pub fn default_hybrid() -> Self {
        GridStrategy::Hybrid { base_points: 15 }
    }

    /// Generate ascending grid points.
    ///
    /// `mem_estimates_mb` are the compiler's operator memory estimates
    /// (ignored by the program-independent strategies). Estimates outside
    /// `[min, max]` clamp to the boundary values (§3.3.2).
    pub fn generate(&self, min_mb: u64, max_mb: u64, mem_estimates_mb: &[f64]) -> Vec<u64> {
        let mut points = match self {
            GridStrategy::Equi { points } => equi_points(min_mb, max_mb, *points),
            GridStrategy::Exp { factor } => exp_points(min_mb, max_mb, *factor),
            GridStrategy::MemBased { base_points } => {
                mem_points(min_mb, max_mb, *base_points, mem_estimates_mb)
            }
            GridStrategy::Hybrid { base_points } => {
                let mut p = mem_points(min_mb, max_mb, *base_points, mem_estimates_mb);
                p.extend(exp_points(min_mb, max_mb, 2.0));
                p
            }
        };
        points.push(min_mb);
        points.retain(|p| *p >= min_mb && *p <= max_mb);
        points.sort_unstable();
        points.dedup();
        points
    }
}

fn equi_points(min_mb: u64, max_mb: u64, m: usize) -> Vec<u64> {
    let m = m.max(2);
    let gap = (max_mb.saturating_sub(min_mb)) as f64 / (m - 1) as f64;
    (0..m)
        .map(|i| (min_mb as f64 + gap * i as f64).round() as u64)
        .collect()
}

fn exp_points(min_mb: u64, max_mb: u64, factor: f64) -> Vec<u64> {
    let factor = factor.max(1.1);
    let mut points = Vec::new();
    let mut v = min_mb as f64;
    let mut gap = min_mb as f64;
    while v <= max_mb as f64 {
        points.push(v.round() as u64);
        v += gap;
        gap *= factor;
    }
    points.push(max_mb);
    points
}

/// Memory-based: start from an equi-spaced base grid, keep only points
/// adjacent to an operator memory estimate, plus min/max.
fn mem_points(min_mb: u64, max_mb: u64, base_points: usize, estimates: &[f64]) -> Vec<u64> {
    let base = equi_points(min_mb, max_mb, base_points.max(2));
    let mut out = vec![min_mb, max_mb];
    // Heap sizes whose *budget* equals the estimate: heap = est / 0.7.
    let thresholds: Vec<f64> = estimates
        .iter()
        .map(|est| est / reml_cluster::config::BUDGET_HEAP_RATIO)
        .collect();
    for window in base.windows(2) {
        let (lo, hi) = (window[0] as f64, window[1] as f64);
        if thresholds.iter().any(|t| {
            let t = t.clamp(min_mb as f64, max_mb as f64);
            t >= lo && t <= hi
        }) {
            out.push(window[0]);
            out.push(window[1]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN: u64 = 512;
    const MAX: u64 = 54_613; // paper max heap

    #[test]
    fn equi_count_and_bounds() {
        let g = GridStrategy::Equi { points: 15 }.generate(MIN, MAX, &[]);
        assert_eq!(g.len(), 15);
        assert_eq!(*g.first().unwrap(), MIN);
        assert_eq!(*g.last().unwrap(), MAX);
        // Sorted ascending.
        assert!(g.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn exp_is_logarithmic() {
        let g = GridStrategy::Exp { factor: 2.0 }.generate(MIN, MAX, &[]);
        // Paper: 8 points for this range (incl. forced max).
        assert!(g.len() <= 9, "{g:?}");
        assert!(g.len() >= 7, "{g:?}");
        assert_eq!(*g.first().unwrap(), MIN);
        assert_eq!(*g.last().unwrap(), MAX);
    }

    #[test]
    fn mem_based_depends_on_data() {
        // Small data: all estimates below min -> only min (and max).
        let g_small = GridStrategy::MemBased { base_points: 15 }.generate(MIN, MAX, &[10.0]);
        assert!(g_small.len() <= 3, "{g_small:?}");
        // Medium data: estimates inside -> bracketing points appear.
        let ests = [4_000.0, 9_000.0, 20_000.0];
        let g_medium = GridStrategy::MemBased { base_points: 15 }.generate(MIN, MAX, &ests);
        assert!(g_medium.len() > g_small.len(), "{g_medium:?}");
        for est in ests {
            let heap = est / 0.7;
            // Some adjacent pair brackets the estimate threshold.
            assert!(
                g_medium
                    .windows(2)
                    .any(|w| (w[0] as f64) <= heap && heap <= w[1] as f64),
                "estimate {est} not bracketed in {g_medium:?}"
            );
        }
    }

    #[test]
    fn mem_based_worst_case_equals_equi() {
        // Estimates spread everywhere: the full base grid returns.
        let ests: Vec<f64> = (0..100)
            .map(|i| MIN as f64 + (MAX - MIN) as f64 * (i as f64 / 99.0) * 0.7)
            .collect();
        let g = GridStrategy::MemBased { base_points: 15 }.generate(MIN, MAX, &ests);
        let e = GridStrategy::Equi { points: 15 }.generate(MIN, MAX, &[]);
        assert_eq!(g, e);
    }

    #[test]
    fn hybrid_superset_of_exp() {
        let exp = GridStrategy::Exp { factor: 2.0 }.generate(MIN, MAX, &[4000.0]);
        let hybrid = GridStrategy::default_hybrid().generate(MIN, MAX, &[4000.0]);
        for p in &exp {
            assert!(hybrid.contains(p), "{p} missing from hybrid {hybrid:?}");
        }
        assert!(hybrid.len() >= exp.len());
    }

    #[test]
    fn estimates_clamped_to_bounds() {
        // Estimate above max: clamps to max, bracketed by last window.
        let g = GridStrategy::MemBased { base_points: 15 }.generate(MIN, MAX, &[1e9]);
        assert!(g.contains(&MAX));
        assert!(g.len() >= 2);
    }

    #[test]
    fn min_always_present() {
        for strategy in [
            GridStrategy::Equi { points: 5 },
            GridStrategy::Exp { factor: 2.0 },
            GridStrategy::MemBased { base_points: 5 },
            GridStrategy::default_hybrid(),
        ] {
            let g = strategy.generate(MIN, MAX, &[]);
            assert_eq!(*g.first().unwrap(), MIN, "{strategy:?}");
        }
    }

    #[test]
    fn degenerate_range() {
        let g = GridStrategy::Equi { points: 15 }.generate(1024, 1024, &[]);
        assert_eq!(g, vec![1024]);
    }
}

//! Runtime resource adaptation (§4): re-optimization scope, migration
//! cost estimation, and the ΔC vs C_M decision.
//!
//! Triggered from dynamic recompilation when a recompiled block still
//! contains MR jobs: the adaptation loop (1) expands the re-optimization
//! scope from the current position to the enclosing top-level block
//! through the end of the program, (2) re-runs the resource optimizer
//! over that scope with the *actual* runtime sizes, (3) migrates the AM
//! when the cost benefit amortizes the migration cost, and otherwise
//! applies the locally optimal MR configuration in place.

use reml_cluster::ClusterConfig;
use reml_compiler::build::Env;
use reml_compiler::pipeline::{top_level_index_of, AnalyzedProgram};
use reml_compiler::{CompileConfig, CompileError};
use reml_lang::BlockId;

use crate::optimizer::ResourceOptimizer;
use crate::resources::ResourceConfig;

/// Estimated cost of an AM migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// Export of dirty live variables to HDFS plus restore at the new AM.
    pub io_s: f64,
    /// Allocation latency of the new container.
    pub latency_s: f64,
}

impl MigrationCost {
    /// Total migration cost C_M, seconds.
    pub fn total_s(&self) -> f64 {
        self.io_s + self.latency_s
    }
}

/// Estimate C_M: "the sum of IO costs for live variables and latency for
/// allocating a new container" (§4.2). Dirty variables are written by the
/// old AM and read back on first use by the new one.
pub fn estimate_migration_cost(cc: &ClusterConfig, dirty_bytes: u64) -> MigrationCost {
    let mb = dirty_bytes as f64 / (1024.0 * 1024.0);
    MigrationCost {
        io_s: mb / cc.hdfs_write_mbs + mb / cc.hdfs_read_mbs,
        latency_s: cc.container_alloc_latency_s,
    }
}

/// The adaptation decision.
#[derive(Debug, Clone)]
pub struct AdaptationDecision {
    /// Whether to migrate the AM to the globally optimal configuration.
    pub migrate: bool,
    /// The configuration to run with after the decision (global optimum
    /// if migrating, `R*|r_c` otherwise).
    pub target: ResourceConfig,
    /// The globally optimal configuration and its cost.
    pub global: (ResourceConfig, f64),
    /// The rc-constrained optimum and its cost.
    pub local: (ResourceConfig, f64),
    /// Cost benefit ΔC = C(P', R*) − C(P', R*|r_c) (≤ 0).
    pub delta_cost_s: f64,
    /// Estimated migration cost C_M.
    pub migration_cost_s: f64,
}

/// Decide on runtime adaptation at a dynamic-recompilation point.
///
/// * `current_block` — the block being recompiled (scope anchor);
/// * `runtime_env` — environment built from actual runtime sizes
///   ([`reml_compiler::pipeline::env_from_runtime_state`]);
/// * `current_cp_heap` — the AM's current heap;
/// * `dirty_bytes` — total size of dirty live variables.
#[allow(clippy::too_many_arguments)]
pub fn decide_adaptation(
    optimizer: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    current_block: BlockId,
    runtime_env: &Env,
    current_cp_heap: u64,
    dirty_bytes: u64,
) -> Result<AdaptationDecision, CompileError> {
    // (1) Re-optimization scope: enclosing top-level block → end.
    let scope_start = top_level_index_of(analyzed, current_block).unwrap_or(0);

    // (2) Re-run the resource optimizer over the scope with actual sizes.
    let result = optimizer.optimize_scope(
        analyzed,
        base,
        Some((scope_start, runtime_env)),
        Some(current_cp_heap),
    )?;
    let global = (result.best.clone(), result.best_cost_s);
    let local = result.best_local.clone().unwrap_or_else(|| {
        // The current rc was not a grid point: approximate the local
        // optimum by the global MR assignment under the current heap.
        (
            ResourceConfig {
                cp_heap_mb: current_cp_heap,
                mr_heap: result.best.mr_heap.clone(),
            },
            result.best_cost_s,
        )
    });

    // (3) Migration decision: ΔC must amortize C_M.
    let migration = estimate_migration_cost(&optimizer.cost_model.cluster, dirty_bytes);
    let delta = global.1 - local.1; // ≤ 0 when migration helps
    let migrate = global.0.cp_heap_mb != current_cp_heap && -delta > migration.total_s();
    let target = if migrate {
        global.0.clone()
    } else {
        local.0.clone()
    };
    Ok(AdaptationDecision {
        migrate,
        target,
        global,
        local,
        delta_cost_s: delta,
        migration_cost_s: migration.total_s(),
    })
}

/// Decide on the resources of a *restarted* AM after a fault killed the
/// previous one (fault-triggered §4 recovery).
///
/// Unlike a voluntary migration, the application pays the restart no
/// matter what: dirty state is already lost (nothing to export) and a
/// new container must be allocated anyway. The marginal cost of coming
/// back at the globally optimal configuration instead of the old one is
/// therefore only a scheduling premium — one extra container-allocation
/// latency to model the risk that a larger container queues behind
/// other tenants. ΔC must beat that premium, not a full C_M.
pub fn decide_recovery(
    optimizer: &ResourceOptimizer,
    analyzed: &AnalyzedProgram,
    base: &CompileConfig,
    current_block: BlockId,
    runtime_env: &Env,
    current_cp_heap: u64,
) -> Result<AdaptationDecision, CompileError> {
    let mut decision = decide_adaptation(
        optimizer,
        analyzed,
        base,
        current_block,
        runtime_env,
        current_cp_heap,
        0, // dirty state died with the old AM: no export IO
    )?;
    let premium = optimizer.cost_model.cluster.container_alloc_latency_s;
    decision.migration_cost_s = premium;
    decision.migrate =
        decision.global.0.cp_heap_mb != current_cp_heap && -decision.delta_cost_s > premium;
    decision.target = if decision.migrate {
        decision.global.0.clone()
    } else {
        decision.local.0.clone()
    };
    Ok(decision)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reml_compiler::pipeline::{analyze_program, env_from_runtime_state};
    use reml_compiler::MrHeapAssignment;
    use reml_cost::CostModel;
    use reml_matrix::MatrixCharacteristics;
    use reml_runtime::ScalarValue;
    use reml_scripts::{DataShape, Scenario};
    use std::collections::HashMap;

    #[test]
    fn migration_cost_components() {
        let cc = ClusterConfig::paper_cluster();
        let c = estimate_migration_cost(&cc, 100 * 1024 * 1024);
        assert!(c.io_s > 0.0);
        assert_eq!(c.latency_s, cc.container_alloc_latency_s);
        assert!(c.total_s() > c.io_s);
        // Zero dirty bytes: latency only.
        let c0 = estimate_migration_cost(&cc, 0);
        assert_eq!(c0.io_s, 0.0);
    }

    #[test]
    fn adaptation_migrates_when_k_becomes_known() {
        // MLogreg on M data: initially unknown k prevents good initial
        // configuration. At runtime, k is known: re-optimization over the
        // core loop scope should prefer a larger CP than the minimum and
        // migrate (the Figure 15 behaviour).
        let script = reml_scripts::mlogreg();
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 100,
            sparsity: 1.0,
        };
        let cc = ClusterConfig::paper_cluster();
        let base = script.compile_config(shape, cc.clone(), 512, MrHeapAssignment::uniform(512));
        let analyzed = analyze_program(&script.source).unwrap();

        // Runtime state: Y materialized as n x 5, k = 5.
        let n = shape.rows();
        let mut mats = HashMap::new();
        mats.insert("X".to_string(), shape.x_characteristics());
        mats.insert("Y".to_string(), MatrixCharacteristics::known(n, 5, n));
        mats.insert("y".to_string(), MatrixCharacteristics::dense(n, 1));
        mats.insert("B".to_string(), MatrixCharacteristics::dense(100, 5));
        mats.insert(
            "scale_lambda".to_string(),
            MatrixCharacteristics::dense(n, 1),
        );
        let mut scalars = HashMap::new();
        scalars.insert("k".to_string(), ScalarValue::Num(5.0));
        scalars.insert("n".to_string(), ScalarValue::Num(n as f64));
        scalars.insert("m".to_string(), ScalarValue::Num(100.0));
        scalars.insert("lambda".to_string(), ScalarValue::Num(0.01));
        scalars.insert("eps".to_string(), ScalarValue::Num(1e-9));
        scalars.insert("maxi".to_string(), ScalarValue::Num(5.0));
        scalars.insert("iter".to_string(), ScalarValue::Num(0.0));
        scalars.insert("delta_init".to_string(), ScalarValue::Num(1.0));
        scalars.insert("converge".to_string(), ScalarValue::Bool(false));
        let env = env_from_runtime_state(&mats, &scalars);

        // Anchor at the core while loop.
        let loop_block = analyzed
            .blocks
            .iter()
            .find(|b| matches!(b.kind, reml_lang::StatementBlockKind::While { .. }))
            .map(|b| b.id)
            .expect("mlogreg has a loop");

        let optimizer = ResourceOptimizer::new(CostModel::new(cc));
        let decision = decide_adaptation(
            &optimizer,
            &analyzed,
            &base,
            loop_block,
            &env,
            512,
            8 * 1024 * 1024, // 8 MB dirty state
        )
        .unwrap();
        assert!(
            decision.migrate,
            "expected migration; decision: global={} local={} dC={} CM={}",
            decision.global.0.display_gb(),
            decision.local.0.display_gb(),
            decision.delta_cost_s,
            decision.migration_cost_s
        );
        assert!(decision.target.cp_heap_mb > 512);
    }

    #[test]
    fn no_migration_when_benefit_small() {
        // LinregDS on XS: no benefit from moving; stay put.
        let script = reml_scripts::linreg_ds();
        let shape = DataShape {
            scenario: Scenario::XS,
            cols: 100,
            sparsity: 1.0,
        };
        let cc = ClusterConfig::paper_cluster();
        let base = script.compile_config(shape, cc.clone(), 512, MrHeapAssignment::uniform(512));
        let analyzed = analyze_program(&script.source).unwrap();
        let env = Env::new();
        let optimizer = ResourceOptimizer::new(CostModel::new(cc));
        let decision =
            decide_adaptation(&optimizer, &analyzed, &base, BlockId(0), &env, 512, 0).unwrap();
        assert!(!decision.migrate);
        assert_eq!(decision.target.cp_heap_mb, 512);
    }

    #[test]
    fn recovery_keeps_config_when_benefit_below_premium() {
        // LinregDS XS after an AM kill: restarting bigger buys nothing,
        // so the recovered AM comes back at the old size.
        let script = reml_scripts::linreg_ds();
        let shape = DataShape {
            scenario: Scenario::XS,
            cols: 100,
            sparsity: 1.0,
        };
        let cc = ClusterConfig::paper_cluster();
        let base = script.compile_config(shape, cc.clone(), 512, MrHeapAssignment::uniform(512));
        let analyzed = analyze_program(&script.source).unwrap();
        let optimizer = ResourceOptimizer::new(CostModel::new(cc.clone()));
        let decision =
            decide_recovery(&optimizer, &analyzed, &base, BlockId(0), &Env::new(), 512).unwrap();
        assert!(!decision.migrate);
        assert_eq!(decision.target.cp_heap_mb, 512);
        assert_eq!(decision.migration_cost_s, cc.container_alloc_latency_s);
    }

    #[test]
    fn recovery_upgrades_when_known_sizes_favor_large_cp() {
        // Same setting as the migration test: after an AM kill with k
        // known, the restarted AM should come back at the global optimum
        // even though there is no dirty state to export.
        let script = reml_scripts::mlogreg();
        let shape = DataShape {
            scenario: Scenario::M,
            cols: 100,
            sparsity: 1.0,
        };
        let cc = ClusterConfig::paper_cluster();
        let base = script.compile_config(shape, cc.clone(), 512, MrHeapAssignment::uniform(512));
        let analyzed = analyze_program(&script.source).unwrap();
        let n = shape.rows();
        let mut mats = HashMap::new();
        mats.insert("X".to_string(), shape.x_characteristics());
        mats.insert("Y".to_string(), MatrixCharacteristics::known(n, 5, n));
        mats.insert("y".to_string(), MatrixCharacteristics::dense(n, 1));
        mats.insert("B".to_string(), MatrixCharacteristics::dense(100, 5));
        mats.insert(
            "scale_lambda".to_string(),
            MatrixCharacteristics::dense(n, 1),
        );
        let mut scalars = HashMap::new();
        scalars.insert("k".to_string(), ScalarValue::Num(5.0));
        scalars.insert("n".to_string(), ScalarValue::Num(n as f64));
        scalars.insert("m".to_string(), ScalarValue::Num(100.0));
        scalars.insert("lambda".to_string(), ScalarValue::Num(0.01));
        scalars.insert("eps".to_string(), ScalarValue::Num(1e-9));
        scalars.insert("maxi".to_string(), ScalarValue::Num(5.0));
        scalars.insert("iter".to_string(), ScalarValue::Num(0.0));
        scalars.insert("delta_init".to_string(), ScalarValue::Num(1.0));
        scalars.insert("converge".to_string(), ScalarValue::Bool(false));
        let env = env_from_runtime_state(&mats, &scalars);
        let loop_block = analyzed
            .blocks
            .iter()
            .find(|b| matches!(b.kind, reml_lang::StatementBlockKind::While { .. }))
            .map(|b| b.id)
            .expect("mlogreg has a loop");
        let optimizer = ResourceOptimizer::new(CostModel::new(cc));
        let recovery =
            decide_recovery(&optimizer, &analyzed, &base, loop_block, &env, 512).unwrap();
        assert!(recovery.migrate);
        assert!(recovery.target.cp_heap_mb > 512);
        // The recovery threshold is no stricter than a full migration's:
        // anything a voluntary migration would do, a free restart does.
        let full = decide_adaptation(
            &optimizer,
            &analyzed,
            &base,
            loop_block,
            &env,
            512,
            64 * 1024 * 1024,
        )
        .unwrap();
        assert!(recovery.migration_cost_s <= full.migration_cost_s);
    }
}

//! Shared grid-walk stages and cost memoization over a what-if session.
//!
//! Algorithm 1's inner loop — baseline compile, per-block MR
//! enumeration, aggregate compile-and-cost — used to be duplicated
//! across the serial optimizer, the parallel task system, offer
//! evaluation, and runtime re-optimization. This module holds the
//! single implementation of those stages; each optimizer front end only
//! decides *which* grid points to walk and in what order. All
//! compilation goes through the [`WhatIfSession`]'s breakpoint-keyed
//! caches, and per-block costing is memoized here keyed by
//! `(block, r_c, rⁱ)` (the cost model reads the actual heap sizes, not
//! just the plan, so the raw heaps stay in the key).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use reml_compiler::session::{PlanHandle, WhatIfSession};
use reml_compiler::{CompileError, MrHeapAssignment};
use reml_cost::VarStates;
use reml_runtime::Instruction;

use crate::optimizer::ResourceOptimizer;
use crate::resources::ResourceConfig;

/// Memoized per-block costing. `runs` counts actual cost-model
/// executions (the paper's "# Cost."); hits return the stored value
/// without running the model.
pub(crate) struct CostMemo {
    enabled: bool,
    /// (block id, cp heap, mr heap) → cost in f64 bits.
    map: Mutex<HashMap<(usize, u64, u64), u64>>,
    runs: AtomicU64,
    hits: AtomicU64,
    /// Wall time inside actual cost-model executions, microseconds (the
    /// "cost" column of the Table 3 phase split). Shared atomics so the
    /// parallel optimizer's workers accumulate into the same totals.
    cost_us: AtomicU64,
    /// Wall time inside the grid-walk stages (baseline/enum/agg) overall,
    /// microseconds; enumerate time = stage time − cost time.
    stage_us: AtomicU64,
    /// Plan requests already lint-verified this round (debug builds):
    /// each distinct `(r_c, mr assignment)` is checked once, bounded by
    /// the grid size.
    #[cfg(debug_assertions)]
    verified: Mutex<std::collections::HashSet<PlanReq>>,
}

/// A concrete plan request: `(r_c, default rⁱ, per-block overrides)`.
#[cfg(debug_assertions)]
type PlanReq = (u64, u64, Vec<(usize, u64)>);

impl CostMemo {
    pub(crate) fn new(enabled: bool) -> Self {
        CostMemo {
            enabled,
            map: Mutex::new(HashMap::new()),
            runs: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            cost_us: AtomicU64::new(0),
            stage_us: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            verified: Mutex::new(std::collections::HashSet::new()),
        }
    }

    /// Cost a block's instructions under `(rc, ri)`, memoized.
    pub(crate) fn cost_block(
        &self,
        opt: &ResourceOptimizer,
        instructions: &[Instruction],
        block_id: usize,
        rc: u64,
        ri: u64,
    ) -> f64 {
        let key = (block_id, rc, ri);
        if self.enabled {
            if let Some(bits) = self.map.lock().get(&key).copied() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return f64::from_bits(bits);
            }
        }
        let t0 = Instant::now();
        let cost = opt
            .cost_model
            .cost_instructions(instructions, rc, ri, &mut VarStates::new())
            .total_s();
        self.cost_us
            .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.runs.fetch_add(1, Ordering::Relaxed);
        if self.enabled {
            self.map.lock().insert(key, cost.to_bits());
        }
        cost
    }

    /// Record an unmemoized cost-model run (whole-program costing).
    pub(crate) fn count_direct(&self) {
        self.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Actual cost-model executions so far.
    pub(crate) fn runs(&self) -> u64 {
        self.runs.load(Ordering::Relaxed)
    }

    /// Wall time spent inside the cost model so far, microseconds.
    pub(crate) fn cost_time_us(&self) -> u64 {
        self.cost_us.load(Ordering::Relaxed)
    }

    /// Wall time spent inside grid-walk stages so far, microseconds.
    /// Under the parallel optimizer this sums across workers, so it can
    /// exceed the elapsed wall time — it is CPU time spent enumerating.
    pub(crate) fn stage_time_us(&self) -> u64 {
        self.stage_us.load(Ordering::Relaxed)
    }

    /// RAII timer charging its scope to the stage total.
    fn stage_timer(&self) -> StageTimer<'_> {
        StageTimer {
            memo: self,
            start: Instant::now(),
        }
    }
}

struct StageTimer<'a> {
    memo: &'a CostMemo,
    start: Instant,
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        self.memo
            .stage_us
            .fetch_add(self.start.elapsed().as_micros() as u64, Ordering::Relaxed);
    }
}

/// Debug-mode plan verification (the linter's first wiring point): every
/// distinct plan request the grid walk makes is linted against the full
/// rule catalog, and — because `compile_plan` may have served it from
/// the breakpoint-keyed cache — re-compiled fresh and compared. A cached
/// plan that differs from the fresh compile, or lints differently, means
/// the threshold fingerprinting collided.
#[cfg(debug_assertions)]
fn debug_verify_plan(
    session: &WhatIfSession<'_>,
    memo: &CostMemo,
    rc: u64,
    mr_heap: &MrHeapAssignment,
    plan: &PlanHandle,
) {
    let req: PlanReq = (
        rc,
        mr_heap.default_mb,
        mr_heap.per_block.iter().map(|(b, h)| (*b, *h)).collect(),
    );
    if !memo.verified.lock().insert(req) {
        return;
    }
    let cfg = reml_compiler::session::with_resources(session.base(), rc, mr_heap.clone());
    let report = reml_planlint::lint_compiled(session.analyzed(), &plan.compiled, &cfg);
    assert!(
        report.is_empty(),
        "plan lint failed at (rc={rc} MB, ri={} MB):\n{}",
        mr_heap.default_mb,
        report.render()
    );
    let fresh = session
        .compile_plan_uncached(rc, mr_heap)
        .expect("fresh what-if compile for cache verification");
    assert!(
        fresh.compiled.runtime == plan.compiled.runtime,
        "cached plan diverges from a fresh compile at (rc={rc} MB, ri={} MB): \
         breakpoint fingerprint collision",
        mr_heap.default_mb
    );
    assert!(
        fresh.compiled.rewrite_audit == plan.compiled.rewrite_audit,
        "cached plan's rewrite audit diverges from a fresh compile at (rc={rc} MB, \
         ri={} MB): the PL050 translation-validation evidence is stale",
        mr_heap.default_mb
    );
    let fresh_report = reml_planlint::lint_compiled(session.analyzed(), &fresh.compiled, &cfg);
    assert!(
        report == fresh_report,
        "cached plan lints differently from a fresh compile at rc={rc} MB:\ncached:\n{}\nfresh:\n{}",
        report.render(),
        fresh_report.render()
    );
    // The plan the executor would actually run is the *lowered* one —
    // verify the bytecode too (PL040 family), in both fusion modes, so a
    // cache hit can never hand out a program whose lowering violates the
    // VM's invariants.
    reml_planlint::install_vm_verifier();
    for fuse in [false, true] {
        let vm = plan
            .compiled
            .runtime
            .lower_vm(reml_runtime::vm::VmLowerOptions { fuse });
        let vm_report = reml_planlint::lint_vm(&plan.compiled.runtime, &vm);
        assert!(
            vm_report.is_empty(),
            "bytecode lint failed at (rc={rc} MB, ri={} MB, fuse={fuse}):\n{}",
            mr_heap.default_mb,
            vm_report.render()
        );
    }
}

/// Output of the baseline stage for one CP grid point.
pub(crate) struct BaselineOut {
    /// The `(r_c, min)` plan.
    #[allow(dead_code)]
    pub plan: Arc<PlanHandle>,
    /// `(block id, baseline cost)` for every unpruned block with a
    /// recorded entry environment.
    pub blocks: Vec<(usize, f64)>,
    /// Generic-block count before pruning.
    pub blocks_total: usize,
}

/// Baseline stage: compile at `(r_c, min)`, prune, and cost every
/// remaining block at the minimum MR heap (the memo seed).
pub(crate) fn stage_baseline(
    opt: &ResourceOptimizer,
    session: &WhatIfSession<'_>,
    memo: &CostMemo,
    rc: u64,
) -> Result<BaselineOut, CompileError> {
    let _t = memo.stage_timer();
    let _s = reml_trace::span!("optimize.stage_baseline", rc = rc);
    let min = session.min_heap_mb();
    let plan = session.compile_plan(rc, &MrHeapAssignment::uniform(min))?;
    #[cfg(debug_assertions)]
    debug_verify_plan(session, memo, rc, &MrHeapAssignment::uniform(min), &plan);
    let (remaining, blocks_total) = opt.prune_blocks(&plan.compiled);
    let mut blocks = Vec::with_capacity(remaining.len());
    for bid in remaining {
        if session.entry_env(bid).is_none() {
            continue;
        }
        let instrs = &plan.generic_instructions[&bid];
        let cost = memo.cost_block(opt, instrs, bid, rc, min);
        blocks.push((bid, cost));
    }
    Ok(BaselineOut {
        plan,
        blocks,
        blocks_total,
    })
}

/// Enumeration stage: walk the MR grid for one block at a fixed `r_c`,
/// returning the best `(rⁱ, cost)` found and whether the deadline cut
/// the walk short. A per-point compile error skips that point. Strict
/// `<` keeps the smaller, earlier grid point on cost ties.
#[allow(clippy::too_many_arguments)]
pub(crate) fn stage_enum_block(
    opt: &ResourceOptimizer,
    session: &WhatIfSession<'_>,
    memo: &CostMemo,
    srm: &[u64],
    deadline: Option<Instant>,
    rc: u64,
    block_id: usize,
    baseline_cost: f64,
) -> ((u64, f64), bool) {
    let _t = memo.stage_timer();
    let _s = reml_trace::span!("optimize.stage_enum", rc = rc, block = block_id);
    let min = session.min_heap_mb();
    let mut best = (min, baseline_cost);
    let mut exhausted = false;
    for &ri in srm {
        if ri == min {
            continue; // the baseline stage already costed this point
        }
        if deadline.map(|d| Instant::now() > d).unwrap_or(false) {
            exhausted = true;
            break;
        }
        let Ok(block) = session.compile_block(block_id, rc, ri) else {
            continue;
        };
        let cost = memo.cost_block(opt, &block.instructions, block_id, rc, ri);
        if cost < best.1 {
            best = (ri, cost);
        }
    }
    (best, exhausted)
}

/// Aggregation stage: assemble the memoized MR assignment for `r_c`,
/// compile the whole program (or scope) under it, and cost it globally
/// (loops and branches included).
pub(crate) fn stage_agg(
    opt: &ResourceOptimizer,
    session: &WhatIfSession<'_>,
    memo: &CostMemo,
    rc: u64,
    enums: &BTreeMap<usize, (u64, f64)>,
) -> Result<(ResourceConfig, f64), CompileError> {
    let _t = memo.stage_timer();
    let _s = reml_trace::span!("optimize.stage_agg", rc = rc);
    let min = session.min_heap_mb();
    let mut mr_heap = MrHeapAssignment::uniform(min);
    for (bid, (ri, _)) in enums {
        if *ri != min {
            mr_heap.set_block(*bid, *ri);
        }
    }
    let plan = session.compile_plan(rc, &mr_heap)?;
    #[cfg(debug_assertions)]
    debug_verify_plan(session, memo, rc, &mr_heap, &plan);
    let heap_of = mr_heap.clone();
    let t0 = Instant::now();
    let cost = opt
        .cost_model
        .cost_program(&plan.compiled.runtime, rc, &|bid| heap_of.for_block(bid))
        .total_s();
    memo.cost_us
        .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    memo.count_direct();
    reml_trace::event!("optimize.point", rc = rc, cost = cost);
    Ok((
        ResourceConfig {
            cp_heap_mb: rc,
            mr_heap,
        },
        cost,
    ))
}

/// Whether `(candidate, cost)` beats the incumbent: lower cost, or equal
/// cost (within 0.1%) and smaller resources (Definition 1's minimality).
pub(crate) fn improves(
    incumbent: &Option<(ResourceConfig, f64)>,
    candidate: &ResourceConfig,
    cost: f64,
    cc: &reml_cluster::ClusterConfig,
) -> bool {
    match incumbent {
        None => true,
        Some((inc, inc_cost)) => {
            let tie = (cost - inc_cost).abs() <= 0.001 * inc_cost.max(1e-9);
            if tie {
                candidate.magnitude(cc) < inc.magnitude(cc)
            } else {
                cost < *inc_cost
            }
        }
    }
}

//! Resource configuration vectors `R_P` and their ordering.

use reml_cluster::ClusterConfig;
use reml_compiler::MrHeapAssignment;

/// A full resource configuration: CP heap plus the per-block MR heap
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceConfig {
    /// Control-program max heap, MB (`r_c`).
    pub cp_heap_mb: u64,
    /// Per-block MR task heaps (`r¹ … rⁿ`).
    pub mr_heap: MrHeapAssignment,
}

impl ResourceConfig {
    /// Uniform configuration.
    pub fn uniform(cp_heap_mb: u64, mr_heap_mb: u64) -> Self {
        ResourceConfig {
            cp_heap_mb,
            mr_heap: MrHeapAssignment::uniform(mr_heap_mb),
        }
    }

    /// Largest MR heap across blocks (Table 2's "max MR" report).
    pub fn max_mr_mb(&self) -> u64 {
        self.mr_heap.max_mb()
    }

    /// Resource-magnitude metric used to break cost ties toward minimal
    /// configurations (Definition 1's `sum()` — a weighted sum of
    /// requested container resources). The CP container runs for the
    /// whole application; MR containers only during jobs, so CP memory
    /// dominates the weighting.
    pub fn magnitude(&self, cc: &ClusterConfig) -> f64 {
        let cp = cc.container_mb_for_heap(self.cp_heap_mb) as f64;
        let mr_default = cc.container_mb_for_heap(self.mr_heap.default_mb) as f64;
        let mr_overrides: f64 = self
            .mr_heap
            .per_block
            .values()
            .map(|mb| cc.container_mb_for_heap(*mb) as f64)
            .sum();
        cp * 4.0 + mr_default + mr_overrides
    }

    /// Human-readable `CP/maxMR` in GB (the Table 2 format).
    pub fn display_gb(&self) -> String {
        format!(
            "{:.1}/{:.1}",
            self.cp_heap_mb as f64 / 1024.0,
            self.max_mr_mb() as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magnitude_orders_configs() {
        let cc = ClusterConfig::paper_cluster();
        let small = ResourceConfig::uniform(512, 512);
        let big_cp = ResourceConfig::uniform(8 * 1024, 512);
        let big_mr = ResourceConfig::uniform(512, 8 * 1024);
        assert!(small.magnitude(&cc) < big_cp.magnitude(&cc));
        assert!(small.magnitude(&cc) < big_mr.magnitude(&cc));
        // CP weighting dominates: same heap delta costs more on CP.
        assert!(big_cp.magnitude(&cc) > big_mr.magnitude(&cc));
    }

    #[test]
    fn per_block_overrides_add_magnitude() {
        let cc = ClusterConfig::paper_cluster();
        let mut a = ResourceConfig::uniform(512, 512);
        let base = a.magnitude(&cc);
        a.mr_heap.set_block(3, 4096);
        assert!(a.magnitude(&cc) > base);
        assert_eq!(a.max_mr_mb(), 4096);
    }

    #[test]
    fn display_format() {
        let r = ResourceConfig::uniform(8 * 1024, 2 * 1024);
        assert_eq!(r.display_gb(), "8.0/2.0");
    }
}

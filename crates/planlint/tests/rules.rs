//! Rule-level tests: deliberately broken fixtures must yield exactly the
//! expected diagnostics, and a real compiled script must lint clean.

use reml_cluster::ClusterConfig;
use reml_compiler::pipeline::{analyze_program, compile};
use reml_compiler::{Hop, HopDag, HopId, HopOp, MrHeapAssignment, VType};
use reml_matrix::MatrixCharacteristics;
use reml_planlint::{
    lint_artifacts, lint_compiled, lint_hop_dag, lint_mr_job, rule_severity, Diagnostic,
    LintReport, Severity,
};
use reml_runtime::instructions::{
    CpInstruction, Instruction, MrJobInstruction, MrLocation, MrOperator, OpCode,
};
use reml_runtime::Operand;
use reml_scripts::{DataShape, Scenario};

fn dense(r: u64, c: u64) -> MatrixCharacteristics {
    MatrixCharacteristics::dense(r, c)
}

fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
    LintReport::from_diagnostics(diags.to_vec()).rules()
}

/// The acceptance fixture: a HOP edge with mismatched inner dimensions
/// plus an over-budget MR-capable operator kept in CP must yield exactly
/// PL001 and PL010.
#[test]
fn broken_plan_yields_expected_diagnostics() {
    let mut dag = HopDag::new();
    let x = dag.add(
        HopOp::TRead("X".into()),
        vec![],
        VType::Matrix,
        dense(3000, 3000),
    );
    let y = dag.add(
        HopOp::TRead("Y".into()),
        vec![],
        VType::Matrix,
        dense(2900, 3000),
    );
    // Mismatched edge: X has 3000 columns, Y has 2900 rows.
    let mm_mc = dag.hop(x).mc.matmult(&dag.hop(y).mc);
    let mm = dag.add(HopOp::MatMult, vec![x, y], VType::Matrix, mm_mc);
    dag.add(HopOp::TWrite("out".into()), vec![mm], VType::Matrix, mm_mc);
    reml_compiler::memest::estimate_dag(&mut dag);
    assert!(dag.hop(mm).mem_mb > 10.0, "fixture must be over-budget");

    // The lowered artifact keeps the ~200 MB matmult in CP under a 10 MB
    // budget — unsound (PL010).
    let instructions = vec![Instruction::Cp(CpInstruction {
        opcode: OpCode::MatMult,
        operands: vec![Operand::var("X"), Operand::var("Y")],
        output: Some(format!("_mVar{}", mm.0)),
        operand_mcs: vec![dag.hop(x).mc, dag.hop(y).mc],
        output_mc: mm_mc,
        bound_bytes: None,
    })];
    let diags = lint_artifacts(&dag, &instructions, 10.0, 10.0, "block 0");
    assert_eq!(
        rules_of(&diags),
        vec!["PL001", "PL010"],
        "unexpected diagnostics:\n{}",
        LintReport::from_diagnostics(diags.clone()).render()
    );
    assert_eq!(rule_severity("PL001"), Severity::Error);
    assert_eq!(rule_severity("PL010"), Severity::Error);
}

#[test]
fn hop_cycle_is_detected() {
    let mut dag = HopDag::new();
    // Two transposes referencing each other: 0 -> 1 -> 0.
    dag.hops.push(Hop {
        op: HopOp::Transpose,
        inputs: vec![HopId(1)],
        vtype: VType::Matrix,
        mc: dense(10, 10),
        mem_mb: 0.0,
    });
    dag.hops.push(Hop {
        op: HopOp::Transpose,
        inputs: vec![HopId(0)],
        vtype: VType::Matrix,
        mc: dense(10, 10),
        mem_mb: 0.0,
    });
    reml_compiler::memest::estimate_dag(&mut dag);
    let diags = lint_hop_dag(&dag, "block 0");
    assert_eq!(rules_of(&diags), vec!["PL004"]);
}

#[test]
fn dangling_reference_is_detected() {
    let mut dag = HopDag::new();
    dag.hops.push(Hop {
        op: HopOp::Transpose,
        inputs: vec![HopId(7)],
        vtype: VType::Matrix,
        mc: dense(10, 10),
        mem_mb: 0.0,
    });
    let diags = lint_hop_dag(&dag, "block 0");
    assert_eq!(rules_of(&diags), vec!["PL003"]);
}

#[test]
fn type_mismatch_is_detected() {
    let mut dag = HopDag::new();
    let s = dag.add(HopOp::LitNum(2.0), vec![], VType::Scalar, dense(1, 1));
    let x = dag.add(
        HopOp::TRead("X".into()),
        vec![],
        VType::Matrix,
        dense(10, 10),
    );
    // Matrix multiply with a scalar operand: a typing violation.
    let mm = dag.add(HopOp::MatMult, vec![x, s], VType::Matrix, dense(10, 10));
    dag.add(
        HopOp::TWrite("out".into()),
        vec![mm],
        VType::Matrix,
        dense(10, 10),
    );
    reml_compiler::memest::estimate_dag(&mut dag);
    let diags = lint_hop_dag(&dag, "block 0");
    assert!(rules_of(&diags).contains(&"PL002"));
}

fn mr_op(opcode: OpCode, operands: Vec<Operand>, output: &str, location: MrLocation) -> MrOperator {
    MrOperator {
        opcode,
        operands,
        output: Some(output.into()),
        operand_mcs: vec![],
        output_mc: dense(10, 10),
        location,
        task_mem_mb: 0.0,
    }
}

fn empty_job() -> MrJobInstruction {
    MrJobInstruction {
        hdfs_inputs: vec![],
        broadcast_inputs: vec![],
        mappers: vec![],
        reducers: vec![],
        outputs: vec![],
        shuffle: vec![],
    }
}

#[test]
fn oversized_broadcast_in_packed_job_is_illegal() {
    let mut job = empty_job();
    // ~763 MB broadcast against a 10 MB task budget.
    job.broadcast_inputs = vec![("v".into(), dense(100_000, 1000))];
    job.mappers = vec![
        mr_op(
            OpCode::MatMult,
            vec![Operand::var("X"), Operand::var("v")],
            "a",
            MrLocation::Map,
        ),
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("a")],
            "b",
            MrLocation::Map,
        ),
    ];
    job.outputs = vec![("b".into(), dense(10, 10))];
    let diags = lint_mr_job(&job, 10.0, "job");
    assert_eq!(rules_of(&diags), vec!["PL011"]);

    // A single-operator job may exceed the budget: the operator has to be
    // schedulable somewhere.
    job.mappers.truncate(1);
    job.outputs = vec![("a".into(), dense(10, 10))];
    let diags = lint_mr_job(&job, 10.0, "job");
    assert!(diags.is_empty(), "{:?}", diags);
}

#[test]
fn broadcast_produced_in_job_is_illegal() {
    let mut job = empty_job();
    job.broadcast_inputs = vec![("a".into(), dense(10, 1))];
    job.mappers = vec![
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("X")],
            "a",
            MrLocation::Map,
        ),
        mr_op(
            OpCode::MatMult,
            vec![Operand::var("X"), Operand::var("a")],
            "b",
            MrLocation::Map,
        ),
    ];
    job.outputs = vec![("b".into(), dense(10, 10))];
    let diags = lint_mr_job(&job, 1000.0, "job");
    assert_eq!(rules_of(&diags), vec!["PL012"]);
}

#[test]
fn mapper_consuming_reduce_output_is_illegal() {
    let mut job = empty_job();
    job.hdfs_inputs = vec![("X".into(), dense(10, 10))];
    job.mappers = vec![mr_op(
        OpCode::Transpose,
        vec![Operand::var("r")],
        "a",
        MrLocation::Map,
    )];
    job.reducers = vec![mr_op(
        OpCode::Agg(reml_matrix::AggOp::Sum),
        vec![Operand::var("X")],
        "r",
        MrLocation::Reduce,
    )];
    job.outputs = vec![("a".into(), dense(10, 10)), ("r".into(), dense(1, 1))];
    job.shuffle = vec![dense(10, 10)];
    let diags = lint_mr_job(&job, 1000.0, "job");
    assert_eq!(rules_of(&diags), vec!["PL013"]);
}

#[test]
fn job_structure_violations_are_detected() {
    // Shuffle without a reduce phase.
    let mut job = empty_job();
    job.mappers = vec![mr_op(
        OpCode::Transpose,
        vec![Operand::var("X")],
        "a",
        MrLocation::Map,
    )];
    job.outputs = vec![("a".into(), dense(10, 10))];
    job.shuffle = vec![dense(10, 10)];
    assert_eq!(rules_of(&lint_mr_job(&job, 1000.0, "job")), vec!["PL014"]);

    // Job output not produced by any packed operator.
    let mut job = empty_job();
    job.mappers = vec![mr_op(
        OpCode::Transpose,
        vec![Operand::var("X")],
        "a",
        MrLocation::Map,
    )];
    job.outputs = vec![("ghost".into(), dense(10, 10))];
    assert_eq!(rules_of(&lint_mr_job(&job, 1000.0, "job")), vec!["PL014"]);

    // Operator packed into the map phase but tagged Reduce.
    let mut job = empty_job();
    job.mappers = vec![mr_op(
        OpCode::Transpose,
        vec![Operand::var("X")],
        "a",
        MrLocation::Reduce,
    )];
    job.outputs = vec![("a".into(), dense(10, 10))];
    assert_eq!(rules_of(&lint_mr_job(&job, 1000.0, "job")), vec!["PL014"]);
}

#[test]
fn in_job_dataflow_order_is_enforced() {
    // Consumer packed before its producer within the map phase.
    let mut job = empty_job();
    job.mappers = vec![
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("a")],
            "b",
            MrLocation::Map,
        ),
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("X")],
            "a",
            MrLocation::Map,
        ),
    ];
    job.outputs = vec![("b".into(), dense(10, 10))];
    assert_eq!(rules_of(&lint_mr_job(&job, 1000.0, "job")), vec!["PL015"]);

    // HDFS input claimed for a value produced inside the job.
    let mut job = empty_job();
    job.hdfs_inputs = vec![("a".into(), dense(10, 10))];
    job.mappers = vec![
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("X")],
            "a",
            MrLocation::Map,
        ),
        mr_op(
            OpCode::Transpose,
            vec![Operand::var("a")],
            "b",
            MrLocation::Map,
        ),
    ];
    job.outputs = vec![("b".into(), dense(10, 10))];
    assert_eq!(rules_of(&lint_mr_job(&job, 1000.0, "job")), vec!["PL015"]);
}

#[test]
fn compiled_linreg_ds_lints_clean() {
    let script = reml_scripts::linreg_ds();
    let shape = DataShape {
        scenario: Scenario::XS,
        cols: 100,
        sparsity: 1.0,
    };
    let cfg = script.compile_config(
        shape,
        ClusterConfig::paper_cluster(),
        4096,
        MrHeapAssignment::uniform(1024),
    );
    let analyzed = analyze_program(&script.source).unwrap();
    let compiled = compile(&analyzed, &cfg).unwrap();
    let report = lint_compiled(&analyzed, &compiled, &cfg);
    assert!(report.is_empty(), "{}", report.render());
}

#[test]
fn diagnostics_serialize_for_ci_diffing() {
    let d = Diagnostic::new("PL010", "block 0/instr 1", "over budget");
    let json = serde_json::to_string(&LintReport::from_diagnostics(vec![d])).unwrap();
    assert!(json.contains("PL010"), "{json}");
    assert!(json.contains("error"), "{json}");
}

//! Mutation testing for the PL050 rewrite translation validator: seed
//! targeted miscompile classes into real rewrite audit logs and final
//! DAGs (swapped mmchain operands, dropped dot-product terms, forged
//! copy targets, tampered snapshots, forged folds, impure CSE merges,
//! inverted branch decisions, ...) and assert the validators flag them
//! *independently* — block-level mutants go straight through
//! [`validate_block_rewrites`] against the real pre/post DAGs, so the
//! engine-replay reproducibility check can never mask a weak rule.
//! Sites are enumerated deterministically — no randomness — so a change
//! in catch rate is a change in the rules, not in the dice.
//!
//! The harness asserts (a) every baseline fixture lints clean, and
//! (b) the overall catch rate across all mutation classes is ≥ 95%,
//! printing every missed mutant so a gap is documented rather than
//! silent.

use reml_cluster::ClusterConfig;
use reml_compiler::build::{FoldKind, FoldRecord};
use reml_compiler::hop::CseHit;
use reml_compiler::pipeline::{analyze_program, compile, AnalyzedProgram, CompiledProgram};
use reml_compiler::rewrites::RewriteRule;
use reml_compiler::{CompileConfig, HopId, HopOp};
use reml_matrix::UnaryOp;
use reml_planlint::{
    find_block, lint_compiled, rebuild_block_dag_staged, validate_block_rewrites,
    validate_program_rewrites, StagedRebuild,
};
use reml_runtime::ScalarValue;

struct Fixture {
    name: &'static str,
    analyzed: AnalyzedProgram,
    cfg: CompileConfig,
    compiled: CompiledProgram,
    /// `(block id, staged rebuild)` for every audited generic block.
    blocks: Vec<(usize, StagedRebuild)>,
}

fn fixture(name: &'static str, source: &str) -> Fixture {
    let analyzed = analyze_program(source).unwrap_or_else(|e| panic!("{name} analyzes: {e}"));
    let cfg = CompileConfig::new(ClusterConfig::paper_cluster(), 4 * 1024, 1024);
    let compiled = compile(&analyzed, &cfg).unwrap_or_else(|e| panic!("{name} compiles: {e}"));
    let baseline = lint_compiled(&analyzed, &compiled, &cfg);
    assert!(
        baseline.is_empty(),
        "{name}: baseline must lint clean:\n{}",
        baseline.render()
    );
    let mut blocks = Vec::new();
    for &bid in compiled.rewrite_audit.blocks.keys() {
        let entry = compiled.entry_envs.get(&bid).expect("entry env recorded");
        let block = find_block(&analyzed.blocks, bid).expect("block exists");
        let staged = rebuild_block_dag_staged(&cfg, block, entry).expect("staged rebuild");
        blocks.push((bid, staged));
    }
    Fixture {
        name,
        analyzed,
        cfg,
        compiled,
        blocks,
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture(
            "dotprod",
            "v = seq(1, 9)\n\
             w = seq(2, 10)\n\
             print(\"s=\" + sum(v * w))\n\
             print(\"q=\" + sum(v * v))\n",
        ),
        fixture(
            "mmchain",
            "X = seq(1, 6) %*% t(seq(1, 4))\n\
             v = seq(3, 6)\n\
             g = t(X) %*% (X %*% v)\n\
             print(\"g=\" + sum(g))\n",
        ),
        fixture(
            "copies",
            "A = matrix(2.5, rows=3, cols=4)\n\
             B = t(t(A))\n\
             C = A * 1\n\
             D = 1 * A\n\
             E = A / 1\n\
             F = B + C + D + E\n\
             print(\"f=\" + sum(F))\n",
        ),
        fixture(
            "branchy",
            "k = 4\n\
             if (k > 2) {\n\
               A = matrix(1, rows=3, cols=3)\n\
               print(\"t=\" + sum(A))\n\
             } else {\n\
               print(\"f\")\n\
             }\n\
             m = 1\n\
             if (m > 5) {\n\
               print(\"big\")\n\
             } else {\n\
               print(\"small\")\n\
             }\n",
        ),
        fixture(
            "combined",
            "X = seq(1, 8) %*% t(seq(1, 5))\n\
             v = seq(2, 6)\n\
             w = seq(1, 5)\n\
             A = matrix(0.5, rows=5, cols=5)\n\
             acc = 0\n\
             i = 0\n\
             while (i < 3) {\n\
               g = t(X) %*% (X %*% v)\n\
               acc = acc + sum(g) + sum(v * w)\n\
               i = i + 1\n\
             }\n\
             B = t(t(A)) + A * 1\n\
             print(\"acc=\" + acc)\n\
             print(\"b=\" + sum(B))\n",
        ),
    ]
}

/// Accumulates per-class results and the miss list.
#[derive(Default)]
struct Tally {
    results: Vec<(String, usize, usize)>,
    misses: Vec<String>,
    total: usize,
    caught: usize,
}

impl Tally {
    fn class(&mut self, label: String, outcomes: Vec<(String, bool)>) {
        if outcomes.is_empty() {
            return;
        }
        let n = outcomes.len();
        let mut c = 0;
        for (site, caught) in outcomes {
            self.total += 1;
            if caught {
                self.caught += 1;
                c += 1;
            } else {
                self.misses.push(format!("{label} / {site}"));
            }
        }
        self.results.push((label, c, n));
    }
}

/// Run the block-level validators on a (possibly mutated) audit + DAG.
fn block_catches(
    staged: &StagedRebuild,
    post: &reml_compiler::HopDag,
    audit: &reml_compiler::pipeline::BlockAudit,
) -> bool {
    !validate_block_rewrites(&staged.pre, post, audit, "block").is_empty()
}

#[test]
fn validator_catches_seeded_miscompiles() {
    let fixtures = fixtures();
    assert!(
        fixtures
            .iter()
            .any(|f| f.compiled.rewrite_audit.num_rewrites() > 0),
        "no fixture produced rewrites"
    );
    assert!(
        !fixtures
            .iter()
            .flat_map(|f| &f.compiled.rewrite_audit.branches)
            .collect::<Vec<_>>()
            .is_empty(),
        "no fixture produced removed branches"
    );

    let mut tally = Tally::default();

    for fx in &fixtures {
        for (bid, staged) in &fx.blocks {
            let stored = &fx.compiled.rewrite_audit.blocks[bid];

            // --- wrong-rule-id: relabel each record with another rule.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                let forged = match rec.rule {
                    RewriteRule::DotProduct => RewriteRule::DoubleTranspose,
                    RewriteRule::MmChain => RewriteRule::DotProduct,
                    RewriteRule::DoubleTranspose => RewriteRule::IdentityElim,
                    RewriteRule::IdentityElim => RewriteRule::MmChain,
                };
                let mut audit = stored.clone();
                audit.records[i].rule = forged;
                outcomes.push((
                    format!("rewrite {i}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(format!("{}/b{bid}/wrong-rule-id", fx.name), outcomes);

            // --- swapped-chain-operands: MmChain(X, v) -> MmChain(v, X)
            // in both the final DAG and the after-snapshot, so only the
            // semantic/obligation rules can object.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                if rec.rule != RewriteRule::MmChain {
                    continue;
                }
                let mut post = staged.post.clone();
                post.hops[rec.root.0].inputs.swap(0, 1);
                let mut audit = stored.clone();
                for (id, h) in &mut audit.records[i].after {
                    if *id == rec.root {
                        h.inputs.swap(0, 1);
                    }
                }
                outcomes.push((format!("rewrite {i}"), block_catches(staged, &post, &audit)));
            }
            tally.class(
                format!("{}/b{bid}/swapped-chain-operands", fx.name),
                outcomes,
            );

            // --- dot-product-dropped-term: rebind the matmult's vector
            // operand to the *other* vector, turning t(v) %*% w into
            // t(v) %*% v (DAG and snapshot kept consistent).
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                if rec.rule != RewriteRule::DotProduct {
                    continue;
                }
                let Some(&mm) = rec
                    .new_nodes
                    .iter()
                    .find(|id| matches!(staged.post.hop(**id).op, HopOp::MatMult))
                else {
                    continue;
                };
                let Some((_, a_id)) = rec.bindings.iter().find(|(n, _)| *n == "v") else {
                    continue;
                };
                if staged.post.hop(mm).inputs[1] == *a_id {
                    // sum(v * v): both bindings are the same node, so the
                    // "mutation" would reproduce the original program.
                    continue;
                }
                let mut post = staged.post.clone();
                post.hops[mm.0].inputs[1] = *a_id;
                let mut audit = stored.clone();
                for (id, h) in &mut audit.records[i].after {
                    if *id == mm {
                        h.inputs[1] = *a_id;
                    }
                }
                outcomes.push((format!("rewrite {i}"), block_catches(staged, &post, &audit)));
            }
            tally.class(
                format!("{}/b{bid}/dot-product-dropped-term", fx.name),
                outcomes,
            );

            // --- copy-of-wrong-value: a copy rewrite whose root copies
            // the wrong node — the inner transpose for DoubleTranspose,
            // the literal for IdentityElim.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                let wrong = match rec.rule {
                    RewriteRule::DoubleTranspose => rec
                        .before
                        .iter()
                        .find(|(id, h)| *id != rec.root && matches!(h.op, HopOp::Transpose))
                        .map(|(_, h)| h.clone()),
                    RewriteRule::IdentityElim => rec
                        .before
                        .iter()
                        .find(|(_, h)| matches!(h.op, HopOp::LitNum(_)))
                        .map(|(_, h)| h.clone()),
                    _ => None,
                };
                let Some(wrong) = wrong else { continue };
                let mut post = staged.post.clone();
                post.hops[rec.root.0] = wrong.clone();
                let mut audit = stored.clone();
                for (id, h) in &mut audit.records[i].after {
                    if *id == rec.root {
                        *h = wrong.clone();
                    }
                }
                outcomes.push((format!("rewrite {i}"), block_catches(staged, &post, &audit)));
            }
            tally.class(format!("{}/b{bid}/copy-of-wrong-value", fx.name), outcomes);

            // --- identity-on-two: forge the recorded literal to 2.0 —
            // the record now claims X * 2 simplifies to X.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                if rec.rule != RewriteRule::IdentityElim {
                    continue;
                }
                let mut audit = stored.clone();
                let mut found = false;
                for (_, h) in &mut audit.records[i].before {
                    if matches!(h.op, HopOp::LitNum(_)) {
                        h.op = HopOp::LitNum(2.0);
                        found = true;
                    }
                }
                if !found {
                    continue;
                }
                outcomes.push((
                    format!("rewrite {i}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(format!("{}/b{bid}/identity-on-two", fx.name), outcomes);

            // --- tampered-binding-snapshot: grow a boundary input's
            // recorded row count by one.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                let Some((_, bid0)) = rec.bindings.first() else {
                    continue;
                };
                let mut audit = stored.clone();
                let mut found = false;
                for (id, h) in &mut audit.records[i].before {
                    if id == bid0 {
                        if let Some(r) = h.mc.rows {
                            h.mc.rows = Some(r + 1);
                            found = true;
                        }
                    }
                }
                if !found {
                    continue;
                }
                outcomes.push((
                    format!("rewrite {i}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(
                format!("{}/b{bid}/tampered-binding-snapshot", fx.name),
                outcomes,
            );

            // --- forged-root-dims: the rewritten root claims one extra
            // column (DAG and snapshot kept consistent).
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                let Some(c) = staged.post.hop(rec.root).mc.cols else {
                    continue;
                };
                let mut post = staged.post.clone();
                post.hops[rec.root.0].mc.cols = Some(c + 1);
                let mut audit = stored.clone();
                for (id, h) in &mut audit.records[i].after {
                    if *id == rec.root {
                        h.mc.cols = Some(c + 1);
                    }
                }
                outcomes.push((format!("rewrite {i}"), block_catches(staged, &post, &audit)));
            }
            tally.class(format!("{}/b{bid}/forged-root-dims", fx.name), outcomes);

            // --- phantom-new-node: claim the root itself was appended.
            let mut outcomes = Vec::new();
            for (i, rec) in stored.records.iter().enumerate() {
                let mut audit = stored.clone();
                audit.records[i].new_nodes.push(rec.root);
                outcomes.push((
                    format!("rewrite {i}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(format!("{}/b{bid}/phantom-new-node", fx.name), outcomes);

            // --- forged-fold-result: every fold's claimed result nudged.
            let mut outcomes = Vec::new();
            for (j, fold) in stored.folds.iter().enumerate() {
                let forged = match &fold.result {
                    ScalarValue::Num(n) => ScalarValue::Num(n + 1.0),
                    ScalarValue::Bool(b) => ScalarValue::Bool(!b),
                    ScalarValue::Str(s) => ScalarValue::Str(format!("{s}x")),
                };
                let mut audit = stored.clone();
                audit.folds[j].result = forged;
                outcomes.push((
                    format!("fold {j}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(format!("{}/b{bid}/forged-fold-result", fx.name), outcomes);

            // --- forged-fold-kind: relabel a unary fold with a different
            // operator; sites where both operators agree on the recorded
            // operand are skipped (such a forgery is not a miscompile).
            let mut outcomes = Vec::new();
            for (j, fold) in stored.folds.iter().enumerate() {
                let FoldKind::Unary(op) = fold.kind else {
                    continue;
                };
                let Some(v) = fold.operands.first().and_then(|v| v.as_f64()) else {
                    continue;
                };
                let Some(forged) = [UnaryOp::Neg, UnaryOp::Abs, UnaryOp::Exp, UnaryOp::Round]
                    .into_iter()
                    .find(|o| *o != op && o.apply(v).to_bits() != op.apply(v).to_bits())
                else {
                    continue;
                };
                let mut audit = stored.clone();
                audit.folds[j].kind = FoldKind::Unary(forged);
                outcomes.push((
                    format!("fold {j}"),
                    block_catches(staged, &staged.post, &audit),
                ));
            }
            tally.class(format!("{}/b{bid}/forged-fold-kind", fx.name), outcomes);

            // --- forged-print-cse: claim two print effects were merged.
            let mut audit = stored.clone();
            audit.cse.push(CseHit {
                key: "Print".to_string(),
                inputs: Vec::new(),
                merged_into: HopId(0),
            });
            tally.class(
                format!("{}/b{bid}/forged-print-cse", fx.name),
                vec![(
                    "cse".to_string(),
                    block_catches(staged, &staged.post, &audit),
                )],
            );

            // --- forged-rand-cse: claim two rand() calls were merged.
            let mut audit = stored.clone();
            audit.cse.push(CseHit {
                key: "DataGenRand".to_string(),
                inputs: Vec::new(),
                merged_into: HopId(0),
            });
            tally.class(
                format!("{}/b{bid}/forged-rand-cse", fx.name),
                vec![(
                    "cse".to_string(),
                    block_catches(staged, &staged.post, &audit),
                )],
            );

            // --- forged-fake-fold: invent a fold that never happened,
            // claiming 2 + 2 = 5.
            let mut audit = stored.clone();
            audit.folds.push(FoldRecord {
                kind: FoldKind::Binary(reml_matrix::BinaryOp::Add),
                operands: vec![ScalarValue::Num(2.0), ScalarValue::Num(2.0)],
                result: ScalarValue::Num(5.0),
            });
            tally.class(
                format!("{}/b{bid}/forged-fake-fold", fx.name),
                vec![(
                    "fold".to_string(),
                    block_catches(staged, &staged.post, &audit),
                )],
            );
        }

        // --- dropped-record: the audit omits an applied rewrite; the
        // full pipeline entry point must notice the incompleteness.
        let mut outcomes = Vec::new();
        for (&bid, stored) in &fx.compiled.rewrite_audit.blocks {
            for i in 0..stored.records.len() {
                let mut compiled = fx.compiled.clone();
                compiled
                    .rewrite_audit
                    .blocks
                    .get_mut(&bid)
                    .unwrap()
                    .records
                    .remove(i);
                let caught = !lint_compiled(&fx.analyzed, &compiled, &fx.cfg).is_empty();
                outcomes.push((format!("b{bid} rewrite {i}"), caught));
            }
        }
        tally.class(format!("{}/dropped-record", fx.name), outcomes);

        // --- forged-rewrite-count: stats disagree with the audit.
        if fx.compiled.rewrite_audit.num_rewrites() > 0 || fx.compiled.stats.rewrites_applied > 0 {
            let mut compiled = fx.compiled.clone();
            compiled.stats.rewrites_applied += 1;
            let caught = !validate_program_rewrites(&fx.analyzed, &compiled, &fx.cfg).is_empty();
            tally.class(
                format!("{}/forged-rewrite-count", fx.name),
                vec![("stats".to_string(), caught)],
            );
        }

        // --- inverted-branch: the audit claims the other arm was taken.
        let mut outcomes = Vec::new();
        for j in 0..fx.compiled.rewrite_audit.branches.len() {
            let mut compiled = fx.compiled.clone();
            compiled.rewrite_audit.branches[j].taken = !compiled.rewrite_audit.branches[j].taken;
            let caught = !validate_program_rewrites(&fx.analyzed, &compiled, &fx.cfg).is_empty();
            outcomes.push((format!("branch {j}"), caught));
        }
        tally.class(format!("{}/inverted-branch", fx.name), outcomes);

        // --- branch-env-scrubbed: the recorded environment loses every
        // known constant, so the guard can no longer be re-proven.
        let mut outcomes = Vec::new();
        for j in 0..fx.compiled.rewrite_audit.branches.len() {
            let mut compiled = fx.compiled.clone();
            for info in compiled.rewrite_audit.branches[j].env.values_mut() {
                info.konst = None;
            }
            let caught = !validate_program_rewrites(&fx.analyzed, &compiled, &fx.cfg).is_empty();
            outcomes.push((format!("branch {j}"), caught));
        }
        tally.class(format!("{}/branch-env-scrubbed", fx.name), outcomes);

        // --- branch-wrong-block: the record points at a block that is
        // not an if (or does not exist).
        let mut outcomes = Vec::new();
        for j in 0..fx.compiled.rewrite_audit.branches.len() {
            let mut compiled = fx.compiled.clone();
            compiled.rewrite_audit.branches[j].block_id = 99_999;
            let caught = !validate_program_rewrites(&fx.analyzed, &compiled, &fx.cfg).is_empty();
            outcomes.push((format!("branch {j}"), caught));
        }
        tally.class(format!("{}/branch-wrong-block", fx.name), outcomes);
    }

    println!("mutation classes:");
    for (label, c, n) in &tally.results {
        println!("  {label}: {c}/{n}");
    }
    if !tally.misses.is_empty() {
        println!("missed mutants ({}):", tally.misses.len());
        for m in &tally.misses {
            println!("  {m}");
        }
    }
    let rate = tally.caught as f64 / tally.total as f64;
    println!(
        "catch rate: {}/{} = {:.1}%",
        tally.caught,
        tally.total,
        rate * 100.0
    );
    assert!(
        rate >= 0.95,
        "catch rate {:.1}% below the 95% gate; misses:\n{}",
        rate * 100.0,
        tally.misses.join("\n")
    );
}

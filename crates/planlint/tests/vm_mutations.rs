//! Mutation testing for the PL040 bytecode verifier: seed targeted
//! corruptions into real lowered programs (swapped slots, off-by-one
//! pool indices, forged metadata, reordered fused steps, ...) and assert
//! the verifier flags them. Sites are enumerated deterministically — no
//! randomness — so a change in catch rate is a change in the rules, not
//! in the dice.
//!
//! The harness asserts (a) every baseline program lints clean, and
//! (b) the overall catch rate across all mutation classes is ≥ 95%,
//! printing every missed mutant so the gap is documented rather than
//! silent.

use reml_cluster::ClusterConfig;
use reml_compiler::pipeline::{analyze_program, compile};
use reml_compiler::MrHeapAssignment;
use reml_planlint::{lint_vm, lint_vm_program};
use reml_runtime::program::RuntimeProgram;
use reml_runtime::vm::{Arg, FusedArg, VmBlock, VmInstr, VmLowerOptions, VmOp, VmProgram};
use reml_runtime::ScalarValue;
use reml_scripts::{DataShape, Scenario, ScriptSpec};

/// Cap on enumerated sites per mutation class per fixture, to bound
/// runtime while keeping coverage broad.
const SITE_CAP: usize = 24;

struct Fixture {
    name: String,
    runtime: RuntimeProgram,
    vm: VmProgram,
}

fn fixture(make: fn() -> ScriptSpec, scenario: Scenario, cp_heap: u64, mr_heap: u64) -> Fixture {
    let script = make();
    let shape = DataShape {
        scenario,
        cols: 100,
        sparsity: 1.0,
    };
    let cfg = script.compile_config(
        shape,
        ClusterConfig::paper_cluster(),
        cp_heap,
        MrHeapAssignment::uniform(mr_heap),
    );
    let analyzed = analyze_program(&script.source).expect("fixture analyzes");
    let compiled = compile(&analyzed, &cfg).expect("fixture compiles");
    let vm = compiled.runtime.lower_vm(VmLowerOptions { fuse: true });
    Fixture {
        name: format!("{} {} cp={cp_heap}", script.name, scenario.name()),
        runtime: compiled.runtime,
        vm,
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture(reml_scripts::linreg_ds, Scenario::XS, 4096, 1024),
        fixture(reml_scripts::l2svm, Scenario::XS, 4096, 1024),
        fixture(reml_scripts::linreg_cg, Scenario::S, 4096, 1024),
        // A small CP heap at the M scale forces MR jobs into the plan, so
        // the MR-targeted mutation classes have sites to corrupt.
        fixture(reml_scripts::linreg_ds, Scenario::M, 1024, 1024),
    ]
}

/// Visit every instruction in the program mutably: block code, predicate
/// code, and MR-job operators.
fn visit_instrs_mut(vm: &mut VmProgram, f: &mut dyn FnMut(&mut VmInstr)) {
    fn blocks(bs: &mut [VmBlock], f: &mut dyn FnMut(&mut VmInstr)) {
        for b in bs {
            match b {
                VmBlock::Generic { code, .. } => code.iter_mut().for_each(&mut *f),
                VmBlock::If {
                    pred,
                    then_blocks,
                    else_blocks,
                } => {
                    pred.code.iter_mut().for_each(&mut *f);
                    blocks(then_blocks, f);
                    blocks(else_blocks, f);
                }
                VmBlock::While { pred, body } => {
                    pred.code.iter_mut().for_each(&mut *f);
                    blocks(body, f);
                }
                VmBlock::For { from, to, body, .. } => {
                    from.code.iter_mut().for_each(&mut *f);
                    to.code.iter_mut().for_each(&mut *f);
                    blocks(body, f);
                }
            }
        }
    }
    let mut jobs = std::mem::take(&mut vm.mr_jobs);
    blocks(&mut vm.blocks, f);
    for job in &mut jobs {
        job.ops.iter_mut().for_each(&mut *f);
    }
    vm.mr_jobs = jobs;
}

/// Pool sizes captured before mutation, so mutators can aim out-of-range
/// or at a different in-range entry without borrowing the program.
#[derive(Clone, Copy)]
struct Sizes {
    symbols: u32,
    consts: u32,
    strings: u32,
    metas: u32,
    fused: u32,
    mr_jobs: u32,
}

fn sizes(vm: &VmProgram) -> Sizes {
    Sizes {
        symbols: vm.symbols.len() as u32,
        consts: vm.consts.len() as u32,
        strings: vm.strings.len() as u32,
        metas: vm.metas.len() as u32,
        fused: vm.fused.len() as u32,
        mr_jobs: vm.mr_jobs.len() as u32,
    }
}

/// Generate one mutant per applicable instruction site (capped).
fn instr_mutants(
    vm: &VmProgram,
    applicable: &dyn Fn(Sizes, &VmInstr) -> bool,
    mutate: &dyn Fn(Sizes, &mut VmInstr),
) -> Vec<VmProgram> {
    let sz = sizes(vm);
    let mut count = 0usize;
    let mut probe = vm.clone();
    visit_instrs_mut(&mut probe, &mut |i| {
        if applicable(sz, i) {
            count += 1;
        }
    });
    (0..count.min(SITE_CAP))
        .map(|site| {
            let mut m = vm.clone();
            let mut k = 0usize;
            visit_instrs_mut(&mut m, &mut |i| {
                if applicable(sz, i) {
                    if k == site {
                        mutate(sz, i);
                    }
                    k += 1;
                }
            });
            m
        })
        .collect()
}

/// One mutant per pool entry site (capped), mutating the program wholesale.
fn pool_mutants(
    vm: &VmProgram,
    count: usize,
    mutate: &dyn Fn(&mut VmProgram, usize),
) -> Vec<VmProgram> {
    (0..count.min(SITE_CAP))
        .map(|site| {
            let mut m = vm.clone();
            mutate(&mut m, site);
            m
        })
        .collect()
}

fn first_slot(instr: &VmInstr) -> Option<usize> {
    instr.args.iter().position(|a| matches!(a, Arg::Slot(_)))
}

fn mutant_classes(vm: &VmProgram) -> Vec<(&'static str, Vec<VmProgram>)> {
    let sz = sizes(vm);
    let mut classes: Vec<(&'static str, Vec<VmProgram>)> = Vec::new();

    // --- operand corruptions -------------------------------------------
    classes.push((
        "slot_swap",
        instr_mutants(
            vm,
            &|sz, i| sz.symbols > 1 && first_slot(i).is_some(),
            &|sz, i| {
                let p = first_slot(i).unwrap();
                if let Arg::Slot(s) = i.args[p] {
                    i.args[p] = Arg::Slot((s + 1) % sz.symbols);
                }
            },
        ),
    ));
    classes.push((
        "slot_oob",
        instr_mutants(vm, &|_, i| first_slot(i).is_some(), &|sz, i| {
            let p = first_slot(i).unwrap();
            i.args[p] = Arg::Slot(sz.symbols);
        }),
    ));
    classes.push((
        "const_oob",
        instr_mutants(
            vm,
            &|_, i| i.args.iter().any(|a| matches!(a, Arg::Const(_))),
            &|sz, i| {
                let p = i
                    .args
                    .iter()
                    .position(|a| matches!(a, Arg::Const(_)))
                    .unwrap();
                i.args[p] = Arg::Const(sz.consts);
            },
        ),
    ));
    // In-bounds constant swap: retarget the first Const operand at a pool
    // entry holding a *different* value (skip when none exists).
    {
        let differing = |c: u32, consts: &[ScalarValue]| -> Option<u32> {
            let v = &consts[c as usize];
            consts.iter().position(|w| w != v).map(|p| p as u32)
        };
        let consts = vm.consts.clone();
        let mut mutants = Vec::new();
        let sz = sizes(vm);
        let mut count = 0usize;
        let mut probe = vm.clone();
        let applicable = |i: &VmInstr| {
            i.args
                .iter()
                .any(|a| matches!(a, Arg::Const(c) if differing(*c, &consts).is_some()))
        };
        visit_instrs_mut(&mut probe, &mut |i| {
            if applicable(i) {
                count += 1;
            }
        });
        for site in 0..count.min(SITE_CAP) {
            let mut m = vm.clone();
            let mut k = 0usize;
            visit_instrs_mut(&mut m, &mut |i| {
                if applicable(i) {
                    if k == site {
                        let p = i
                            .args
                            .iter()
                            .position(
                                |a| matches!(a, Arg::Const(c) if differing(*c, &consts).is_some()),
                            )
                            .unwrap();
                        if let Arg::Const(c) = i.args[p] {
                            i.args[p] = Arg::Const(differing(c, &consts).unwrap());
                        }
                    }
                    k += 1;
                }
            });
            mutants.push(m);
        }
        let _ = sz;
        classes.push(("const_swap", mutants));
    }
    classes.push((
        "string_oob",
        instr_mutants(
            vm,
            &|_, i| matches!(i.op, VmOp::PRead { .. } | VmOp::PWrite { .. }),
            &|sz, i| match &mut i.op {
                VmOp::PRead { path } | VmOp::PWrite { path } => *path = sz.strings,
                _ => unreachable!(),
            },
        ),
    ));

    // --- output corruptions --------------------------------------------
    classes.push((
        "out_drop",
        instr_mutants(vm, &|_, i| i.out.is_some(), &|_, i| i.out = None),
    ));
    classes.push((
        "out_swap",
        instr_mutants(vm, &|sz, i| sz.symbols > 1 && i.out.is_some(), &|sz, i| {
            i.out = Some((i.out.unwrap() + 1) % sz.symbols)
        }),
    ));

    // --- side-table index corruptions ----------------------------------
    classes.push((
        "meta_oob",
        instr_mutants(vm, &|_, _| true, &|sz, i| i.meta = sz.metas),
    ));
    classes.push((
        "meta_retarget",
        instr_mutants(vm, &|sz, _| sz.metas > 1, &|sz, i| {
            i.meta = (i.meta + 1) % sz.metas
        }),
    ));
    classes.push((
        "spec_oob",
        instr_mutants(vm, &|_, i| matches!(i.op, VmOp::Fused { .. }), &|sz, i| {
            i.op = VmOp::Fused { spec: sz.fused }
        }),
    ));
    classes.push((
        "job_oob",
        instr_mutants(vm, &|_, i| matches!(i.op, VmOp::MrJob { .. }), &|sz, i| {
            i.op = VmOp::MrJob { job: sz.mr_jobs }
        }),
    ));

    // --- metadata forgeries --------------------------------------------
    classes.push((
        "cp_count_forge",
        pool_mutants(vm, sz.metas as usize, &|m, site| {
            m.metas[site].cp_count += 1;
        }),
    ));
    classes.push((
        "mnemonic_forge",
        pool_mutants(vm, sz.metas as usize, &|m, site| {
            m.metas[site].mnemonic = "forged".into();
        }),
    ));
    // Touched-set forgery: append a symbol not already in the set.
    {
        let mut mutants = Vec::new();
        for site in 0..(sz.metas as usize).min(SITE_CAP) {
            let touched = &vm.metas[site].touched;
            let Some(extra) = (0..sz.symbols).find(|s| !touched.contains(s)) else {
                continue;
            };
            let mut m = vm.clone();
            let mut t = m.metas[site].touched.to_vec();
            t.push(extra);
            t.sort_unstable();
            t.dedup();
            m.metas[site].touched = t.into_boxed_slice();
            mutants.push(m);
        }
        classes.push(("touched_forge", mutants));
    }
    // Bound forgery on observed metas only (cp_count ≥ 1): MR operators
    // are never observed, so their metadata is not fidelity-checked.
    {
        let observed: Vec<usize> = vm
            .metas
            .iter()
            .enumerate()
            .filter(|(_, m)| m.cp_count >= 1)
            .map(|(i, _)| i)
            .collect();
        classes.push((
            "bound_forge",
            observed
                .iter()
                .take(SITE_CAP)
                .map(|&site| {
                    let mut m = vm.clone();
                    m.metas[site].bound_bytes =
                        Some(m.metas[site].bound_bytes.map_or(12_345, |b| b + 8));
                    m
                })
                .collect(),
        ));
        classes.push((
            "flops_forge",
            observed
                .iter()
                .take(SITE_CAP)
                .map(|&site| {
                    let mut m = vm.clone();
                    m.metas[site].predicted_flops =
                        Some(m.metas[site].predicted_flops.map_or(7.0, |f| f + 1.0));
                    m
                })
                .collect(),
        ));
    }
    // Constituent flop-share forgery: only fused metas carry constituents.
    {
        let mut mutants = Vec::new();
        for (site, meta) in vm.metas.iter().enumerate() {
            if meta.constituents.is_empty() || mutants.len() >= SITE_CAP {
                continue;
            }
            let mut m = vm.clone();
            let mut cs = m.metas[site].constituents.to_vec();
            cs[0].predicted_flops = Some(cs[0].predicted_flops.map_or(3.0, |f| f * 2.0 + 1.0));
            m.metas[site].constituents = cs.into_boxed_slice();
            mutants.push(m);
        }
        classes.push(("constituent_forge", mutants));
    }

    // --- fused-chain corruptions ---------------------------------------
    // Reorder: swap the first two distinct steps of a spec.
    {
        let mut mutants = Vec::new();
        for (site, spec) in vm.fused.iter().enumerate() {
            if mutants.len() >= SITE_CAP {
                break;
            }
            let Some(j) = spec
                .steps
                .iter()
                .position(|s| s.kind != spec.steps[0].kind || s.args != spec.steps[0].args)
            else {
                continue; // all steps identical: the swap is a no-op
            };
            let mut m = vm.clone();
            m.fused[site].steps.swap(0, j);
            mutants.push(m);
        }
        classes.push(("fused_step_reorder", mutants));
    }
    classes.push((
        "fused_step_drop",
        pool_mutants(vm, sz.fused as usize, &|m, site| {
            m.fused[site].steps.pop();
        }),
    ));
    // Flow forgery: redirect the first Flow operand at slot 0.
    {
        let mut mutants = Vec::new();
        for (site, spec) in vm.fused.iter().enumerate() {
            if mutants.len() >= SITE_CAP {
                break;
            }
            let Some((k, p)) = spec.steps.iter().enumerate().find_map(|(k, s)| {
                s.args
                    .iter()
                    .position(|a| *a == FusedArg::Flow)
                    .map(|p| (k, p))
            }) else {
                continue;
            };
            let mut m = vm.clone();
            m.fused[site].steps[k].args[p] = FusedArg::Slot(0);
            mutants.push(m);
        }
        classes.push(("flow_forge", mutants));
    }
    // Fused external-slot swap.
    {
        let mut mutants = Vec::new();
        'spec: for (site, spec) in vm.fused.iter().enumerate() {
            if mutants.len() >= SITE_CAP {
                break;
            }
            for (k, step) in spec.steps.iter().enumerate() {
                if let Some(p) = step
                    .args
                    .iter()
                    .position(|a| matches!(a, FusedArg::Slot(_)))
                {
                    let mut m = vm.clone();
                    if let FusedArg::Slot(s) = m.fused[site].steps[k].args[p] {
                        m.fused[site].steps[k].args[p] = FusedArg::Slot((s + 1) % sz.symbols);
                    }
                    mutants.push(m);
                    continue 'spec;
                }
            }
        }
        classes.push(("fused_slot_swap", mutants));
    }
    classes.push((
        "shape_forge",
        pool_mutants(vm, sz.fused as usize, &|m, site| {
            m.fused[site].rows += 1;
        }),
    ));

    // --- predicate and MR corruptions ----------------------------------
    {
        fn rebind_preds(bs: &mut [VmBlock], symbols: u32, target: usize, k: &mut usize) {
            for b in bs {
                match b {
                    VmBlock::Generic { .. } => {}
                    VmBlock::If {
                        pred,
                        then_blocks,
                        else_blocks,
                    } => {
                        if *k == target {
                            pred.result = (pred.result + 1) % symbols;
                        }
                        *k += 1;
                        rebind_preds(then_blocks, symbols, target, k);
                        rebind_preds(else_blocks, symbols, target, k);
                    }
                    VmBlock::While { pred, body } => {
                        if *k == target {
                            pred.result = (pred.result + 1) % symbols;
                        }
                        *k += 1;
                        rebind_preds(body, symbols, target, k);
                    }
                    VmBlock::For { from, to, body, .. } => {
                        for pred in [&mut *from, &mut *to] {
                            if *k == target {
                                pred.result = (pred.result + 1) % symbols;
                            }
                            *k += 1;
                        }
                        rebind_preds(body, symbols, target, k);
                    }
                }
            }
        }
        let mut count = 0usize;
        let mut probe = vm.clone();
        rebind_preds(&mut probe.blocks, sz.symbols, usize::MAX, &mut count);
        let mutants = (0..count.min(SITE_CAP))
            .map(|site| {
                let mut m = vm.clone();
                let mut k = 0usize;
                rebind_preds(&mut m.blocks, sz.symbols, site, &mut k);
                m
            })
            .collect();
        classes.push(("pred_result_rebind", mutants));
    }
    {
        let mut mutants = Vec::new();
        for (j, job) in vm.mr_jobs.iter().enumerate() {
            for (o, _) in job.outputs.iter().enumerate() {
                if mutants.len() >= SITE_CAP {
                    break;
                }
                let mut m = vm.clone();
                m.mr_jobs[j].outputs[o].0 = (m.mr_jobs[j].outputs[o].0 + 1) % sz.symbols;
                mutants.push(m);
            }
        }
        classes.push(("mr_output_forge", mutants));
    }

    classes
}

#[test]
fn verifier_catches_seeded_corruptions() {
    let fixtures = fixtures();
    // The mutation classes need real material to corrupt: at least one
    // fixture with fused chains and one with MR jobs.
    assert!(
        fixtures.iter().any(|f| !f.vm.fused.is_empty()),
        "no fixture produced fused chains — pick a script with elementwise chains"
    );
    assert!(
        fixtures.iter().any(|f| !f.vm.mr_jobs.is_empty()),
        "no fixture produced MR jobs — shrink the CP heap or grow the data"
    );

    let mut total = 0usize;
    let mut caught = 0usize;
    let mut misses: Vec<String> = Vec::new();
    let mut per_class: Vec<(String, usize, usize)> = Vec::new();

    for fx in &fixtures {
        let baseline = lint_vm(&fx.runtime, &fx.vm);
        assert!(
            baseline.is_empty(),
            "{}: baseline must lint clean:\n{}",
            fx.name,
            baseline.render()
        );
        for (class, mutants) in mutant_classes(&fx.vm) {
            let mut class_caught = 0usize;
            let n = mutants.len();
            for (site, mutant) in mutants.into_iter().enumerate() {
                total += 1;
                // A corrupted program may no longer match the source tree
                // (PL046/047) or may be internally inconsistent
                // (PL040–045); both count as caught.
                let report = lint_vm(&fx.runtime, &mutant);
                if report.is_empty() {
                    misses.push(format!("{} / {class} site {site}", fx.name));
                } else {
                    caught += 1;
                    class_caught += 1;
                }
            }
            if n > 0 {
                per_class.push((format!("{} / {class}", fx.name), class_caught, n));
            }
        }
    }

    println!("mutation classes:");
    for (label, c, n) in &per_class {
        println!("  {label}: {c}/{n}");
    }
    if !misses.is_empty() {
        println!("missed mutants ({}):", misses.len());
        for m in &misses {
            println!("  {m}");
        }
    }
    let rate = caught as f64 / total as f64;
    println!("catch rate: {caught}/{total} = {:.1}%", rate * 100.0);
    assert!(
        rate >= 0.95,
        "catch rate {:.1}% below the 95% gate; misses:\n{}",
        rate * 100.0,
        misses.join("\n")
    );
}

/// The internal-consistency entry point alone (no source tree) must
/// still catch structural corruptions — the fragment path relies on it.
#[test]
fn internal_rules_catch_pool_corruptions() {
    let fx = fixture(reml_scripts::linreg_ds, Scenario::XS, 4096, 1024);
    let sz = sizes(&fx.vm);

    let mut oob = fx.vm.clone();
    visit_instrs_mut(&mut oob, &mut |i| {
        if let Some(p) = first_slot(i) {
            i.args[p] = Arg::Slot(sz.symbols);
        }
    });
    let report = lint_vm_program(&oob);
    assert!(
        report.iter().any(|d| d.rule == "PL040"),
        "expected PL040 on out-of-range slots"
    );

    let mut forged = fx.vm.clone();
    for meta in &mut forged.metas {
        meta.cp_count += 1;
    }
    let report = lint_vm_program(&forged);
    assert!(
        report.iter().any(|d| d.rule == "PL041"),
        "expected PL041 on forged cp_count"
    );
}
